//! The [`ControllerEnergyModel`]: power of the central controller.

use etx_units::{Cycles, Energy, Frequency, Power};

/// Power model of a central controller.
///
/// Sec 7.3 of the paper measures the controller of a **4x4** mesh at
/// 100 MHz: 6.94 mW dynamic plus 0.57 mW leakage. For other mesh sizes the
/// paper only states that "a controller for a bigger mesh consumes more
/// power than a controller for a smaller mesh"; this model scales both
/// components linearly with the node count (the controller's state —
/// routing tables, status registers — grows with `K`). That scaling is
/// what produces the decreasing tails of Fig 8.
///
/// # Examples
///
/// ```
/// use etx_control::ControllerEnergyModel;
/// use etx_units::Cycles;
///
/// let m44 = ControllerEnergyModel::for_mesh_nodes(16);
/// let m88 = ControllerEnergyModel::for_mesh_nodes(64);
/// let idle = Cycles::new(1000);
/// assert!(m88.leakage_energy(idle) > m44.leakage_energy(idle));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerEnergyModel {
    dynamic: Power,
    leakage: Power,
    clock: Frequency,
}

impl ControllerEnergyModel {
    /// The paper's measured dynamic power for the 4x4-mesh controller.
    pub const BASE_DYNAMIC_MILLIWATTS: f64 = 6.94;
    /// The paper's measured leakage power for the 4x4-mesh controller.
    pub const BASE_LEAKAGE_MILLIWATTS: f64 = 0.57;
    /// Mesh size the base measurement corresponds to.
    pub const BASE_MESH_NODES: usize = 16;

    /// Creates a model from explicit powers and clock.
    #[must_use]
    pub fn new(dynamic: Power, leakage: Power, clock: Frequency) -> Self {
        ControllerEnergyModel { dynamic, leakage, clock }
    }

    /// The paper's controller for a mesh of `nodes` nodes: the 4x4
    /// measurement scaled by `nodes / 16`, at the default 100 MHz clock.
    #[must_use]
    pub fn for_mesh_nodes(nodes: usize) -> Self {
        let scale = nodes as f64 / Self::BASE_MESH_NODES as f64;
        ControllerEnergyModel {
            dynamic: Power::from_milliwatts(Self::BASE_DYNAMIC_MILLIWATTS) * scale,
            leakage: Power::from_milliwatts(Self::BASE_LEAKAGE_MILLIWATTS) * scale,
            clock: Frequency::default(),
        }
    }

    /// Dynamic power draw while actively computing routes / driving
    /// downloads.
    #[must_use]
    pub fn dynamic_power(&self) -> Power {
        self.dynamic
    }

    /// Leakage power drawn whenever the controller is powered on.
    #[must_use]
    pub fn leakage_power(&self) -> Power {
        self.leakage
    }

    /// Energy for `cycles` of active computation: (dynamic + leakage) · t.
    #[must_use]
    pub fn active_energy(&self, cycles: Cycles) -> Energy {
        (self.dynamic + self.leakage).energy_over(cycles, self.clock)
    }

    /// Energy for `cycles` of powered-on idling: leakage only.
    #[must_use]
    pub fn leakage_energy(&self, cycles: Cycles) -> Energy {
        self.leakage.energy_over(cycles, self.clock)
    }
}

impl Default for ControllerEnergyModel {
    /// The 4x4-mesh controller of the paper.
    fn default() -> Self {
        Self::for_mesh_nodes(Self::BASE_MESH_NODES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_measurement_reproduced() {
        let m = ControllerEnergyModel::default();
        // 6.94 + 0.57 = 7.51 mW at 100 MHz -> 75.1 pJ/cycle active.
        let e = m.active_energy(Cycles::new(1));
        assert!((e.picojoules() - 75.1).abs() < 1e-9);
        // Leakage alone: 5.7 pJ/cycle.
        let e = m.leakage_energy(Cycles::new(1));
        assert!((e.picojoules() - 5.7).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_linear_in_nodes() {
        let m16 = ControllerEnergyModel::for_mesh_nodes(16);
        let m64 = ControllerEnergyModel::for_mesh_nodes(64);
        let c = Cycles::new(100);
        assert!(
            (m64.active_energy(c).picojoules() - 4.0 * m16.active_energy(c).picojoules()).abs()
                < 1e-9
        );
        assert_eq!(m64.dynamic_power().milliwatts(), 4.0 * 6.94);
        assert_eq!(m64.leakage_power().milliwatts(), 4.0 * 0.57);
    }

    #[test]
    fn custom_model() {
        let m = ControllerEnergyModel::new(
            Power::from_milliwatts(1.0),
            Power::from_milliwatts(0.5),
            Frequency::from_megahertz(100.0),
        );
        assert!((m.active_energy(Cycles::new(10)).picojoules() - 150.0).abs() < 1e-9);
        assert!((m.leakage_energy(Cycles::new(10)).picojoules() - 50.0).abs() < 1e-9);
    }
}
