//! The TDMA control mechanism of Sec 5.3.
//!
//! The DATE'05 platform separates data from control: application packets
//! travel node-to-node over the mesh, while *control* information flows
//! over a narrow (2-bit) shared medium under a centralized TDMA schedule
//! (the paper's Fig 4). Every frame has two phases:
//!
//! * **Uploading** — each node gets a slot to report its status (battery
//!   level quantized to `N_B` levels plus a deadlock flag);
//! * **Downloading** — when the reported information differs from the
//!   previous frame, the controller re-runs the routing algorithm and
//!   pushes fresh next-hop instructions to the nodes.
//!
//! This crate models the schedule ([`TdmaConfig`]), the energy the shared
//! medium consumes ([`TdmaConfig::upload_energy_per_node`] /
//! [`TdmaConfig::download_energy_per_node`]), the controllers themselves
//! ([`ControllerEnergyModel`], with the paper's measured 6.94 mW dynamic +
//! 0.57 mW leakage for a 4x4 mesh, scaled with mesh size), battery-powered
//! controller banks with failover ([`ControllerBank`], Sec 7.3), and the
//! control-overhead bookkeeping ([`ControlLedger`]) behind the paper's
//! "2.8 % … 11.6 %" overhead numbers.
//!
//! # Examples
//!
//! ```
//! use etx_control::{ControllerBank, ControllerEnergyModel, TdmaConfig};
//! use etx_units::Energy;
//!
//! let tdma = TdmaConfig::default();
//! // One upload slot carries 5 bits over a 2-bit medium: 3 slots long.
//! assert_eq!(tdma.upload_slots_per_node(), 3);
//!
//! // A 2-controller bank for an 8x8 mesh: the controller model scales
//! // its 4x4 measurement by 64/16 = 4x.
//! let model = ControllerEnergyModel::for_mesh_nodes(64);
//! let mut bank = ControllerBank::new(2, Energy::from_picojoules(60_000.0));
//! assert_eq!(bank.live_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod energy_model;
mod ledger;
mod tdma;

pub use bank::ControllerBank;
pub use energy_model::ControllerEnergyModel;
pub use ledger::ControlLedger;
pub use tdma::TdmaConfig;
