//! The [`ControllerBank`]: redundant controllers with failover (Sec 7.3).

use etx_battery::{Battery, DrawOutcome, ThinFilmBattery};
use etx_units::Energy;

/// A bank of central controllers, each with its own attached thin-film
/// battery (the same cell as the AES nodes, Sec 5.1.3).
///
/// Exactly one controller is *active* at a time; the others are powered
/// down ("several active and idle centralized controllers"). When the
/// active controller's battery dies, the next idle one takes over. The
/// system-lifetime effect of the bank size is the subject of the paper's
/// Fig 8.
///
/// An *infinite* bank (Sec 7.1–7.2: "a single central controller with
/// infinite energy resource") never dies and never pays for energy.
///
/// # Examples
///
/// ```
/// use etx_control::ControllerBank;
/// use etx_units::Energy;
///
/// let mut bank = ControllerBank::new(2, Energy::from_picojoules(100.0));
/// assert_eq!(bank.live_count(), 2);
/// // Drain through the first controller; the second takes over.
/// bank.charge(Energy::from_picojoules(150.0));
/// assert_eq!(bank.live_count(), 1);
/// assert!(!bank.all_dead());
/// ```
#[derive(Debug)]
pub struct ControllerBank {
    controllers: Vec<ThinFilmBattery>,
    active: usize,
    infinite: bool,
    consumed: Energy,
}

impl ControllerBank {
    /// Creates a bank of `count` controllers, each powered by a thin-film
    /// battery of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` — a platform without any controller cannot
    /// route at all; use [`ControllerBank::infinite`] for the idealized
    /// setup instead.
    #[must_use]
    pub fn new(count: usize, capacity: Energy) -> Self {
        assert!(count > 0, "a controller bank needs at least one controller");
        ControllerBank {
            controllers: (0..count).map(|_| ThinFilmBattery::new(capacity)).collect(),
            active: 0,
            infinite: false,
            consumed: Energy::ZERO,
        }
    }

    /// The idealized single controller with infinite energy used by the
    /// paper's Sec 7.1 and 7.2 experiments.
    #[must_use]
    pub fn infinite() -> Self {
        ControllerBank {
            controllers: Vec::new(),
            active: 0,
            infinite: true,
            consumed: Energy::ZERO,
        }
    }

    /// `true` for the infinite-energy controller.
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        self.infinite
    }

    /// Number of controllers still able to serve (always 1 for the
    /// infinite bank).
    #[must_use]
    pub fn live_count(&self) -> usize {
        if self.infinite {
            1
        } else {
            self.controllers.iter().filter(|c| !c.is_dead()).count()
        }
    }

    /// Total number of controllers provisioned.
    #[must_use]
    pub fn size(&self) -> usize {
        if self.infinite {
            1
        } else {
            self.controllers.len()
        }
    }

    /// `true` once every controller battery has died — the Sec 7.3
    /// system-death condition "the lifetime of the central controllers".
    #[must_use]
    pub fn all_dead(&self) -> bool {
        !self.infinite && self.controllers.iter().all(Battery::is_dead)
    }

    /// Total energy the control function has consumed so far (tracked
    /// even for the infinite bank, for overhead accounting).
    #[must_use]
    pub fn consumed(&self) -> Energy {
        self.consumed
    }

    /// Draws `energy` from the active controller, failing over to the
    /// next idle controller if the active one dies mid-draw (the residual
    /// charge request is forwarded).
    ///
    /// Returns `false` once the whole bank is dead and the draw could not
    /// be completed.
    pub fn charge(&mut self, energy: Energy) -> bool {
        self.consumed += energy.clamp_non_negative();
        if self.infinite {
            return true;
        }
        let mut remaining = energy.clamp_non_negative();
        while self.active < self.controllers.len() {
            match self.controllers[self.active].draw(remaining) {
                DrawOutcome::Delivered => return true,
                DrawOutcome::Depleted { delivered } => {
                    remaining = (remaining - delivered).clamp_non_negative();
                    self.active += 1;
                }
                DrawOutcome::AlreadyDead => {
                    self.active += 1;
                }
            }
        }
        false
    }

    /// Index of the active controller, if any is alive.
    #[must_use]
    pub fn active_index(&self) -> Option<usize> {
        if self.infinite {
            Some(0)
        } else if self.active < self.controllers.len() && !self.controllers[self.active].is_dead() {
            Some(self.active)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    #[test]
    fn infinite_bank_never_dies() {
        let mut bank = ControllerBank::infinite();
        assert!(bank.is_infinite());
        assert_eq!(bank.size(), 1);
        for _ in 0..1000 {
            assert!(bank.charge(pj(1e6)));
        }
        assert!(!bank.all_dead());
        assert_eq!(bank.active_index(), Some(0));
        assert_eq!(bank.consumed().picojoules(), 1e9);
    }

    #[test]
    fn failover_walks_through_bank() {
        // Thin-film cells strand ~5 % at the 3.0 V knee, so each 1000 pJ
        // controller delivers a bit under 1000 pJ.
        let mut bank = ControllerBank::new(3, pj(1000.0));
        let mut served = 0u32;
        while bank.charge(pj(100.0)) {
            served += 1;
            assert!(served < 100, "bank never died");
        }
        assert!(bank.all_dead());
        assert_eq!(bank.live_count(), 0);
        assert_eq!(bank.active_index(), None);
        // Three batteries at >=85 % usable each: at least 24 draws served.
        assert!(served >= 24, "served only {served}");
    }

    #[test]
    fn live_count_decreases_on_failover() {
        let mut bank = ControllerBank::new(2, pj(200.0));
        assert_eq!(bank.live_count(), 2);
        while bank.active_index() == Some(0) {
            bank.charge(pj(50.0));
        }
        assert!(bank.live_count() <= 1);
    }

    #[test]
    fn consumed_tracks_all_draws() {
        let mut bank = ControllerBank::new(1, pj(100.0));
        bank.charge(pj(30.0));
        bank.charge(pj(30.0));
        assert_eq!(bank.consumed().picojoules(), 60.0);
    }

    #[test]
    #[should_panic(expected = "at least one controller")]
    fn empty_bank_panics() {
        let _ = ControllerBank::new(0, pj(100.0));
    }
}
