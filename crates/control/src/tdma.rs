//! The [`TdmaConfig`] frame schedule and shared-medium energy.

use etx_energy::TransmissionLineModel;
use etx_units::{Cycles, Energy, Length};

/// Configuration of the TDMA control frames (the paper's Fig 4).
///
/// Defaults are calibrated so the control-energy overhead lands in the
/// paper's reported band (2.8 % on a 4x4 mesh growing to ~12 % on 8x8):
/// 5-bit status uploads (4-bit battery level + deadlock flag), 8-bit
/// routing downloads, a 2-bit-wide shared medium of 20 cm, and one frame
/// every 1024 cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct TdmaConfig {
    /// Cycles between consecutive control frames.
    pub frame_period: Cycles,
    /// Bits each node uploads per frame (battery level + deadlock flag).
    pub upload_bits_per_node: u32,
    /// Bits the controller downloads per node when routing changes.
    pub download_bits_per_node: u32,
    /// Width of the shared control medium in bits ("can be very narrow,
    /// for instance, only 2-bit wide").
    pub medium_width_bits: u32,
    /// Physical length of the shared medium.
    pub medium_length: Length,
    /// Switching activity on the medium.
    pub medium_activity: f64,
}

impl Default for TdmaConfig {
    fn default() -> Self {
        TdmaConfig {
            frame_period: Cycles::new(1024),
            upload_bits_per_node: 5,
            download_bits_per_node: 8,
            medium_width_bits: 2,
            medium_length: Length::from_centimetres(20.0),
            medium_activity: 1.0,
        }
    }
}

impl TdmaConfig {
    /// Checks the configuration, returning a descriptive message for the
    /// first violated constraint. This is the non-fatal form fleet
    /// scenario sampling relies on: a bad sampled schedule is rejected,
    /// not a process abort.
    ///
    /// # Errors
    ///
    /// A static description of the violated constraint.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.frame_period.is_zero() {
            return Err("frame period must be positive");
        }
        if self.upload_bits_per_node == 0 {
            return Err("upload payload must be non-empty");
        }
        if self.download_bits_per_node == 0 {
            return Err("download payload must be non-empty");
        }
        if self.medium_width_bits == 0 {
            return Err("medium width must be positive");
        }
        if !self.medium_activity.is_finite() || !(0.0..=1.0).contains(&self.medium_activity) {
            return Err("medium activity must be in [0, 1]");
        }
        Ok(())
    }

    /// TDMA slots (medium cycles) one node's upload occupies.
    #[must_use]
    pub fn upload_slots_per_node(&self) -> u32 {
        self.upload_bits_per_node.div_ceil(self.medium_width_bits)
    }

    /// TDMA slots one node's download occupies.
    #[must_use]
    pub fn download_slots_per_node(&self) -> u32 {
        self.download_bits_per_node.div_ceil(self.medium_width_bits)
    }

    /// Total cycles of one full frame (upload + download phases) for
    /// `nodes` participating nodes, assuming one slot per cycle.
    #[must_use]
    pub fn frame_cycles(&self, nodes: usize) -> Cycles {
        let slots =
            (self.upload_slots_per_node() + self.download_slots_per_node()) as u64 * nodes as u64;
        Cycles::new(slots)
    }

    /// Energy one node spends driving the shared medium for its upload
    /// slot in one frame.
    #[must_use]
    pub fn upload_energy_per_node(&self, line: &TransmissionLineModel) -> Energy {
        line.energy_per_bit_switch(self.medium_length)
            * f64::from(self.upload_bits_per_node)
            * self.medium_activity
    }

    /// Energy the controller spends driving the shared medium to download
    /// one node's routing instruction.
    #[must_use]
    pub fn download_energy_per_node(&self, line: &TransmissionLineModel) -> Energy {
        line.energy_per_bit_switch(self.medium_length)
            * f64::from(self.download_bits_per_node)
            * self.medium_activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_shape() {
        let t = TdmaConfig::default();
        t.check().expect("default schedule is valid");
        assert_eq!(t.medium_width_bits, 2); // the paper's 2-bit medium
        assert_eq!(t.upload_slots_per_node(), 3); // ceil(5/2)
        assert_eq!(t.download_slots_per_node(), 4); // ceil(8/2)
        assert_eq!(t.frame_cycles(16), Cycles::new(112)); // (3+4)*16
    }

    #[test]
    fn upload_energy_uses_medium_length() {
        let t = TdmaConfig::default();
        let line = TransmissionLineModel::textile();
        // 5 bits at the 20 cm anchor (11.867 pJ/bit).
        let e = t.upload_energy_per_node(&line);
        assert!((e.picojoules() - 5.0 * 11.867).abs() < 1e-9);
        let d = t.download_energy_per_node(&line);
        assert!((d.picojoules() - 8.0 * 11.867).abs() < 1e-9);
    }

    #[test]
    fn slots_round_up() {
        let t = TdmaConfig { upload_bits_per_node: 4, ..TdmaConfig::default() };
        assert_eq!(t.upload_slots_per_node(), 2);
        let t = TdmaConfig { medium_width_bits: 3, ..TdmaConfig::default() };
        assert_eq!(t.upload_slots_per_node(), 2); // ceil(5/3)
    }

    #[test]
    fn frame_cycles_scale_with_mesh() {
        let t = TdmaConfig::default();
        assert!(t.frame_cycles(64) > t.frame_cycles(16));
        assert_eq!(t.frame_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn zero_width_medium_rejected() {
        let err = TdmaConfig { medium_width_bits: 0, ..TdmaConfig::default() }.check().unwrap_err();
        assert!(err.contains("medium width"));
    }

    #[test]
    fn zero_period_rejected() {
        let err =
            TdmaConfig { frame_period: Cycles::ZERO, ..TdmaConfig::default() }.check().unwrap_err();
        assert!(err.contains("frame period"));
    }

    /// Every invalid schedule is reported through `check()`'s `Err`
    /// (the panicking `validate()` wrapper is gone): callers match on
    /// the result instead of aborting the process.
    #[test]
    fn check_reports_every_violation_without_panicking() {
        let bad = [
            TdmaConfig { medium_width_bits: 0, ..TdmaConfig::default() },
            TdmaConfig { upload_bits_per_node: 0, ..TdmaConfig::default() },
            TdmaConfig { download_bits_per_node: 0, ..TdmaConfig::default() },
            TdmaConfig { medium_activity: f64::NAN, ..TdmaConfig::default() },
        ];
        for cfg in bad {
            assert!(cfg.check().is_err());
        }
    }
}
