//! The [`ControlLedger`]: overhead accounting for Sec 7.1's percentages.

use etx_units::Energy;

/// Running account of where control energy went.
///
/// The paper reports "the percentage of energy consumed on exchanging the
/// control information divided by the total energy consumption" — 2.8 %,
/// 3.1 %, 4.1 %, 9.3 % and 11.6 % for 4x4 … 8x8 meshes. The ledger
/// separates the shared-medium energy (what that quote measures) from the
/// controller's own compute energy so both ratios can be reported.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlLedger {
    upload_medium: Energy,
    download_medium: Energy,
    controller_compute: Energy,
}

impl ControlLedger {
    /// A fresh, empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records energy spent by nodes driving the medium during uploads.
    pub fn record_upload(&mut self, energy: Energy) {
        self.upload_medium += energy.clamp_non_negative();
    }

    /// Records energy spent by the controller driving downloads.
    pub fn record_download(&mut self, energy: Energy) {
        self.download_medium += energy.clamp_non_negative();
    }

    /// Records controller computation (routing algorithm + leakage).
    pub fn record_controller_compute(&mut self, energy: Energy) {
        self.controller_compute += energy.clamp_non_negative();
    }

    /// Energy spent on the shared medium (uploads + downloads) — the
    /// quantity behind the paper's overhead percentages.
    #[must_use]
    pub fn medium_energy(&self) -> Energy {
        self.upload_medium + self.download_medium
    }

    /// Upload-phase medium energy.
    #[must_use]
    pub fn upload_energy(&self) -> Energy {
        self.upload_medium
    }

    /// Download-phase medium energy.
    #[must_use]
    pub fn download_energy(&self) -> Energy {
        self.download_medium
    }

    /// Controller compute + leakage energy.
    #[must_use]
    pub fn controller_energy(&self) -> Energy {
        self.controller_compute
    }

    /// Everything the control mechanism consumed.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.medium_energy() + self.controller_compute
    }

    /// The paper's overhead metric: medium energy as a fraction of
    /// `total_system_energy` (which must already include the medium
    /// energy). Returns 0 for a zero-energy system.
    #[must_use]
    pub fn overhead_fraction(&self, total_system_energy: Energy) -> f64 {
        if total_system_energy.is_positive() {
            self.medium_energy() / total_system_energy
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    #[test]
    fn accumulates_by_category() {
        let mut l = ControlLedger::new();
        l.record_upload(pj(10.0));
        l.record_upload(pj(5.0));
        l.record_download(pj(20.0));
        l.record_controller_compute(pj(100.0));
        assert_eq!(l.upload_energy(), pj(15.0));
        assert_eq!(l.download_energy(), pj(20.0));
        assert_eq!(l.medium_energy(), pj(35.0));
        assert_eq!(l.controller_energy(), pj(100.0));
        assert_eq!(l.total(), pj(135.0));
    }

    #[test]
    fn overhead_fraction_matches_paper_definition() {
        let mut l = ControlLedger::new();
        l.record_upload(pj(28.0));
        // 28 medium out of 1000 total system energy: 2.8 %.
        assert!((l.overhead_fraction(pj(1000.0)) - 0.028).abs() < 1e-12);
        assert_eq!(l.overhead_fraction(Energy::ZERO), 0.0);
    }

    #[test]
    fn negative_records_are_clamped() {
        let mut l = ControlLedger::new();
        l.record_upload(pj(-5.0));
        assert_eq!(l.medium_energy(), Energy::ZERO);
    }

    #[test]
    fn default_is_empty() {
        let l = ControlLedger::default();
        assert_eq!(l.total(), Energy::ZERO);
    }
}
