//! Phase 3: routing tables — nearest-duplicate destination selection with
//! deadlock avoidance (the paper's Fig 6).

use etx_graph::{IndexPlane, Matrix, NodeBitset, NodeId, PlaneIdx, ShortestPaths};

use crate::SystemReport;

/// One routing-table entry: where node `n` should send a packet whose next
/// operation belongs to module `i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEntry {
    /// The chosen destination (a live node hosting the module).
    pub destination: NodeId,
    /// The first hop out of the origin toward `destination`. Equals
    /// `destination` when the origin hosts the module itself (distance 0,
    /// no packet leaves the node).
    pub next_hop: NodeId,
    /// The phase-2 distance to `destination` (battery-weighted under EAR).
    pub distance: f64,
}

/// Struct-of-arrays compaction of the flat phase-3 route table: the
/// read-side layout `etx-serve` snapshots serve queries from.
///
/// One `Option<RouteEntry>` (a 32-byte struct, half of it padding and
/// `Option` discriminant) becomes one lane in each of four planes: a
/// destination-index plane, a first-hop-index plane (both
/// `u16`-compacted via [`IndexPlane`] whenever the node count allows),
/// an `f64` entry-distance plane, and a validity word-bitset. A batched
/// next-hop lookup gathers 4–12 bytes from planes that stay resident in
/// L1 instead of chasing 32-byte entries through L2, and queries that
/// never read the distance (pure next-hop relaying) never touch the
/// distance plane at all.
///
/// Invalid entries store the sentinel in both index planes and `0.0`
/// in the distance plane, so two plane sets filled from equal tables
/// under equal index bounds compare equal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteTablePlanes {
    /// Destination-index plane (`flat = node * module_count + module`).
    pub dest: IndexPlane,
    /// First-hop-index plane.
    pub next_hop: IndexPlane,
    /// Entry-distance plane (`0.0` where invalid).
    pub distance: Vec<f64>,
    /// Validity bitset over flat table positions: a clear bit is a
    /// `None` entry.
    pub valid: NodeBitset,
}

impl RouteTablePlanes {
    /// Empty planes; fill through [`RouteTablePlanes::fill_from_table`]
    /// (or [`RoutingState::export_route_planes`]) before use.
    #[must_use]
    pub fn new() -> Self {
        RouteTablePlanes::default()
    }

    /// Number of flat table positions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.distance.len()
    }

    /// `true` when no positions are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.distance.is_empty()
    }

    /// Reconstructs the `Option<RouteEntry>` at flat position `flat`
    /// (`None` for invalid and out-of-range positions) — byte-identical
    /// to the entry the planes were filled from.
    #[must_use]
    pub fn entry(&self, flat: usize) -> Option<RouteEntry> {
        if !self.valid.contains(NodeId::new(flat)) {
            return None;
        }
        Some(RouteEntry {
            destination: NodeId::new(self.dest.get(flat)?),
            next_hop: NodeId::new(self.next_hop.get(flat)?),
            distance: self.distance[flat],
        })
    }

    /// Refills every plane from a flat AoS table, in one pass, reusing
    /// all four backing allocations (no heap allocation in steady
    /// state). `index_bound` is the exclusive upper bound of node
    /// indices the planes must represent — the producing system's node
    /// count; bounds past [`IndexPlane::NARROW_BOUND`] select the wide
    /// (`u32`) fallback planes.
    pub fn fill_from_table(&mut self, table: &[Option<RouteEntry>], index_bound: usize) {
        self.valid.resize(table.len());
        self.distance.clear();
        self.distance.reserve(table.len());
        if IndexPlane::narrow_fits(index_bound) {
            self.fill_lanes::<u16>(table);
        } else {
            self.fill_lanes::<u32>(table);
        }
    }

    fn fill_lanes<I: PlaneIdx>(&mut self, table: &[Option<RouteEntry>])
    where
        IndexPlane: PlaneLanes<I>,
    {
        let dest = PlaneLanes::<I>::reset_lanes(&mut self.dest);
        dest.reserve(table.len());
        let next = PlaneLanes::<I>::reset_lanes(&mut self.next_hop);
        next.reserve(table.len());
        for (flat, entry) in table.iter().enumerate() {
            match entry {
                Some(entry) => {
                    dest.push(I::compact(entry.destination.index()));
                    next.push(I::compact(entry.next_hop.index()));
                    self.distance.push(entry.distance);
                    self.valid.insert(NodeId::new(flat));
                }
                None => {
                    dest.push(I::SENTINEL);
                    next.push(I::SENTINEL);
                    self.distance.push(0.0);
                }
            }
        }
    }
}

/// Width-dispatch helper: resolves an [`IndexPlane`] to the lane buffer
/// of one concrete width so [`RouteTablePlanes::fill_from_table`] runs
/// a single monomorphized fill loop per width.
trait PlaneLanes<I: PlaneIdx> {
    fn reset_lanes(&mut self) -> &mut Vec<I>;
}

impl PlaneLanes<u16> for IndexPlane {
    fn reset_lanes(&mut self) -> &mut Vec<u16> {
        self.reset_narrow()
    }
}

impl PlaneLanes<u32> for IndexPlane {
    fn reset_lanes(&mut self) -> &mut Vec<u32> {
        self.reset_wide()
    }
}

/// Which phase-2 algorithm (and successor tie-breaking policy) filled the
/// current [`ShortestPaths`] of a [`RoutingState`].
///
/// The delta-aware recompute keeps untouched all-pairs rows as-is and
/// recomputes only affected sources with single-source Dijkstra; that is
/// only sound when every existing row was produced by the same
/// deterministic Dijkstra policy, which this marker tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PathPolicy {
    /// Provenance unknown (state assembled outside the router).
    Unknown,
    /// Rows produced by Floyd–Warshall tie-breaking.
    FloydWarshall,
    /// Rows produced by the deterministic Dijkstra policy.
    Dijkstra,
}

/// The complete routing state computed by one controller invocation:
/// the phase-2 all-pairs data plus the phase-3 per-(node, module) table.
///
/// Relay nodes forward by destination using [`RoutingState::next_hop`];
/// origin nodes consult [`RoutingState::route`] to pick the destination
/// duplicate for their job's next operation.
///
/// The table is stored flat (`node * module_count + module`), so a
/// recompute into an existing state touches one contiguous buffer and
/// performs no allocation in steady state.
#[derive(Debug, Clone)]
pub struct RoutingState {
    paths: ShortestPaths,
    /// Flat `[node × module]` table, row-major by node.
    table: Vec<Option<RouteEntry>>,
    modules: usize,
    pub(crate) policy: PathPolicy,
}

/// Equality compares the routing *data* (phase-2 paths and phase-3
/// table) only; the internal backend-provenance marker is excluded, so
/// identically-routed states built through different entry points
/// compare equal.
impl PartialEq for RoutingState {
    fn eq(&self, other: &Self) -> bool {
        self.paths == other.paths && self.table == other.table && self.modules == other.modules
    }
}

impl RoutingState {
    /// Builds the phase-3 table from phase-2 results.
    ///
    /// For every node `n` and module `i`, selects the live duplicate
    /// `j ∈ S_i` minimizing `D(n, j)`. When `n` is flagged deadlocked, the
    /// first hop recorded in `previous` for `(n, i)` is the blocked port
    /// the controller must redirect the job away from (paper Sec 5.3 /
    /// Fig 6 line 5): candidates are then restricted to first hops `m`
    /// other than that port, scored `W(n, m) + D(m, j)` — the cheapest
    /// unlocked detour phase 2 already paid for.
    ///
    /// `weights` is the phase-1 matrix the phase-2 result was computed
    /// from; finite off-diagonal entries are exactly the usable links.
    ///
    /// Unreachable or extinct modules yield `None` entries (the system is
    /// about to be declared dead by the caller).
    ///
    /// A `previous` state whose node or module count does not match the
    /// current inputs is ignored (as if `None` were passed): its table
    /// has no meaningful blocked-port entries for this system shape.
    ///
    /// # Panics
    ///
    /// Panics if the report or weight matrix cover a different number of
    /// nodes than the phase-2 result.
    #[must_use]
    pub fn build(
        paths: ShortestPaths,
        weights: &Matrix<f64>,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
    ) -> Self {
        let mut state = RoutingState {
            paths,
            table: Vec::new(),
            modules: module_nodes.len(),
            policy: PathPolicy::Unknown,
        };
        // Snapshot the previous first hops (only deadlocked nodes need
        // them; copying the full table keeps the loop branch-free).
        let prev_hops: Option<Vec<Option<NodeId>>> = previous
            .filter(|p| {
                p.module_count() == module_nodes.len() && p.node_count() == state.paths.node_count()
            })
            .map(RoutingState::next_hop_snapshot);
        state.rebuild_table(weights, module_nodes, report, prev_hops.as_deref());
        state
    }

    /// An empty state for preallocated workspaces; fill it through
    /// `Router::compute_into` before use.
    #[must_use]
    pub fn empty() -> Self {
        RoutingState {
            paths: ShortestPaths::empty(),
            table: Vec::new(),
            modules: 0,
            policy: PathPolicy::Unknown,
        }
    }

    /// Flat copy of every entry's first hop, indexed `node * modules +
    /// module` — the part of a previous table the deadlock-avoidance scan
    /// needs.
    pub(crate) fn next_hop_snapshot(&self) -> Vec<Option<NodeId>> {
        self.table.iter().map(|e| e.as_ref().map(|e| e.next_hop)).collect()
    }

    /// Writes the flat next-hop snapshot into `out` (reusing capacity).
    pub(crate) fn next_hop_snapshot_into(&self, out: &mut Vec<Option<NodeId>>) {
        out.clear();
        out.extend(self.table.iter().map(|e| e.as_ref().map(|e| e.next_hop)));
    }

    /// Mutable access to the phase-2 data for in-place backends.
    pub(crate) fn paths_mut(&mut self) -> &mut ShortestPaths {
        &mut self.paths
    }

    /// Split borrow for the repair pipeline: mutable phase-2 data plus a
    /// read-only view of the *current* (pre-rebuild) table, so stage 2
    /// can check which entries' winning destinations were touched while
    /// it rewrites the all-pairs rows.
    pub(crate) fn paths_and_table_mut(
        &mut self,
    ) -> (&mut ShortestPaths, &[Option<RouteEntry>], usize) {
        (&mut self.paths, &self.table, self.modules)
    }

    /// Rebuilds the phase-3 table in place from the current phase-2 data
    /// (the paper's Fig 6), reusing the table buffer: no allocation once
    /// the `(node, module)` dimensions have been seen.
    ///
    /// `prev_hops` is a [`RoutingState::next_hop_snapshot`] of the
    /// previous controller invocation (deadlock-port avoidance); its
    /// length must be `n * module_nodes.len()` if present.
    ///
    /// # Panics
    ///
    /// Panics if the report or weight matrix cover a different number of
    /// nodes than the phase-2 result.
    pub(crate) fn rebuild_table(
        &mut self,
        weights: &Matrix<f64>,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        prev_hops: Option<&[Option<NodeId>]>,
    ) {
        let n = self.paths.node_count();
        assert_eq!(
            n,
            report.node_count(),
            "report covers {} nodes but phase 2 covered {n}",
            report.node_count()
        );
        assert_eq!(weights.rows(), n, "weight matrix does not match phase 2");
        let m = module_nodes.len();
        if let Some(prev) = prev_hops {
            assert_eq!(prev.len(), n * m, "previous-hop snapshot dimensions mismatch");
        }
        self.modules = m;
        self.table.clear();
        self.table.resize(n * m, None);
        for node_idx in 0..n {
            fill_table_row(
                &self.paths,
                &mut self.table[node_idx * m..(node_idx + 1) * m],
                node_idx,
                weights,
                module_nodes,
                report,
                prev_hops,
            );
        }
    }

    /// Refreshes the table row of a single node from the current phase-2
    /// data — the delta-aware stage 3: when the router knows which
    /// sources' all-pairs rows changed (and that liveness, deadlock flags
    /// and placement did not), refreshing only those rows is exactly
    /// equivalent to a full [`RoutingState::rebuild_table`].
    ///
    /// # Panics
    ///
    /// Panics if the table was not previously built for
    /// (`node_count`, `module_nodes.len()`) dimensions.
    pub(crate) fn rebuild_table_row(
        &mut self,
        node_idx: usize,
        weights: &Matrix<f64>,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        prev_hops: Option<&[Option<NodeId>]>,
    ) {
        let m = module_nodes.len();
        assert_eq!(m, self.modules, "table was built for a different module count");
        fill_table_row(
            &self.paths,
            &mut self.table[node_idx * m..(node_idx + 1) * m],
            node_idx,
            weights,
            module_nodes,
            report,
            prev_hops,
        );
    }

    /// Refreshes a single `(node, module)` table entry — the finest
    /// grain of the delta-aware stage 3: an entry's inputs are the
    /// node's distances *to that module's duplicates* (plus liveness and
    /// deadlock flags), so when the repair pipeline knows which
    /// destinations a source's row changed for, everything else can be
    /// left untouched. Only sound on deadlock-free frames (no
    /// `prev_hops` detour).
    ///
    /// # Panics
    ///
    /// Panics if the table was not previously built for
    /// (`node_count`, `module_nodes.len()`) dimensions.
    pub(crate) fn rebuild_table_cell(
        &mut self,
        node_idx: usize,
        module: usize,
        module_nodes: &[Vec<NodeId>],
        weights: &Matrix<f64>,
        report: &SystemReport,
    ) {
        let m = module_nodes.len();
        assert_eq!(m, self.modules, "table was built for a different module count");
        fill_table_cell(
            &self.paths,
            &mut self.table[node_idx * m + module],
            node_idx,
            module,
            &module_nodes[module],
            weights,
            report,
            None,
            m,
        );
    }

    /// Patches the masked entries of one node's table row against the
    /// just-repaired phase-2 rows by *challenging* the cached winners,
    /// in `O(marked · |improved|)` comparisons instead of the
    /// `O(marked · |S_i|)` duplicate re-scan of
    /// [`RoutingState::rebuild_table_cell`] — the churn-frame half of
    /// the delta-aware stage 3, where the marked duplicates vastly
    /// outnumber the improved ones.
    ///
    /// Soundness leans on the repair contract. Between two
    /// deadlock-free, placement-stable frames a `(node, module)` entry
    /// can change hands in exactly two ways:
    ///
    /// * the cached winner **worsened** — its distance grew, became
    ///   infinite, or the duplicate died — so a previously-losing
    ///   candidate may take over and the cell needs the full duplicate
    ///   re-scan (a died duplicate shows up here too: a dead node's
    ///   row distance is infinite);
    /// * some candidate's key got **better** — its distance shrank
    ///   (revived duplicates included: their distance drops from
    ///   infinity) — and every such node is in the repair's improved
    ///   set by construction, so challenging the improved duplicates
    ///   alone is exhaustive. A candidate whose distance grew keeps
    ///   losing; one whose key is unchanged already lost to the
    ///   cached winner's (unworsened) key.
    ///
    /// The winner check is `O(1)` because the stored entry keeps the
    /// previous frame's distance: comparing it against the current row
    /// separates "kept or improved" (refresh the fields in place — an
    /// exact-tie achiever flip keeps the distance but can re-hang the
    /// successor) from "worsened" (full re-pick). The tie-break mirrors
    /// [`fill_table_cell`]'s `(distance, lower destination id)` order
    /// bit for bit.
    ///
    /// Only sound on deadlock-free frames (no `prev_hops` detour), like
    /// the cell rebuild it specialises. `improved` must hold the
    /// repair's improved set for this node's source row; bit `i` of
    /// `dup_mask[x]` says node `x` hosts module `i`.
    ///
    /// Returns `(entries touched, entries that needed the full
    /// re-scan)`.
    ///
    /// # Panics
    ///
    /// Panics if the table was not previously built for
    /// (`node_count`, `module_nodes.len()`) dimensions.
    #[allow(clippy::too_many_arguments)] // the Fig-6 input set plus the repair's delta feed
    pub(crate) fn patch_table_row(
        &mut self,
        node_idx: usize,
        mut mask: u64,
        improved: &[u32],
        dup_mask: &[u64],
        module_nodes: &[Vec<NodeId>],
        weights: &Matrix<f64>,
        report: &SystemReport,
    ) -> (u64, u64) {
        let m = module_nodes.len();
        assert_eq!(m, self.modules, "table was built for a different module count");
        let node = NodeId::new(node_idx);
        let (mut touched, mut full) = (0u64, 0u64);
        if !report.is_alive(node) {
            // Dead origins own all-`None` rows (the router marks a
            // liveness flip's own row for a whole-row rebuild, so this
            // is defensive, not load-bearing).
            while mask != 0 {
                let module = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                touched += 1;
                self.table[node_idx * m + module] = None;
            }
            return (touched, full);
        }
        while mask != 0 {
            let module = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            touched += 1;
            let slot_idx = node_idx * m + module;
            // O(1) winner check: did the cached winner worsen?
            let kept: Option<RouteEntry> = match self.table[slot_idx] {
                // An empty cell has no winner to lose; only improved
                // candidates can fill it, and the challenge loop below
                // considers exactly those.
                None => None,
                Some(e) if e.destination == node => Some(e), // self-hosting: 0 cannot worsen
                Some(e) => {
                    if report.is_alive(e.destination) {
                        match self.paths.distance(node, e.destination) {
                            Some(d) if d <= e.distance => {
                                let next_hop = self
                                    .paths
                                    .successor(node, e.destination)
                                    .expect("finite distance implies a successor");
                                Some(RouteEntry {
                                    destination: e.destination,
                                    next_hop,
                                    distance: d,
                                })
                            }
                            _ => {
                                // Worsened or unreachable: re-pick.
                                full += 1;
                                fill_table_cell(
                                    &self.paths,
                                    &mut self.table[slot_idx],
                                    node_idx,
                                    module,
                                    &module_nodes[module],
                                    weights,
                                    report,
                                    None,
                                    m,
                                );
                                continue;
                            }
                        }
                    } else {
                        full += 1;
                        fill_table_cell(
                            &self.paths,
                            &mut self.table[slot_idx],
                            node_idx,
                            module,
                            &module_nodes[module],
                            weights,
                            report,
                            None,
                            m,
                        );
                        continue;
                    }
                }
            };
            // Challenge round: only the improved duplicates can beat a
            // kept winner (or fill an empty cell).
            let mut best = kept;
            let module_bit = 1u64 << module;
            for &x in improved {
                let dest = NodeId::new(x as usize);
                if dup_mask[x as usize] & module_bit == 0
                    || !report.is_alive(dest)
                    || best.is_some_and(|b| b.destination == dest)
                {
                    continue;
                }
                let candidate = if dest == node {
                    RouteEntry { destination: dest, next_hop: node, distance: 0.0 }
                } else {
                    let Some(distance) = self.paths.distance(node, dest) else {
                        continue;
                    };
                    let Some(next_hop) = self.paths.successor(node, dest) else {
                        continue;
                    };
                    RouteEntry { destination: dest, next_hop, distance }
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        candidate.distance < b.distance
                            || (candidate.distance == b.distance
                                && candidate.destination < b.destination)
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
            self.table[slot_idx] = best;
        }
        (touched, full)
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.paths.node_count()
    }

    /// The flat phase-3 table, row-major by node (`node * module_count +
    /// module`) — the AoS master copy read-side snapshot services
    /// compact into planes in one pass (see
    /// [`RoutingState::export_route_planes`] and `etx-serve`).
    #[must_use]
    pub fn route_table(&self) -> &[Option<RouteEntry>] {
        &self.table
    }

    /// Compacts the phase-3 table into struct-of-arrays planes — the
    /// read-side export surface: `etx-serve` snapshots call this once
    /// per published epoch and then answer batched lookups from the
    /// planes without reconstructing `Option<RouteEntry>` values until
    /// result write-back. Reuses every buffer in `out`; the lane width
    /// follows [`RoutingState::node_count`].
    pub fn export_route_planes(&self, out: &mut RouteTablePlanes) {
        out.fill_from_table(&self.table, self.node_count());
    }

    /// Number of modules covered.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules
    }

    /// The routing-table entry for packets originating at `node` whose
    /// next operation belongs to `module`; `None` if no live duplicate is
    /// reachable (or `node`/`module` is unknown).
    #[must_use]
    pub fn route(&self, node: NodeId, module: usize) -> Option<&RouteEntry> {
        if module >= self.modules {
            return None;
        }
        self.table.get(node.index() * self.modules + module)?.as_ref()
    }

    /// The relay decision: the next hop out of `from` toward destination
    /// `to`, from the phase-2 successor matrix.
    #[must_use]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            Some(to)
        } else {
            self.paths.successor(from, to)
        }
    }

    /// The phase-2 (weighted) distance between two nodes.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.paths.distance(from, to)
    }

    /// The full phase-2 result, for diagnostics.
    #[must_use]
    pub fn paths(&self) -> &ShortestPaths {
        &self.paths
    }
}

/// Fills one node's table row (the paper's Fig 6 body for a single
/// origin): for every module, the nearest live duplicate by phase-2
/// distance, with the deadlock-port detour scan when the node is flagged.
/// Dead origins get all-`None` rows.
fn fill_table_row(
    paths: &ShortestPaths,
    row: &mut [Option<RouteEntry>],
    node_idx: usize,
    weights: &Matrix<f64>,
    module_nodes: &[Vec<NodeId>],
    report: &SystemReport,
    prev_hops: Option<&[Option<NodeId>]>,
) {
    let m = module_nodes.len();
    for (module, duplicates) in module_nodes.iter().enumerate() {
        fill_table_cell(
            paths,
            &mut row[module],
            node_idx,
            module,
            duplicates,
            weights,
            report,
            prev_hops,
            m,
        );
    }
}

/// Fills one `(node, module)` table entry: the nearest live duplicate of
/// `module` by phase-2 distance (deterministic lower-id tie-break), with
/// the deadlock-port detour scan when the node is flagged. A dead origin
/// yields `None`.
#[allow(clippy::too_many_arguments)] // the full Fig-6 input set for one cell
fn fill_table_cell(
    paths: &ShortestPaths,
    slot: &mut Option<RouteEntry>,
    node_idx: usize,
    module: usize,
    duplicates: &[NodeId],
    weights: &Matrix<f64>,
    report: &SystemReport,
    prev_hops: Option<&[Option<NodeId>]>,
    module_count: usize,
) {
    let n = paths.node_count();
    let node = NodeId::new(node_idx);
    if !report.is_alive(node) {
        *slot = None;
        return;
    }
    // A deadlocked node must be steered off the port its previous table
    // used for this module.
    let blocked_port = if report.is_deadlocked(node) {
        prev_hops.and_then(|prev| prev[node_idx * module_count + module])
    } else {
        None
    };
    let mut best: Option<RouteEntry> = None;
    let consider = |candidate: RouteEntry, best: &mut Option<RouteEntry>| {
        let better = match best {
            None => true,
            Some(b) => {
                candidate.distance < b.distance
                    || (candidate.distance == b.distance && candidate.destination < b.destination)
            }
        };
        if better {
            *best = Some(candidate);
        }
    };
    for &dest in duplicates {
        if !report.is_alive(dest) {
            continue;
        }
        if dest == node {
            // Self-hosting: no packet leaves the node, so no port can be
            // blocked.
            consider(RouteEntry { destination: dest, next_hop: node, distance: 0.0 }, &mut best);
            continue;
        }
        match blocked_port {
            None => {
                let Some(distance) = paths.distance(node, dest) else {
                    continue;
                };
                let Some(next_hop) = paths.successor(node, dest) else {
                    continue;
                };
                consider(RouteEntry { destination: dest, next_hop, distance }, &mut best);
            }
            Some(blocked) => {
                // Detour scan: first hop over any live link except the
                // blocked port.
                for hop_idx in 0..n {
                    let hop = NodeId::new(hop_idx);
                    if hop == node || hop == blocked {
                        continue;
                    }
                    let w = weights[(node_idx, hop_idx)];
                    if !w.is_finite() {
                        continue;
                    }
                    let Some(rest) = paths.distance(hop, dest) else {
                        continue;
                    };
                    consider(
                        RouteEntry { destination: dest, next_hop: hop, distance: w + rest },
                        &mut best,
                    );
                }
            }
        }
    }
    *slot = best;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ear_weights, BatteryWeighting};
    use etx_graph::{floyd_warshall, topology, DiGraph};
    use etx_units::Length;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    fn build_line(
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
    ) -> RoutingState {
        let g = topology::line(4, cm(1.0));
        let w = ear_weights(&g, report, &BatteryWeighting::default());
        RoutingState::build(floyd_warshall(&w), &w, module_nodes, report, previous)
    }

    #[test]
    fn picks_nearest_duplicate() {
        // Module 0 hosted at nodes 0 and 3 of a 4-line.
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let report = SystemReport::fresh(4, 16);
        let rs = build_line(&modules, &report, None);
        // Node 1 is nearer to 0; node 2 nearer to 3.
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));
        assert_eq!(rs.route(NodeId::new(2), 0).unwrap().destination, NodeId::new(3));
        // Self-hosting: destination and next hop are the node itself.
        let own = rs.route(NodeId::new(0), 0).unwrap();
        assert_eq!(own.destination, NodeId::new(0));
        assert_eq!(own.next_hop, NodeId::new(0));
        assert_eq!(own.distance, 0.0);
    }

    #[test]
    fn ties_break_toward_lower_node_id() {
        let modules = vec![vec![NodeId::new(0), NodeId::new(2)]];
        let report = SystemReport::fresh(3, 16);
        let g = topology::line(3, cm(1.0));
        let w = ear_weights(&g, &report, &BatteryWeighting::default());
        let rs = RoutingState::build(floyd_warshall(&w), &w, &modules, &report, None);
        // Node 1 is equidistant; deterministic tie-break to node 0.
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));
    }

    #[test]
    fn dead_duplicates_are_skipped() {
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let mut report = SystemReport::fresh(4, 16);
        report.set_dead(NodeId::new(0));
        let rs = build_line(&modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(3));
    }

    #[test]
    fn extinct_module_yields_none() {
        let modules = vec![vec![NodeId::new(0)]];
        let mut report = SystemReport::fresh(4, 16);
        report.set_dead(NodeId::new(0));
        let rs = build_line(&modules, &report, None);
        assert!(rs.route(NodeId::new(1), 0).is_none());
    }

    #[test]
    fn unreachable_duplicate_yields_none() {
        // Node 1 dead partitions the 4-line; node 3's only module-0 host
        // (node 0) becomes unreachable.
        let modules = vec![vec![NodeId::new(0)]];
        let mut report = SystemReport::fresh(4, 16);
        report.set_dead(NodeId::new(1));
        let rs = build_line(&modules, &report, None);
        assert!(rs.route(NodeId::new(3), 0).is_none());
        // Node 0 still routes to itself.
        assert!(rs.route(NodeId::new(0), 0).is_some());
    }

    #[test]
    fn deadlocked_node_redirects_away_from_blocked_port() {
        // Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3, module at 3.
        let mut g = DiGraph::new(4);
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        g.add_edge_bidirectional(NodeId::new(1), NodeId::new(3), cm(1.0)).unwrap();
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(2), cm(2.0)).unwrap();
        g.add_edge_bidirectional(NodeId::new(2), NodeId::new(3), cm(2.0)).unwrap();
        let modules = vec![vec![NodeId::new(3)]];

        let report = SystemReport::fresh(4, 16);
        let w = ear_weights(&g, &report, &BatteryWeighting::default());
        let first = RoutingState::build(floyd_warshall(&w), &w, &modules, &report, None);
        assert_eq!(first.route(NodeId::new(0), 0).unwrap().next_hop, NodeId::new(1));

        // Node 0 reports a deadlock: its previous port (toward 1) must be
        // avoided in the recomputation.
        let mut stuck = report.clone();
        stuck.set_deadlocked(NodeId::new(0), true);
        let w = ear_weights(&g, &stuck, &BatteryWeighting::default());
        let second = RoutingState::build(floyd_warshall(&w), &w, &modules, &stuck, Some(&first));
        assert_eq!(second.route(NodeId::new(0), 0).unwrap().next_hop, NodeId::new(2));
        // Other nodes are unaffected.
        assert_eq!(second.route(NodeId::new(1), 0).unwrap().next_hop, NodeId::new(3));
    }

    #[test]
    fn next_hop_walks_toward_destination() {
        let modules = vec![vec![NodeId::new(3)]];
        let report = SystemReport::fresh(4, 16);
        let rs = build_line(&modules, &report, None);
        let mut cur = NodeId::new(0);
        let dest = NodeId::new(3);
        let mut hops = 0;
        while cur != dest {
            cur = rs.next_hop(cur, dest).unwrap();
            hops += 1;
            assert!(hops <= 4, "walk did not terminate");
        }
        assert_eq!(hops, 3);
        assert_eq!(rs.next_hop(dest, dest), Some(dest));
    }

    #[test]
    fn dimensions() {
        let modules = vec![vec![NodeId::new(0)], vec![NodeId::new(1)]];
        let report = SystemReport::fresh(4, 16);
        let rs = build_line(&modules, &report, None);
        assert_eq!(rs.node_count(), 4);
        assert_eq!(rs.module_count(), 2);
        assert!(rs.route(NodeId::new(9), 0).is_none());
        assert!(rs.route(NodeId::new(0), 9).is_none());
        assert!(rs.distance(NodeId::new(0), NodeId::new(3)).is_some());
        assert_eq!(rs.paths().node_count(), 4);
    }

    #[test]
    fn route_planes_reconstruct_every_entry() {
        // A table with live entries, a `None` row (dead node) and an
        // extinct module column exercises every plane lane.
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)], vec![NodeId::new(2)]];
        let mut report = SystemReport::fresh(4, 16);
        report.set_dead(NodeId::new(2));
        let rs = build_line(&modules, &report, None);

        let mut planes = RouteTablePlanes::new();
        rs.export_route_planes(&mut planes);
        assert_eq!(planes.len(), rs.route_table().len());
        assert!(!planes.dest.is_wide(), "4 nodes compact to u16 lanes");
        for (flat, expected) in rs.route_table().iter().enumerate() {
            assert_eq!(planes.entry(flat), *expected, "flat position {flat}");
        }
        assert_eq!(planes.entry(planes.len()), None, "out of range reads as absent");

        // Refill in place from the same table: planes compare equal, so
        // canonicalised invalid lanes carry no stale data across refills.
        let again = planes.clone();
        rs.export_route_planes(&mut planes);
        assert_eq!(planes, again);

        // A bound past the narrow range forces wide lanes with identical
        // reconstruction (the 65k-node shape without 65k nodes).
        let mut wide = RouteTablePlanes::new();
        wide.fill_from_table(rs.route_table(), 70_000);
        assert!(wide.dest.is_wide() && wide.next_hop.is_wide());
        for (flat, expected) in rs.route_table().iter().enumerate() {
            assert_eq!(wide.entry(flat), *expected, "wide flat position {flat}");
        }
    }
}
