//! Phase 1: edge-weight matrix construction for SDR and EAR, plus the
//! edge-delta extraction the staged recompute pipeline feeds on.

use etx_graph::{DiGraph, Matrix, NodeId, WeightDelta, INFINITE_DISTANCE};

use crate::{BatteryWeighting, SystemReport};

/// The phase-1 weight of one directed edge under either algorithm:
/// `weighting = None` is SDR (plain length), `Some` is EAR (length scaled
/// by the receiver's battery weight). Edges touching dead nodes are
/// unusable under both.
#[inline]
fn edge_weight(
    report: &SystemReport,
    weighting: Option<&BatteryWeighting>,
    from: NodeId,
    to: NodeId,
    length_cm: f64,
) -> f64 {
    if !report.is_alive(from) || !report.is_alive(to) {
        return INFINITE_DISTANCE;
    }
    match weighting {
        None => length_cm,
        Some(w) => w.weight(report.battery_level(to)) * length_cm,
    }
}

fn weights_into(
    graph: &DiGraph,
    report: &SystemReport,
    weighting: Option<&BatteryWeighting>,
    out: &mut Matrix<f64>,
) {
    let n = graph.node_count();
    assert_eq!(
        n,
        report.node_count(),
        "report covers {} nodes but the graph has {n}",
        report.node_count()
    );
    out.reset(n, n, INFINITE_DISTANCE);
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
    for edge in graph.edges() {
        out[(edge.from, edge.to)] =
            edge_weight(report, weighting, edge.from, edge.to, edge.length.centimetres());
    }
}

/// Refreshes row and column `node` of a weight matrix previously built by
/// [`sdr_weights_into`]/[`ear_weights_into`] (`weighting` must match the
/// original call). After refreshing every node whose battery bucket or
/// liveness changed, the matrix equals a full rebuild against the new
/// report — at `O(K)` per changed node instead of `O(K²)`. This is the
/// phase-1 half of the delta-aware recompute.
pub(crate) fn update_node_weights(
    graph: &DiGraph,
    report: &SystemReport,
    weighting: Option<&BatteryWeighting>,
    node: NodeId,
    out: &mut Matrix<f64>,
) {
    let n = graph.node_count();
    debug_assert_eq!(out.rows(), n, "weight matrix does not match the graph");
    for other_idx in 0..n {
        let other = NodeId::new(other_idx);
        if other == node {
            continue;
        }
        out[(other, node)] = match graph.edge_length(other, node) {
            Some(len) => edge_weight(report, weighting, other, node, len.centimetres()),
            None => INFINITE_DISTANCE,
        };
        out[(node, other)] = match graph.edge_length(node, other) {
            Some(len) => edge_weight(report, weighting, node, other, len.centimetres()),
            None => INFINITE_DISTANCE,
        };
    }
}

/// Extracts the edge-weight deltas the new report implies for `node`
/// *without* mutating the matrix: every in/out edge of `node` whose
/// weight under the new report differs from the cached value in `out`
/// is appended to `deltas` (stage 1 of the recompute pipeline).
///
/// `dirty` marks every node being extracted this frame; an edge between
/// two dirty nodes is emitted only by the lower-indexed one, so a batch
/// never contains duplicates.
pub(crate) fn collect_node_weight_deltas(
    graph: &DiGraph,
    report: &SystemReport,
    weighting: Option<&BatteryWeighting>,
    node: NodeId,
    weights: &Matrix<f64>,
    dirty: &[bool],
    deltas: &mut Vec<WeightDelta>,
) {
    let n = graph.node_count();
    debug_assert_eq!(weights.rows(), n, "weight matrix does not match the graph");
    let mut push = |from: NodeId, to: NodeId, old: f64, new: f64| {
        if old != new {
            deltas.push(WeightDelta { from: from.index() as u32, to: to.index() as u32, old, new });
        }
    };
    for (other_idx, &other_dirty) in dirty.iter().enumerate().take(n) {
        let other = NodeId::new(other_idx);
        if other == node || (other_dirty && other_idx < node.index()) {
            continue;
        }
        let new_in = match graph.edge_length(other, node) {
            Some(len) => edge_weight(report, weighting, other, node, len.centimetres()),
            None => INFINITE_DISTANCE,
        };
        push(other, node, weights[(other, node)], new_in);
        let new_out = match graph.edge_length(node, other) {
            Some(len) => edge_weight(report, weighting, node, other, len.centimetres()),
            None => INFINITE_DISTANCE,
        };
        push(node, other, weights[(node, other)], new_out);
    }
}

/// Builds the SDR weight matrix: `W(i,j) = L(i,j)` for existing edges.
///
/// SDR is not energy-aware, but packets still cannot transit dead
/// hardware, so edges touching dead nodes get infinite weight (that is
/// connectivity information, not battery information — both algorithms
/// receive it from the same TDMA reports).
///
/// # Panics
///
/// Panics if the report covers a different number of nodes than the graph.
#[must_use]
pub fn sdr_weights(graph: &DiGraph, report: &SystemReport) -> Matrix<f64> {
    let mut w = Matrix::filled(0, 0, 0.0);
    sdr_weights_into(graph, report, &mut w);
    w
}

/// [`sdr_weights`] into a preallocated matrix: no heap allocation once
/// `out` has seen the current node count.
///
/// # Panics
///
/// Panics if the report covers a different number of nodes than the graph.
pub fn sdr_weights_into(graph: &DiGraph, report: &SystemReport, out: &mut Matrix<f64>) {
    weights_into(graph, report, None, out);
}

/// Builds the EAR weight matrix: `W(i,j) = f(N_B(j)) · L(i,j)`, where
/// `N_B(j)` is the reported battery level of the edge's receiving node and
/// `f` the exponential [`BatteryWeighting`].
///
/// Weighting the *receiver* is what steers traffic away from nearly-dead
/// relays: every path through node `j` pays `f(N_B(j))` on its inbound
/// edge.
///
/// # Panics
///
/// Panics if the report covers a different number of nodes than the graph.
#[must_use]
pub fn ear_weights(
    graph: &DiGraph,
    report: &SystemReport,
    weighting: &BatteryWeighting,
) -> Matrix<f64> {
    let mut w = Matrix::filled(0, 0, 0.0);
    ear_weights_into(graph, report, weighting, &mut w);
    w
}

/// [`ear_weights`] into a preallocated matrix: no heap allocation once
/// `out` has seen the current node count.
///
/// # Panics
///
/// Panics if the report covers a different number of nodes than the graph.
pub fn ear_weights_into(
    graph: &DiGraph,
    report: &SystemReport,
    weighting: &BatteryWeighting,
    out: &mut Matrix<f64>,
) {
    weights_into(graph, report, Some(weighting), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::{floyd_warshall, topology, NodeId};
    use etx_units::Length;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn sdr_weights_are_plain_lengths() {
        let g = topology::line(3, cm(2.0));
        let r = SystemReport::fresh(3, 16);
        let w = sdr_weights(&g, &r);
        assert_eq!(w[(0, 1)], 2.0);
        assert_eq!(w[(1, 2)], 2.0);
        assert_eq!(w[(0, 2)], INFINITE_DISTANCE);
        assert_eq!(w[(0, 0)], 0.0);
    }

    #[test]
    fn ear_weights_equal_sdr_on_fresh_system() {
        let g = topology::Mesh2D::square(4, cm(2.0)).to_graph();
        let r = SystemReport::fresh(16, 16);
        let sdr = sdr_weights(&g, &r);
        let ear = ear_weights(&g, &r, &BatteryWeighting::default());
        assert_eq!(sdr, ear);
    }

    #[test]
    fn ear_penalizes_low_battery_receivers() {
        let g = topology::line(3, cm(1.0));
        let mut r = SystemReport::fresh(3, 16);
        r.set_battery_level(NodeId::new(1), 13); // two levels down
        let w = ear_weights(&g, &r, &BatteryWeighting::new(16, 2.0));
        // Inbound edges to node 1 cost 2^2 = 4x length; others unchanged.
        assert_eq!(w[(0, 1)], 4.0);
        assert_eq!(w[(2, 1)], 4.0);
        assert_eq!(w[(1, 0)], 1.0);
        assert_eq!(w[(1, 2)], 1.0);
    }

    #[test]
    fn ear_reroutes_around_depleted_relay() {
        // Square: 0-1-3 (short) vs 0-2-3 (same length). Deplete node 1.
        let mut g = etx_graph::DiGraph::new(4);
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        g.add_edge_bidirectional(NodeId::new(1), NodeId::new(3), cm(1.0)).unwrap();
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(2), cm(1.5)).unwrap();
        g.add_edge_bidirectional(NodeId::new(2), NodeId::new(3), cm(1.5)).unwrap();

        let mut r = SystemReport::fresh(4, 16);
        // SDR picks the 2.0 cm path through node 1 regardless of battery.
        let sdr_paths = floyd_warshall(&sdr_weights(&g, &r));
        assert_eq!(
            sdr_paths.path(NodeId::new(0), NodeId::new(3)).unwrap(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );

        // Drain node 1 to level 1: EAR switches to the 3.0 cm detour.
        r.set_battery_level(NodeId::new(1), 1);
        let ear_paths = floyd_warshall(&ear_weights(&g, &r, &BatteryWeighting::default()));
        assert_eq!(
            ear_paths.path(NodeId::new(0), NodeId::new(3)).unwrap(),
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]
        );
        // SDR still goes through the dying relay.
        let sdr_paths = floyd_warshall(&sdr_weights(&g, &r));
        assert_eq!(
            sdr_paths.path(NodeId::new(0), NodeId::new(3)).unwrap(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn dead_nodes_block_both_algorithms() {
        let g = topology::line(3, cm(1.0));
        let mut r = SystemReport::fresh(3, 16);
        r.set_dead(NodeId::new(1));
        for w in [sdr_weights(&g, &r), ear_weights(&g, &r, &BatteryWeighting::default())] {
            let paths = floyd_warshall(&w);
            assert!(!paths.is_reachable(NodeId::new(0), NodeId::new(2)));
            assert!(!paths.is_reachable(NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    #[should_panic(expected = "report covers")]
    fn mismatched_report_panics() {
        let g = topology::line(3, cm(1.0));
        let r = SystemReport::fresh(2, 16);
        let _ = sdr_weights(&g, &r);
    }
}
