//! The EAR and SDR routing algorithms of Kao & Marculescu (DATE'05).
//!
//! Both algorithms run *online* at a central controller, are recomputed
//! whenever the reported system state changes, and share the same
//! three-phase structure (Sec 6 of the paper):
//!
//! 1. **Phase 1 — edge weights.** SDR weighs a directed link by its
//!    physical length, `W(i,j) = L(i,j)`. EAR additionally scales by the
//!    reported battery level of the link's *receiving* node,
//!    `W(i,j) = f(N_B(j)) · L(i,j)`, with the exponential weighting
//!    `f(n) = Q^(N_B − 1 − n)`: a full battery costs `Q⁰ = 1` (EAR
//!    degenerates to SDR), an almost-empty one costs `Q^(N_B−1)`.
//!    See [`BatteryWeighting`], [`sdr_weights`], [`ear_weights`].
//! 2. **Phase 2 — all-pairs shortest paths** with successors, through a
//!    pluggable backend ([`PathBackend`]): the paper's Floyd–Warshall
//!    variant (Fig 5, `O(K³)`), an all-sources Dijkstra
//!    (`O(K·E log K)`, the winner on sparse fabrics past a few dozen
//!    nodes), or `Auto`, which picks by node count and edge density.
//!    Between TDMA frames, [`Router::recompute_dirty_into`] (and the
//!    report-diffing [`Router::recompute_into`]) advance the state
//!    through a staged pipeline — weight-delta extraction, path repair
//!    or re-solve, table rebuild — selected by [`RecomputeStrategy`]:
//!    incremental shortest-path-tree repair (Ramalingam–Reps style,
//!    `O(changed subtree · log K)` per source), affected-sources
//!    re-runs, or a full phase 2 — into preallocated
//!    [`RoutingScratch`] storage with zero steady-state allocation.
//! 3. **Phase 3 — destination selection.** For every node and every
//!    module, pick the nearest *live* duplicate of that module (w.r.t. the
//!    phase-2 distances) while avoiding ports in a deadlock state
//!    (the paper's Fig 6). See [`RoutingState`].
//!
//! [`Router`] packages the three phases behind one call.
//!
//! # Examples
//!
//! ```
//! use etx_graph::{topology::Mesh2D, NodeId};
//! use etx_routing::{Algorithm, Router, SystemReport};
//! use etx_units::Length;
//!
//! let mesh = Mesh2D::square(4, Length::from_centimetres(2.0));
//! let graph = mesh.to_graph();
//! // Module 0 duplicates live at two corners:
//! let module_nodes = vec![vec![
//!     mesh.node_at(1, 1).unwrap(),
//!     mesh.node_at(4, 4).unwrap(),
//! ]];
//!
//! let report = SystemReport::fresh(graph.node_count(), 16);
//! let routing = Router::new(Algorithm::Ear).compute(&graph, &module_nodes, &report, None);
//!
//! // A node next to corner (1,1) is sent there, not across the mesh.
//! let src = mesh.node_at(2, 1).unwrap();
//! let entry = routing.route(src, 0).unwrap();
//! assert_eq!(entry.destination, mesh.node_at(1, 1).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod router;
mod scratch;
mod table;
mod weighting;
mod weights;

pub use etx_graph::{NodeBitset, PathBackend};
pub use report::SystemReport;
pub use router::{Algorithm, FrameDelta, RecomputeStrategy, Router};
pub use scratch::{RecomputeStats, RoutingScratch};
pub use table::{RouteEntry, RouteTablePlanes, RoutingState};
pub use weighting::BatteryWeighting;
pub(crate) use weights::update_node_weights;
pub use weights::{ear_weights, ear_weights_into, sdr_weights, sdr_weights_into};
