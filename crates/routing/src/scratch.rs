//! The [`RoutingScratch`] reusable workspace for zero-allocation routing
//! recomputes.

use etx_graph::{AdjacencyList, DijkstraScratch, Matrix, NodeId};

use crate::{Algorithm, BatteryWeighting};

/// Identifies the inputs the scratch's cached weight matrix was built
/// from; the delta-aware recompute only engages when the fingerprint of
/// the current call matches the previous one.
///
/// The graph is identified by [`DiGraph::version_stamp`] — an `O(1)`
/// identity refreshed (globally uniquely) on every mutation — so
/// swapping in a different graph, or mutating the same graph in place
/// (even in ways that keep node/edge counts identical), can never
/// silently reuse stale cached weights.
///
/// [`DiGraph::version_stamp`]: etx_graph::DiGraph::version_stamp
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WeightsKey {
    pub algorithm: Algorithm,
    pub levels: u32,
    pub q_bits: u64,
    pub nodes: usize,
    pub graph_stamp: u64,
}

impl WeightsKey {
    pub(crate) fn new(
        algorithm: Algorithm,
        weighting: &BatteryWeighting,
        graph: &etx_graph::DiGraph,
    ) -> Self {
        WeightsKey {
            algorithm,
            levels: weighting.levels(),
            q_bits: weighting.q().to_bits(),
            nodes: graph.node_count(),
            graph_stamp: graph.version_stamp(),
        }
    }
}

/// Preallocated working memory for `Router::compute_into` /
/// `Router::recompute_into`.
///
/// Holds everything a recompute needs between TDMA frames: the phase-1
/// weight matrix, the sparse adjacency lists and Dijkstra workspace of
/// phase 2, and the previous-table snapshot phase 3's deadlock avoidance
/// reads. All buffers retain capacity across calls, so once the scratch
/// has seen the system's dimensions, recomputes perform **no heap
/// allocation** (verified by the `zero_alloc` integration test).
///
/// A scratch may be reused across different graphs/routers — it resizes
/// as needed — but the cached state that powers the delta path is keyed
/// to the previous call's inputs, so mixing callers simply falls back to
/// full recomputes.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    /// Phase-1 weight matrix of the *previous* call (input to the union
    /// reachability scan), updated in place to the current weights.
    pub(crate) weights: Matrix<f64>,
    /// Sparse adjacency mirroring `weights`, kept in sync incrementally.
    pub(crate) adjacency: AdjacencyList,
    /// Per-source Dijkstra working memory.
    pub(crate) dijkstra: DijkstraScratch,
    /// Snapshot of the previous table's first hops (deadlock avoidance).
    pub(crate) prev_hops: Vec<Option<NodeId>>,
    /// Nodes whose battery bucket or liveness changed this frame.
    pub(crate) dirty: Vec<usize>,
    /// Sources whose all-pairs rows may change (and BFS visited marks).
    pub(crate) affected: Vec<bool>,
    /// Work stack of the reverse union-reachability scan.
    pub(crate) queue: Vec<usize>,
    /// What the cached `weights`/`adjacency` were built from.
    pub(crate) key: Option<WeightsKey>,
    /// Let the full Dijkstra backend fan sources out over threads.
    /// Defaults to `false`: thread spawning allocates, and the steady
    /// state of the simulator must not.
    pub(crate) parallel: bool,
    /// How many recomputes took the delta path.
    pub(crate) delta_recomputes: u64,
    /// How many recomputes ran a full phase 2.
    pub(crate) full_recomputes: u64,
}

impl RoutingScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        RoutingScratch::default()
    }

    /// Enables the scoped-thread fan-out for *full* Dijkstra recomputes.
    ///
    /// Spawning threads allocates, so leave this off (the default) on
    /// paths that rely on the zero-allocation guarantee; the delta path
    /// is always serial.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// How many recomputes through this scratch took the delta path
    /// (phase 2 restricted to affected sources, or skipped entirely).
    #[must_use]
    pub fn delta_recomputes(&self) -> u64 {
        self.delta_recomputes
    }

    /// How many recomputes through this scratch ran a full phase 2.
    #[must_use]
    pub fn full_recomputes(&self) -> u64 {
        self.full_recomputes
    }

    /// Prepares this scratch for reuse by an unrelated caller (a new
    /// simulation instance drawing it from a pool): drops the cached
    /// weight fingerprint so the next call runs a clean full recompute,
    /// and zeroes the per-run counters. All buffer *capacity* is
    /// retained — that is the whole point of pooling — so a scratch that
    /// has seen a fleet's largest fabric never reallocates for a smaller
    /// one.
    pub fn recycle(&mut self) {
        self.key = None;
        self.delta_recomputes = 0;
        self.full_recomputes = 0;
    }
}
