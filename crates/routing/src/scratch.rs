//! The [`RoutingScratch`] reusable workspace for zero-allocation routing
//! recomputes, and the [`RecomputeStats`] counter snapshot.

use etx_graph::{AdjacencyList, DijkstraScratch, Matrix, NodeId, RepairScratch, SpTreeStore};
use etx_metrics::{CounterId, MetricsHandle, Registry};

use crate::{Algorithm, BatteryWeighting};

/// Identifies the inputs the scratch's cached weight matrix was built
/// from; the delta-aware recompute only engages when the fingerprint of
/// the current call matches the previous one.
///
/// The graph is identified by [`DiGraph::version_stamp`] — an `O(1)`
/// identity refreshed (globally uniquely) on every mutation — so
/// swapping in a different graph, or mutating the same graph in place
/// (even in ways that keep node/edge counts identical), can never
/// silently reuse stale cached weights.
///
/// [`DiGraph::version_stamp`]: etx_graph::DiGraph::version_stamp
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WeightsKey {
    pub algorithm: Algorithm,
    pub levels: u32,
    pub q_bits: u64,
    pub nodes: usize,
    pub graph_stamp: u64,
}

impl WeightsKey {
    pub(crate) fn new(
        algorithm: Algorithm,
        weighting: &BatteryWeighting,
        graph: &etx_graph::DiGraph,
    ) -> Self {
        WeightsKey {
            algorithm,
            levels: weighting.levels(),
            q_bits: weighting.q().to_bits(),
            nodes: graph.node_count(),
            graph_stamp: graph.version_stamp(),
        }
    }
}

/// Snapshot of a [`RoutingScratch`]'s recompute counters: how often each
/// phase-2 path ran, and how the incremental repair split its sources.
///
/// The simulation engine reports this in its final
/// [`SimReport`](../etx_sim/struct.SimReport.html) and the fleet
/// controller aggregates it fleet-wide, so the cost profile of the
/// routing pipeline is user-visible end to end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(non_snake_case)] // `frames_oK_skipped` is named for what it skips
pub struct RecomputeStats {
    /// Recomputes that ran a full phase 2 (all sources from scratch).
    pub full_recomputes: u64,
    /// Recomputes that took the affected-sources delta path.
    pub delta_recomputes: u64,
    /// Recomputes that took the incremental path-repair pipeline.
    pub repair_recomputes: u64,
    /// Sources repaired in place across all repair recomputes.
    pub repaired_sources: u64,
    /// Sources the repair pipeline re-ran in full. Since the
    /// decrease-half repair landed, this no longer counts weight
    /// decreases: a source falls back only when the combined
    /// increase+decrease frontier exceeds the cost-gate fraction or the
    /// shortest-path trees are cold (first frame, recycled scratch).
    pub fallback_sources: u64,
    /// Sources whose repair engaged the decrease half: a relevant
    /// weight *decrease* (revival, reconnect, recharge) repaired in
    /// place by improvement propagation instead of a full rerun.
    pub decrease_repairs: u64,
    /// Row entries the decrease half updated across all repair
    /// recomputes: distance improvements plus achiever tie flips and
    /// their re-hung subtrees.
    pub decrease_nodes_improved: u64,
    /// Recomputes whose phase 3 refreshed only the changed `(node,
    /// module)` entries instead of rebuilding the whole table.
    pub table_delta_rebuilds: u64,
    /// `(node, module)` table entries refreshed across all recomputes (a
    /// full rebuild counts every entry, `K · modules`; a delta rebuild
    /// only the entries whose distance-to-duplicate inputs changed).
    pub table_entries_rebuilt: u64,
    /// The subset of [`RecomputeStats::table_entries_rebuilt`] refreshed
    /// by the `O(1)` challenge patch — the cached winner survived (or
    /// improved) and only the repair's improved duplicates were
    /// considered — instead of the `O(|S_i|)` duplicate re-scan.
    pub table_cells_patched: u64,
    /// Recomputes that maintained the table-gate inputs (liveness
    /// snapshot, deadlock presence) in `O(changed)` from the frame's
    /// changed bitset, skipping the per-frame `O(K)` node scan entirely
    /// (only possible through `Router::recompute_frame_into`).
    pub frames_oK_skipped: u64,
    /// Node states examined across all recomputes by the per-frame
    /// bookkeeping (dirty extraction, liveness gate, cache refresh): the
    /// changed-node count on bitset-fed frames, `K` when an `O(K)` scan
    /// ran. `nodes_scanned / recomputes ≪ K` is the observable win of
    /// the changed-bitset feed.
    pub nodes_scanned: u64,
}

impl RecomputeStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// counters: what happened *since* `prev`. Per-frame consumers (the
    /// frame recorder, fleet tallies, benches) diff two cumulative
    /// snapshots instead of hand-rolling twelve subtractions each.
    ///
    /// Counters are monotone while a scratch lives, but a recycle zeroes
    /// them mid-stream; `wrapping_sub` keeps the helper total so a stale
    /// `prev` can't panic in release-vs-debug-divergent ways.
    #[must_use]
    pub fn delta_since(&self, prev: &RecomputeStats) -> RecomputeStats {
        RecomputeStats {
            full_recomputes: self.full_recomputes.wrapping_sub(prev.full_recomputes),
            delta_recomputes: self.delta_recomputes.wrapping_sub(prev.delta_recomputes),
            repair_recomputes: self.repair_recomputes.wrapping_sub(prev.repair_recomputes),
            repaired_sources: self.repaired_sources.wrapping_sub(prev.repaired_sources),
            fallback_sources: self.fallback_sources.wrapping_sub(prev.fallback_sources),
            decrease_repairs: self.decrease_repairs.wrapping_sub(prev.decrease_repairs),
            decrease_nodes_improved: self
                .decrease_nodes_improved
                .wrapping_sub(prev.decrease_nodes_improved),
            table_delta_rebuilds: self.table_delta_rebuilds.wrapping_sub(prev.table_delta_rebuilds),
            table_entries_rebuilt: self
                .table_entries_rebuilt
                .wrapping_sub(prev.table_entries_rebuilt),
            table_cells_patched: self.table_cells_patched.wrapping_sub(prev.table_cells_patched),
            frames_oK_skipped: self.frames_oK_skipped.wrapping_sub(prev.frames_oK_skipped),
            nodes_scanned: self.nodes_scanned.wrapping_sub(prev.nodes_scanned),
        }
    }

    /// Adds these counters into a metrics [`Registry`] under the
    /// `routing.*` cost counters — the one bridge between the scratch's
    /// plain per-run counters and the cross-layer metrics catalog.
    /// Callers feed per-frame [`RecomputeStats::delta_since`] deltas so
    /// the registry totals stay exact across scratch recycles.
    pub fn record_into(&self, registry: &Registry) {
        registry.add(CounterId::RoutingFullRecomputes, self.full_recomputes);
        registry.add(CounterId::RoutingDeltaRecomputes, self.delta_recomputes);
        registry.add(CounterId::RoutingRepairRecomputes, self.repair_recomputes);
        registry.add(CounterId::RoutingRepairedSources, self.repaired_sources);
        registry.add(CounterId::RoutingFallbackSources, self.fallback_sources);
        registry.add(CounterId::RoutingDecreaseRepairs, self.decrease_repairs);
        registry.add(CounterId::RoutingDecreaseNodesImproved, self.decrease_nodes_improved);
        registry.add(CounterId::RoutingTableDeltaRebuilds, self.table_delta_rebuilds);
        registry.add(CounterId::RoutingTableEntriesRebuilt, self.table_entries_rebuilt);
        registry.add(CounterId::RoutingTableCellsPatched, self.table_cells_patched);
        registry.add(CounterId::RoutingFramesOkSkipped, self.frames_oK_skipped);
        registry.add(CounterId::RoutingNodesScanned, self.nodes_scanned);
    }
}

/// Preallocated working memory for `Router::compute_into` /
/// `Router::recompute_into` / `Router::recompute_dirty_into`.
///
/// Holds everything a recompute needs between TDMA frames: the phase-1
/// weight matrix, the sparse adjacency lists (plus their transpose) and
/// Dijkstra workspace of phase 2, the per-source shortest-path trees and
/// repair scratch of the incremental pipeline, and the previous-table
/// snapshot phase 3's deadlock avoidance reads. All buffers retain
/// capacity across calls, so once the scratch has seen the system's
/// dimensions, recomputes perform **no heap allocation** (verified by
/// the `zero_alloc` integration test).
///
/// A scratch may be reused across different graphs/routers — it resizes
/// as needed — but the cached state that powers the delta and repair
/// paths is keyed to the previous call's inputs, so mixing callers
/// simply falls back to full recomputes.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    /// Phase-1 weight matrix of the *previous* call (input to the union
    /// reachability scan), updated in place to the current weights.
    pub(crate) weights: Matrix<f64>,
    /// Sparse adjacency mirroring `weights`, kept in sync incrementally.
    pub(crate) adjacency: AdjacencyList,
    /// Transposed adjacency (in-edge lists) for the repair pipeline's
    /// achiever scans; valid only while `trees_valid` holds.
    pub(crate) in_adjacency: AdjacencyList,
    /// Per-source Dijkstra working memory.
    pub(crate) dijkstra: DijkstraScratch,
    /// Per-source shortest-path trees the incremental repair advances.
    pub(crate) trees: SpTreeStore,
    /// Batch-repair working memory.
    pub(crate) repair: RepairScratch,
    /// `true` while `trees`/`in_adjacency` describe the current weights
    /// (set by the repair pipeline, cleared by full recomputes).
    pub(crate) trees_valid: bool,
    /// Snapshot of the previous table's first hops (deadlock avoidance).
    pub(crate) prev_hops: Vec<Option<NodeId>>,
    /// Nodes whose battery bucket or liveness changed this frame.
    pub(crate) dirty: Vec<usize>,
    /// Dirty-membership flags (edge-delta extraction dedup).
    pub(crate) dirty_mark: Vec<bool>,
    /// The frame's extracted edge-weight deltas (phase 1 output).
    pub(crate) deltas: Vec<etx_graph::WeightDelta>,
    /// Sources whose all-pairs rows may change (and BFS visited marks).
    pub(crate) affected: Vec<bool>,
    /// Work stack of the reverse union-reachability scan.
    pub(crate) queue: Vec<usize>,
    /// Per-source bitmasks of the modules whose table entries must be
    /// refreshed this frame (bit `m` = "source's distance to some
    /// duplicate of module `m` may have changed"); `u64::MAX` marks a
    /// whole-row rebuild (re-run sources, or > 64 modules).
    pub(crate) row_mask: Vec<u64>,
    /// Per-node bitmask of the modules hosting the node (the
    /// touched-set → changed-entries translation table), refreshed with
    /// the cached table inputs.
    pub(crate) dup_mask: Vec<u64>,
    /// Per-node liveness the current table was built against.
    pub(crate) prev_alive: Vec<bool>,
    /// Whether any node was deadlocked when the current table was built.
    pub(crate) prev_any_deadlock: bool,
    /// The module placement the current table was built against.
    pub(crate) prev_modules: Vec<Vec<NodeId>>,
    /// `true` while `prev_alive`/`prev_any_deadlock`/`prev_modules`
    /// describe the table currently held by the paired `RoutingState`.
    pub(crate) table_cache_valid: bool,
    /// What the cached `weights`/`adjacency` were built from.
    pub(crate) key: Option<WeightsKey>,
    /// Let the full Dijkstra backend fan sources out over threads.
    /// Defaults to `false`: thread spawning allocates, and the steady
    /// state of the simulator must not.
    pub(crate) parallel: bool,
    /// How many recomputes took the affected-sources delta path.
    pub(crate) delta_recomputes: u64,
    /// How many recomputes ran a full phase 2.
    pub(crate) full_recomputes: u64,
    /// How many recomputes took the incremental repair pipeline.
    pub(crate) repair_recomputes: u64,
    /// Sources repaired in place (across repair recomputes).
    pub(crate) repaired_sources: u64,
    /// Sources the repair pipeline re-ran in full.
    pub(crate) fallback_sources: u64,
    /// Sources whose repair engaged the decrease half.
    pub(crate) decrease_repairs: u64,
    /// Row entries updated by the decrease half of the repair.
    pub(crate) decrease_nodes_improved: u64,
    /// Recomputes whose phase 3 took the delta-aware entry rebuild.
    pub(crate) table_delta_rebuilds: u64,
    /// `(node, module)` table entries refreshed across all recomputes.
    pub(crate) table_entries_rebuilt: u64,
    /// Table entries refreshed by the `O(1)` challenge patch.
    pub(crate) table_cells_patched: u64,
    /// Recomputes that skipped every per-frame `O(K)` node scan.
    pub(crate) frames_ok_skipped: u64,
    /// Node states examined by per-frame bookkeeping (see
    /// [`RecomputeStats::nodes_scanned`]).
    pub(crate) nodes_scanned: u64,
    /// Where the repair pipeline reports its stage timings
    /// (delta-extract / increase / decrease / table spans). Defaults to
    /// the shared no-op registry: one relaxed load and branch per stage,
    /// no timing, no allocation.
    pub(crate) metrics: MetricsHandle,
}

impl RoutingScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        RoutingScratch::default()
    }

    /// Enables the scoped-thread fan-out for *full* Dijkstra recomputes.
    ///
    /// Spawning threads allocates, so leave this off (the default) on
    /// paths that rely on the zero-allocation guarantee; the delta and
    /// repair paths are always serial.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Points the repair pipeline's stage spans (`routing.repair.*`) at
    /// a metrics registry. The default no-op handle costs one relaxed
    /// load per stage; a counters-only registry records nothing for
    /// spans; a full registry captures per-stage latency histograms.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// How many recomputes through this scratch took the
    /// affected-sources delta path (phase 2 restricted to affected
    /// sources, or skipped entirely).
    #[must_use]
    pub fn delta_recomputes(&self) -> u64 {
        self.delta_recomputes
    }

    /// How many recomputes through this scratch ran a full phase 2.
    #[must_use]
    pub fn full_recomputes(&self) -> u64 {
        self.full_recomputes
    }

    /// How many recomputes through this scratch took the incremental
    /// path-repair pipeline.
    #[must_use]
    pub fn repair_recomputes(&self) -> u64 {
        self.repair_recomputes
    }

    /// Sources repaired in place across all repair recomputes.
    #[must_use]
    pub fn repaired_sources(&self) -> u64 {
        self.repaired_sources
    }

    /// Sources the repair pipeline re-ran in full. Decreases are
    /// repaired in place since the improvement-propagation half landed;
    /// fallback now means the combined increase+decrease frontier
    /// exceeded the cost gate, or the shortest-path trees were cold
    /// (first frame after a full recompute or a recycle).
    #[must_use]
    pub fn fallback_sources(&self) -> u64 {
        self.fallback_sources
    }

    /// Sources whose repair engaged the decrease half (a relevant
    /// weight decrease handled in place).
    #[must_use]
    pub fn decrease_repairs(&self) -> u64 {
        self.decrease_repairs
    }

    /// Row entries the decrease half updated (improvements + tie flips
    /// and their re-hung subtrees) across all repair recomputes.
    #[must_use]
    pub fn decrease_nodes_improved(&self) -> u64 {
        self.decrease_nodes_improved
    }

    /// Recomputes through this scratch whose phase 3 refreshed only the
    /// changed `(node, module)` entries (the delta-aware table rebuild).
    #[must_use]
    pub fn table_delta_rebuilds(&self) -> u64 {
        self.table_delta_rebuilds
    }

    /// `(node, module)` table entries refreshed across all recomputes
    /// through this scratch.
    #[must_use]
    pub fn table_entries_rebuilt(&self) -> u64 {
        self.table_entries_rebuilt
    }

    /// The subset of [`RoutingScratch::table_entries_rebuilt`] refreshed
    /// by the `O(1)` challenge patch instead of the `O(|S_i|)` duplicate
    /// re-scan (see [`RecomputeStats::table_cells_patched`]).
    #[must_use]
    pub fn table_cells_patched(&self) -> u64 {
        self.table_cells_patched
    }

    /// Recomputes through this scratch that maintained the table-gate
    /// inputs in `O(changed)` — no per-frame `O(K)` node scan at all.
    #[must_use]
    pub fn frames_ok_skipped(&self) -> u64 {
        self.frames_ok_skipped
    }

    /// Node states examined by per-frame bookkeeping across all
    /// recomputes (see [`RecomputeStats::nodes_scanned`]).
    #[must_use]
    pub fn nodes_scanned(&self) -> u64 {
        self.nodes_scanned
    }

    /// Snapshot of every recompute counter.
    #[must_use]
    pub fn stats(&self) -> RecomputeStats {
        RecomputeStats {
            full_recomputes: self.full_recomputes,
            delta_recomputes: self.delta_recomputes,
            repair_recomputes: self.repair_recomputes,
            repaired_sources: self.repaired_sources,
            fallback_sources: self.fallback_sources,
            decrease_repairs: self.decrease_repairs,
            decrease_nodes_improved: self.decrease_nodes_improved,
            table_delta_rebuilds: self.table_delta_rebuilds,
            table_entries_rebuilt: self.table_entries_rebuilt,
            table_cells_patched: self.table_cells_patched,
            frames_oK_skipped: self.frames_ok_skipped,
            nodes_scanned: self.nodes_scanned,
        }
    }

    /// Prepares this scratch for reuse by an unrelated caller (a new
    /// simulation instance drawing it from a pool): drops the cached
    /// weight fingerprint and shortest-path trees so the next call runs
    /// a clean full recompute, and zeroes the per-run counters. All
    /// buffer *capacity* is retained — that is the whole point of
    /// pooling — so a scratch that has seen a fleet's largest fabric
    /// never reallocates for a smaller one.
    pub fn recycle(&mut self) {
        self.key = None;
        self.trees_valid = false;
        self.table_cache_valid = false;
        self.metrics = MetricsHandle::default();
        self.delta_recomputes = 0;
        self.full_recomputes = 0;
        self.repair_recomputes = 0;
        self.repaired_sources = 0;
        self.fallback_sources = 0;
        self.decrease_repairs = 0;
        self.decrease_nodes_improved = 0;
        self.table_delta_rebuilds = 0;
        self.table_entries_rebuilt = 0;
        self.table_cells_patched = 0;
        self.frames_ok_skipped = 0;
        self.nodes_scanned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::RecomputeStats;

    #[test]
    fn delta_since_subtracts_every_counter() {
        let prev = RecomputeStats {
            full_recomputes: 1,
            delta_recomputes: 2,
            repair_recomputes: 3,
            repaired_sources: 4,
            fallback_sources: 5,
            decrease_repairs: 6,
            decrease_nodes_improved: 7,
            table_delta_rebuilds: 8,
            table_entries_rebuilt: 9,
            table_cells_patched: 10,
            frames_oK_skipped: 11,
            nodes_scanned: 12,
        };
        let now = RecomputeStats {
            full_recomputes: 10,
            delta_recomputes: 22,
            repair_recomputes: 33,
            repaired_sources: 44,
            fallback_sources: 55,
            decrease_repairs: 66,
            decrease_nodes_improved: 77,
            table_delta_rebuilds: 88,
            table_entries_rebuilt: 99,
            table_cells_patched: 110,
            frames_oK_skipped: 121,
            nodes_scanned: 132,
        };
        let delta = now.delta_since(&prev);
        assert_eq!(
            delta,
            RecomputeStats {
                full_recomputes: 9,
                delta_recomputes: 20,
                repair_recomputes: 30,
                repaired_sources: 40,
                fallback_sources: 50,
                decrease_repairs: 60,
                decrease_nodes_improved: 70,
                table_delta_rebuilds: 80,
                table_entries_rebuilt: 90,
                table_cells_patched: 100,
                frames_oK_skipped: 110,
                nodes_scanned: 120,
            }
        );
        // Diffing against itself is zero; against Default is identity.
        assert_eq!(now.delta_since(&now), RecomputeStats::default());
        assert_eq!(now.delta_since(&RecomputeStats::default()), now);
        // A recycled (zeroed) current snapshot wraps instead of panicking.
        let wrapped = RecomputeStats::default().delta_since(&prev);
        assert_eq!(wrapped.full_recomputes, 0u64.wrapping_sub(1));
    }

    #[test]
    fn record_into_maps_every_counter() {
        use etx_metrics::{CounterId, Registry};
        let stats = RecomputeStats {
            full_recomputes: 1,
            delta_recomputes: 2,
            repair_recomputes: 3,
            repaired_sources: 4,
            fallback_sources: 5,
            decrease_repairs: 6,
            decrease_nodes_improved: 7,
            table_delta_rebuilds: 8,
            table_entries_rebuilt: 9,
            table_cells_patched: 10,
            frames_oK_skipped: 11,
            nodes_scanned: 12,
        };
        let registry = Registry::counters_only();
        stats.record_into(&registry);
        stats.record_into(&registry); // additive, like the counters themselves
        assert_eq!(registry.counter(CounterId::RoutingFullRecomputes), 2);
        assert_eq!(registry.counter(CounterId::RoutingDecreaseNodesImproved), 14);
        assert_eq!(registry.counter(CounterId::RoutingFramesOkSkipped), 22);
        assert_eq!(registry.counter(CounterId::RoutingNodesScanned), 24);
    }
}
