//! The [`Router`]: all three phases behind one call, with a
//! strategy-selected staged recompute pipeline.

use core::fmt;

use etx_graph::{
    dijkstra_source_into, dijkstra_source_tree_into, repair_source, DiGraph, NodeBitset, NodeId,
    PathBackend, RepairOutcome, ResolvedBackend,
};
use etx_metrics::SpanId;

use crate::scratch::WeightsKey;
use crate::table::PathPolicy;
use crate::weights::collect_node_weight_deltas;
use crate::{
    ear_weights_into, sdr_weights_into, update_node_weights, BatteryWeighting, RoutingScratch,
    RoutingState, SystemReport,
};

/// Delta gate: fall back to a full recompute once more than this fraction
/// of the nodes is dirty (the incremental bookkeeping stops paying for
/// itself when most sources get re-run anyway).
const DELTA_MAX_DIRTY_FRACTION: f64 = 0.25;

/// Repair gate: a source whose affected frontier exceeds this fraction of
/// its settled nodes is re-run in full instead of repaired. Tuned on the
/// 32×32 steady-drain loop (`bench_routing`): a repaired node pays for
/// its relaxations *plus* an achiever scan and a settle-order merge slot
/// — roughly twice a plain relaxation — so repair keeps winning to about
/// half the tree; 0.6 leaves margin because the `O(settled)` affected
/// walk is paid on the re-run path too.
const REPAIR_MAX_AFFECTED_FRACTION: f64 = 0.6;

/// Which routing algorithm the central controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Shortest-distance routing: weights are physical link lengths. The
    /// paper's non-energy-aware baseline.
    Sdr,
    /// Energy-aware routing: link lengths scaled by the receiving node's
    /// reported battery level. The paper's contribution.
    Ear,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Sdr => write!(f, "SDR"),
            Algorithm::Ear => write!(f, "EAR"),
        }
    }
}

/// How [`Router::recompute_into`]/[`Router::recompute_dirty_into`] turn
/// a frame's weight deltas into fresh all-pairs rows (phase 2 of the
/// staged pipeline). Every strategy produces **identical** routing state
/// (property-tested, distances *and* successors); they differ only in
/// cost.
///
/// | Strategy | Phase-2 work per frame | When it wins |
/// |---|---|---|
/// | `Full` | `O(K·E log K)` (or `O(K³)` under Floyd–Warshall) | cold caches, mass changes |
/// | `AffectedSources` | full single-source Dijkstra from every source that reaches a changed edge | sparse *reachability* of changes (partitioned fabrics) |
/// | `IncrementalRepair` | Ramalingam–Reps repair of each source's shortest-path tree; `O(changed subtree · log K)` per source, with a per-source re-run gate | the steady state: small, monotone drain deltas on a connected fabric, where *every* source is "affected" but each tree barely changes |
/// | `Auto` | `IncrementalRepair` whenever the resolved backend is Dijkstra and the caches are warm, `Full` otherwise | the default |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecomputeStrategy {
    /// Always re-solve all sources from scratch.
    Full,
    /// Re-run only sources whose rows can change (union-reachability
    /// over report diffs) — the pre-repair delta path.
    AffectedSources,
    /// Repair each source's shortest-path tree against the frame's
    /// edge-delta stream, re-running individual sources when the repair
    /// gate trips.
    IncrementalRepair,
    /// Pick per frame: incremental repair when the caches and resolved
    /// backend allow it, full otherwise.
    #[default]
    Auto,
}

impl RecomputeStrategy {
    /// CLI/spec-file name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecomputeStrategy::Full => "full",
            RecomputeStrategy::AffectedSources => "affected",
            RecomputeStrategy::IncrementalRepair => "incremental",
            RecomputeStrategy::Auto => "auto",
        }
    }

    /// Parses a CLI/spec-file name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "full" => Some(RecomputeStrategy::Full),
            "affected" | "affected-sources" => Some(RecomputeStrategy::AffectedSources),
            "incremental" | "repair" | "incremental-repair" => {
                Some(RecomputeStrategy::IncrementalRepair)
            }
            "auto" => Some(RecomputeStrategy::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for RecomputeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which phase-2 path a recompute resolved to this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecomputeMode {
    Full,
    Affected,
    Repair,
}

/// One TDMA frame's change summary, as an engine that maintains its
/// frame state *incrementally* hands it to
/// [`Router::recompute_frame_into`]: the changed-node bitset plus the
/// per-frame aggregates the engine already tracked at the transition
/// sites, so the router never has to rediscover them with `O(K)` scans.
///
/// # Soundness contract
///
/// A node **absent** from `changed` contributed no battery-bucket or
/// liveness transition since the recompute that produced the paired
/// routing state. Its cached phase-1 weight rows, its entry in the
/// router's cached liveness snapshot, and its contribution to the
/// table-rebuild gate are therefore still valid, which is what lets the
/// router restrict every per-frame node scan to the set bits.
/// Over-approximation is safe (a set bit whose node is back at its
/// published value contributes no weight deltas); a *missing* changed
/// node is not. The two flags carry the same obligation: `any_deadlock`
/// must be `true` iff some node in `report` has its deadlock flag set,
/// and `placement_changed` must be `true` whenever `module_nodes`
/// differs from the previous recompute's placement.
#[derive(Debug, Clone, Copy)]
pub struct FrameDelta<'a> {
    /// Nodes whose battery bucket or liveness changed since the last
    /// recompute.
    pub changed: &'a NodeBitset,
    /// Whether any node currently reports a deadlock (engine-maintained
    /// aggregate; replaces the router's per-node deadlock scan).
    pub any_deadlock: bool,
    /// Whether the module placement changed since the last recompute
    /// (a remap); replaces the router's placement deep-compare.
    pub placement_changed: bool,
}

/// Internal per-frame metadata threaded through the staged pipeline.
#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    any_deadlock: bool,
    placement_changed: bool,
}

/// The online routing engine run by the central controller.
///
/// "For a fair comparison, the proposed energy-aware routing strategy and
/// its non-energy-aware counterpart are kept exactly the same except their
/// routing algorithms" — [`Router`] embodies that: EAR and SDR differ only
/// in the phase-1 weight matrix.
///
/// # The staged recompute pipeline
///
/// Between TDMA frames the router advances its state through three
/// explicit stages:
///
/// 1. **Weight-delta extraction** — the dirty-node feed (from the caller
///    or a report diff) becomes an edge-delta stream against the cached
///    phase-1 matrix.
/// 2. **Path repair or re-solve** — selected by [`RecomputeStrategy`]:
///    incremental tree repair, affected-sources re-runs, or a full
///    phase 2.
/// 3. **Table rebuild** — phase 3 (nearest-duplicate selection with
///    deadlock-port avoidance) always refreshes.
///
/// # Examples
///
/// ```
/// use etx_graph::topology;
/// use etx_routing::{Algorithm, Router, SystemReport};
/// use etx_units::Length;
///
/// let graph = topology::ring(6, Length::from_centimetres(2.0));
/// let modules = vec![vec![0.into(), 3.into()]];
/// let report = SystemReport::fresh(6, 16);
///
/// let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
/// let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
/// // On a fresh system the two agree.
/// assert_eq!(
///     sdr.route(1.into(), 0).unwrap().destination,
///     ear.route(1.into(), 0).unwrap().destination,
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    algorithm: Algorithm,
    weighting: BatteryWeighting,
    backend: PathBackend,
    strategy: RecomputeStrategy,
}

impl Router {
    /// Creates a router with the default battery weighting
    /// (`N_B = 16`, `Q = 2`; irrelevant for SDR), the
    /// [`PathBackend::Auto`] phase-2 backend and the
    /// [`RecomputeStrategy::Auto`] recompute strategy.
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Self {
        Router {
            algorithm,
            weighting: BatteryWeighting::default(),
            backend: PathBackend::Auto,
            strategy: RecomputeStrategy::Auto,
        }
    }

    /// Creates a router with an explicit EAR weighting function.
    #[must_use]
    pub fn with_weighting(algorithm: Algorithm, weighting: BatteryWeighting) -> Self {
        Router {
            algorithm,
            weighting,
            backend: PathBackend::Auto,
            strategy: RecomputeStrategy::Auto,
        }
    }

    /// Selects the phase-2 all-pairs backend (default
    /// [`PathBackend::Auto`]; see its docs for the crossover heuristic).
    #[must_use]
    pub fn with_backend(mut self, backend: PathBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the recompute strategy (default
    /// [`RecomputeStrategy::Auto`]).
    #[must_use]
    pub fn with_strategy(mut self, strategy: RecomputeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The algorithm this router runs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The EAR weighting function.
    #[must_use]
    pub fn weighting(&self) -> &BatteryWeighting {
        &self.weighting
    }

    /// The configured phase-2 backend.
    #[must_use]
    pub fn backend(&self) -> PathBackend {
        self.backend
    }

    /// The configured recompute strategy.
    #[must_use]
    pub fn strategy(&self) -> RecomputeStrategy {
        self.strategy
    }

    /// Runs phases 1–3 and returns the complete routing state.
    ///
    /// `module_nodes[i]` is the paper's `S_i`: the set of nodes hosting
    /// duplicates of module `i`. `previous` enables the deadlock-port
    /// avoidance of phase 3; pass the routing state of the previous
    /// controller invocation (or `None` on the first run).
    ///
    /// This is a thin allocating wrapper over [`Router::compute_into`]
    /// with a fresh [`RoutingScratch`] (parallel phase 2 enabled).
    /// Complexity is dominated by phase 2: `O(K³)` under Floyd–Warshall —
    /// matching the paper — or `O(K·E log K)` under Dijkstra.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`.
    #[must_use]
    pub fn compute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
    ) -> RoutingState {
        let mut scratch = RoutingScratch::new().with_parallel(true);
        let mut out = RoutingState::empty();
        self.compute_into(graph, module_nodes, report, previous, &mut scratch, &mut out);
        out
    }

    /// Runs phases 1–3 **into** preallocated storage: once `scratch` and
    /// `out` have seen the current dimensions, the call performs no heap
    /// allocation (with `scratch`'s serial default; see
    /// [`RoutingScratch::with_parallel`]).
    ///
    /// Always performs a *full* phase-2 recompute; the simulation engine
    /// uses [`Router::recompute_dirty_into`], which additionally skips
    /// unaffected work by consuming the frame's dirty-node feed.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`.
    pub fn compute_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        match previous {
            Some(prev)
                if prev.module_count() == module_nodes.len()
                    && prev.node_count() == graph.node_count() =>
            {
                prev.next_hop_snapshot_into(&mut scratch.prev_hops);
            }
            _ => scratch.prev_hops.clear(),
        }
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        self.full_recompute(graph, module_nodes, report, key, None, scratch, out);
    }

    /// Delta-aware recompute from consecutive reports: `out` must hold
    /// the state this router produced for (`graph`, `old_report`), and
    /// `scratch` must be the workspace that produced it. Diffs the two
    /// reports into a dirty-node feed and runs the staged pipeline; the
    /// result is identical to [`Router::compute_into`] over `new_report`
    /// with `previous = out` (property-tested, under every
    /// [`RecomputeStrategy`]).
    ///
    /// Callers that already know which nodes changed should use
    /// [`Router::recompute_dirty_into`] and skip the diff entirely.
    ///
    /// Phase 3 (deadlock avoidance reads `out`'s table as "previous") and
    /// the bookkeeping are always refreshed; like `compute_into`, the
    /// steady state performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `new_report` covers a different node count than `graph`.
    pub fn recompute_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        old_report: &SystemReport,
        new_report: &SystemReport,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        scratch.dirty.clear();
        // Reserving the per-node bound up front keeps burst frames (mass
        // churn after a quiet warm-up) free of mid-flight growth — the
        // zero-allocation guarantee is keyed to the system's dimensions,
        // not to the largest dirty set seen so far.
        scratch.dirty.reserve(n);
        if old_report.node_count() == n && new_report.node_count() == n {
            for i in 0..n {
                if self.node_is_dirty(old_report, new_report, NodeId::new(i)) {
                    scratch.dirty.push(i);
                }
            }
        } else {
            // Unknown previous state: treat every node as dirty, which
            // trips the delta gate into a full recompute.
            scratch.dirty.extend(0..n);
        }
        self.snapshot_prev_hops(graph, module_nodes, scratch, out);
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        self.staged_recompute(graph, module_nodes, new_report, key, None, scratch, out);
    }

    /// The engine's entry point: delta-aware recompute from an explicit
    /// **dirty-node feed** instead of a report diff. `dirty` lists every
    /// node whose battery bucket or liveness changed since the recompute
    /// that produced `out`; the router turns it into an edge-delta
    /// stream against its cached weights (stage 1), repairs or re-solves
    /// the all-pairs rows (stage 2, per [`RecomputeStrategy`]) and
    /// rebuilds the table (stage 3).
    ///
    /// An over-approximate feed is safe (a listed node whose weights did
    /// not change contributes no deltas); a *missing* dirty node is not.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`, or
    /// a dirty index is out of range.
    pub fn recompute_dirty_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        dirty: &[NodeId],
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        scratch.dirty.clear();
        scratch.dirty.reserve(n.max(dirty.len()));
        scratch.dirty.extend(dirty.iter().map(|node| {
            assert!(node.index() < n, "dirty node {node} out of range");
            node.index()
        }));
        self.snapshot_prev_hops(graph, module_nodes, scratch, out);
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        self.staged_recompute(graph, module_nodes, report, key, None, scratch, out);
    }

    /// The engine's **frame-state** entry point: like
    /// [`Router::recompute_dirty_into`], but fed by the changed-node
    /// bitset and per-frame aggregates an incrementally-maintained
    /// engine already has (see [`FrameDelta`] and its soundness
    /// contract), so the steady-state frame runs in `O(changed)` —
    /// the `O(K)` liveness/deadlock scan behind the table-rebuild gate
    /// and the `O(K)` cache refresh are both restricted to the set bits
    /// ([`RecomputeStats::frames_oK_skipped`] counts exactly those
    /// frames, and [`RecomputeStats::nodes_scanned`] the node states
    /// actually examined).
    ///
    /// Produces state bit-identical to [`Router::recompute_dirty_into`]
    /// over the dense changed list (property-tested, every strategy).
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`, or
    /// the bitset's capacity does not match the graph.
    pub fn recompute_frame_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        frame: FrameDelta<'_>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        assert_eq!(frame.changed.capacity(), n, "changed bitset does not cover the graph");
        scratch.dirty.clear();
        scratch.dirty.reserve(n);
        // Phase-1 extraction consumes the set *words*: empty words — the
        // overwhelming majority on a quiet frame — cost one compare.
        scratch.dirty.extend(frame.changed.iter().map(NodeId::index));
        self.snapshot_prev_hops(graph, module_nodes, scratch, out);
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        let meta = FrameMeta {
            any_deadlock: frame.any_deadlock,
            placement_changed: frame.placement_changed,
        };
        self.staged_recompute(graph, module_nodes, report, key, Some(meta), scratch, out);
    }

    /// Snapshots `out`'s first hops for phase 3's deadlock avoidance.
    fn snapshot_prev_hops(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        scratch: &mut RoutingScratch,
        out: &RoutingState,
    ) {
        if out.module_count() == module_nodes.len() && out.node_count() == graph.node_count() {
            out.next_hop_snapshot_into(&mut scratch.prev_hops);
        } else {
            scratch.prev_hops.clear();
        }
    }

    /// `true` if `node`'s phase-1-relevant state differs between reports:
    /// liveness always matters; the quantized battery bucket only feeds
    /// EAR weights.
    fn node_is_dirty(&self, old: &SystemReport, new: &SystemReport, node: NodeId) -> bool {
        if old.is_alive(node) != new.is_alive(node) {
            return true;
        }
        self.algorithm == Algorithm::Ear && old.battery_level(node) != new.battery_level(node)
    }

    /// Stage-2 dispatch: picks the phase-2 path for this frame from the
    /// configured strategy and the cache/backend gates, then runs it.
    /// Expects `scratch.dirty` populated and `scratch.prev_hops`
    /// snapshotted.
    #[allow(clippy::too_many_arguments)] // the staged pipeline's shared signature
    fn staged_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        key: WeightsKey,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        // Gate: the cached weights/adjacency/rows must all describe the
        // previous call of this very configuration, and the previous
        // phase 2 must have used the Dijkstra successor policy (kept rows
        // must be bit-identical to what a fresh run would produce).
        let cache_ok = scratch.key == Some(key)
            && out.policy == PathPolicy::Dijkstra
            && out.node_count() == n
            && report.node_count() == n
            && self.backend.resolve(n, graph.edge_count()) == ResolvedBackend::DijkstraAllPairs;
        #[allow(clippy::cast_precision_loss)]
        let few_dirty = scratch.dirty.len() as f64 <= DELTA_MAX_DIRTY_FRACTION * n as f64;
        let mode = match self.strategy {
            _ if !cache_ok || !few_dirty => RecomputeMode::Full,
            RecomputeStrategy::Full => RecomputeMode::Full,
            RecomputeStrategy::AffectedSources => RecomputeMode::Affected,
            RecomputeStrategy::IncrementalRepair | RecomputeStrategy::Auto => RecomputeMode::Repair,
        };
        match mode {
            RecomputeMode::Full => {
                self.full_recompute(graph, module_nodes, report, key, frame, scratch, out);
            }
            RecomputeMode::Affected => {
                self.affected_recompute(graph, module_nodes, report, frame, scratch, out);
            }
            RecomputeMode::Repair => {
                self.repair_recompute(graph, module_nodes, report, frame, scratch, out);
            }
        }
    }

    /// The affected-sources delta path: union-reachability over the
    /// dirty set, then full single-source Dijkstra from every affected
    /// source. Expects the gates of [`Router::staged_recompute`] already
    /// checked.
    fn affected_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        scratch.queue.reserve(n);
        if !scratch.dirty.is_empty() {
            // Affected sources: everything that reaches a dirty node in
            // the *union* of the old and new graphs. A source that cannot
            // reach any dirty node (old or new) never routes over a
            // changed edge, so its rows are unchanged; everything else is
            // recomputed from scratch by single-source Dijkstra.
            scratch.affected.clear();
            scratch.affected.resize(n, false);
            scratch.queue.clear();
            for &d in &scratch.dirty {
                scratch.affected[d] = true;
                scratch.queue.push(d);
            }
            while let Some(v) = scratch.queue.pop() {
                let v_node = NodeId::new(v);
                let v_alive_new = report.is_alive(v_node);
                for u in 0..n {
                    if u == v || scratch.affected[u] {
                        continue;
                    }
                    let u_node = NodeId::new(u);
                    // Old edge u→v: finite off-diagonal weight in the
                    // cached (previous) matrix.
                    let old_edge = scratch.weights[(u, v)].is_finite();
                    // New edge u→v: physical link with both ends alive.
                    let new_edge =
                        v_alive_new && report.is_alive(u_node) && graph.has_edge(u_node, v_node);
                    if old_edge || new_edge {
                        scratch.affected[u] = true;
                        scratch.queue.push(u);
                    }
                }
            }

            // Phase 1 delta: refresh the weight rows/columns of dirty
            // nodes and mirror them into the adjacency lists.
            for &d in &scratch.dirty {
                update_node_weights(
                    graph,
                    report,
                    (self.algorithm == Algorithm::Ear).then_some(&self.weighting),
                    NodeId::new(d),
                    &mut scratch.weights,
                );
                scratch.adjacency.sync_node(d, &scratch.weights);
            }

            // Phase 2 delta: re-run the affected sources only. The
            // trees are not maintained here, so a later repair frame
            // starts cold.
            scratch.trees_valid = false;
            let paths = out.paths_mut();
            for s in 0..n {
                if !scratch.affected[s] {
                    continue;
                }
                let source = NodeId::new(s);
                let (dist_row, succ_row) = paths.source_rows_mut(source);
                dijkstra_source_into(
                    &scratch.adjacency,
                    source,
                    &mut scratch.dijkstra,
                    dist_row,
                    succ_row,
                );
            }
        }

        // Stage 3: rows of unaffected sources have identical inputs, so
        // when the table-delta gate holds, refreshing the affected rows
        // alone reproduces a full rebuild (this path re-solves whole
        // rows, so there is no per-module mask to exploit).
        if self.table_delta_ok(module_nodes, report, frame, scratch, out, false) {
            let mut rebuilt = 0u64;
            if !scratch.dirty.is_empty() {
                for s in 0..n {
                    if scratch.affected[s] {
                        out.rebuild_table_row(s, &scratch.weights, module_nodes, report, None);
                        rebuilt += module_nodes.len() as u64;
                    }
                }
            }
            scratch.table_entries_rebuilt += rebuilt;
            scratch.table_delta_rebuilds += 1;
        } else {
            let prev = (!scratch.prev_hops.is_empty()).then_some(scratch.prev_hops.as_slice());
            out.rebuild_table(&scratch.weights, module_nodes, report, prev);
            scratch.table_entries_rebuilt += (n * module_nodes.len()) as u64;
        }
        Self::cache_table_inputs(module_nodes, report, frame, scratch);
        scratch.delta_recomputes += 1;
    }

    /// The incremental path-repair pipeline: edge-delta extraction, per-
    /// source Ramalingam–Reps repair (with cold-tree / gate / decrease
    /// fallbacks to recorded re-runs), table rebuild. Expects the gates
    /// of [`Router::staged_recompute`] already checked.
    fn repair_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        let weighting = (self.algorithm == Algorithm::Ear).then_some(&self.weighting);
        // Stage spans borrow the registry, so hold the handle locally
        // (an `Arc` bump, no allocation) while the stages mutate the
        // scratch.
        let metrics = scratch.metrics.clone();

        // Stage 1 — extract the edge-delta stream against the cached
        // weights (no writes yet; the old values are part of the
        // stream).
        {
            let _delta_span = metrics.span(SpanId::RoutingRepairDelta);
            scratch.dirty_mark.clear();
            scratch.dirty_mark.resize(n, false);
            for &d in &scratch.dirty {
                scratch.dirty_mark[d] = true;
            }
            scratch.deltas.clear();
            // Every delta is a directed graph edge incident to a dirty node,
            // so the edge count bounds the batch; reserving it up front
            // keeps burst frames free of mid-flight growth.
            scratch.deltas.reserve(graph.edge_count());
            for &d in &scratch.dirty {
                collect_node_weight_deltas(
                    graph,
                    report,
                    weighting,
                    NodeId::new(d),
                    &scratch.weights,
                    &scratch.dirty_mark,
                    &mut scratch.deltas,
                );
            }
        }

        let trees_ok = scratch.trees_valid
            && scratch.trees.node_count() == n
            && scratch.in_adjacency.len() == n;

        // Stage 2 marks, per source, the modules whose table entries can
        // change this frame. The key invariant: when a `Repaired`
        // outcome involved no decrease-half work, distances only grew —
        // a candidate that was losing keeps losing, and the entry for
        // (source, module) can change only when its **current winning
        // destination** is in the touched set. A repair with
        // improvements is the opposite: a losing candidate can *become*
        // the winner — but only an **improved** one can, so the marked
        // cells are challenged in place against the repair's improved
        // set (see [`RoutingState::patch_table_row`]) instead of
        // re-scanning every duplicate. Re-run sources (gate trips, cold
        // trees) get whole-row marks for stage 3.
        scratch.row_mask.clear();
        scratch.row_mask.resize(n, 0);
        let m_count = module_nodes.len();

        // The stage-3 feasibility check runs *before* stage 2 so each
        // repaired source's marked cells can be patched inline, straight
        // from the per-source improved list (the repair scratch is
        // reused by the next source, so no per-source state survives the
        // loop). Liveness flips mark the flipped node's own row for a
        // whole-row re-solve; the flip's effect on *other* sources' rows
        // rides the ordinary marks — a died duplicate worsens out of its
        // cells (its row distances went infinite), a revived one
        // improves into them (its row distances dropped from infinity,
        // putting it in every repaired source's improved set).
        let table_patchable = self.table_delta_ok(module_nodes, report, frame, scratch, out, true);
        let masks_ok = scratch.dup_mask.len() == n
            && m_count <= 64
            && out.module_count() == m_count
            && out.route_table().len() == n * m_count;
        let (mut patched_entries, mut patched_full) = (0u64, 0u64);

        // An empty batch (deadlock-flag-only or remap-only frame) leaves
        // the rows valid as they stand and skips phase 2 entirely; cold
        // trees stay cold until a frame with actual deltas warms them.
        if !scratch.deltas.is_empty() {
            // One timer covers apply + repair; it lands on the decrease
            // span when any source engaged the decrease half this frame,
            // the increase span otherwise, so the two repair regimes get
            // separate latency distributions.
            let stage2_timer = metrics.timer();
            // Stage 1b — apply the stream: weight matrix and both
            // adjacency mirrors.
            for &d in &scratch.dirty {
                update_node_weights(graph, report, weighting, NodeId::new(d), &mut scratch.weights);
                scratch.adjacency.sync_node(d, &scratch.weights);
                if trees_ok {
                    scratch.in_adjacency.sync_node_transpose(d, &scratch.weights);
                }
            }

            // Stage 2 — repair or re-run each source. Cold trees (first
            // delta frame after a full recompute, or after an affected-
            // sources frame) re-run every source once, recording trees;
            // warm frames repair.
            if !trees_ok {
                scratch.trees.reset(n);
                scratch.in_adjacency.rebuild_transpose(&scratch.weights);
            }
            scratch.repair.reserve_batch(graph.edge_count());
            scratch.repair.prepare(&scratch.deltas, n);
            let (mut repaired, mut fallback) = (0u64, 0u64);
            let (mut dec_repairs, mut dec_improved) = (0u64, 0u64);
            for s in 0..n {
                let source = NodeId::new(s);
                let (paths, prev_table, _) = out.paths_and_table_mut();
                let (dist_row, succ_row) = paths.source_rows_mut(source);
                let outcome = if trees_ok {
                    repair_source(
                        &scratch.adjacency,
                        &scratch.in_adjacency,
                        source,
                        &mut scratch.dijkstra,
                        &mut scratch.repair,
                        &mut scratch.trees,
                        dist_row,
                        succ_row,
                        REPAIR_MAX_AFFECTED_FRACTION,
                    )
                } else {
                    RepairOutcome::Rerun
                };
                match outcome {
                    RepairOutcome::Unchanged => {}
                    RepairOutcome::Repaired { improved, .. } => {
                        let mut mask = u64::MAX;
                        if masks_ok {
                            mask = 0;
                            if improved == 0 {
                                // Pure increases: an entry can change
                                // only when its current winning
                                // destination was touched (a losing
                                // candidate whose distance grew keeps
                                // losing; an untouched winner keeps its
                                // exact distance and successor bytes).
                                for &t in scratch.repair.touched_nodes() {
                                    let mut bits = scratch.dup_mask[t as usize];
                                    while bits != 0 {
                                        let module = bits.trailing_zeros() as usize;
                                        bits &= bits - 1;
                                        let winner = prev_table[s * m_count + module]
                                            .as_ref()
                                            .is_some_and(|e| e.destination.index() == t as usize);
                                        if winner {
                                            mask |= 1u64 << module;
                                        }
                                    }
                                }
                            } else {
                                // The decrease half improved entries: a
                                // touched duplicate may have *become*
                                // the winner, so its module bits are
                                // marked whether it currently wins or
                                // not.
                                for &t in scratch.repair.touched_nodes() {
                                    mask |= scratch.dup_mask[t as usize];
                                }
                            }
                        }
                        repaired += 1;
                        if improved > 0 {
                            dec_repairs += 1;
                            dec_improved += improved as u64;
                        }
                        if table_patchable && masks_ok && scratch.row_mask[s] != u64::MAX {
                            // Inline stage 3: challenge-patch the
                            // marked cells now, while the improved list
                            // still belongs to this source.
                            if mask != 0 {
                                let improved_set: &[u32] = if improved > 0 {
                                    scratch.repair.improved_nodes()
                                } else {
                                    &[]
                                };
                                let (cells, full) = out.patch_table_row(
                                    s,
                                    mask,
                                    improved_set,
                                    &scratch.dup_mask,
                                    module_nodes,
                                    &scratch.weights,
                                    report,
                                );
                                patched_entries += cells;
                                patched_full += full;
                            }
                        } else {
                            // A liveness flip already marked this row
                            // MAX, or stage 3 cannot patch: leave the
                            // marks for the post-loop sweep.
                            scratch.row_mask[s] |= mask;
                        }
                    }
                    RepairOutcome::Rerun => {
                        dijkstra_source_tree_into(
                            &scratch.adjacency,
                            source,
                            &mut scratch.dijkstra,
                            dist_row,
                            succ_row,
                            &mut scratch.trees,
                        );
                        // The whole row was re-solved: every entry of
                        // this source may have changed.
                        scratch.row_mask[s] = u64::MAX;
                        fallback += 1;
                    }
                }
            }
            scratch.trees_valid = true;
            scratch.repaired_sources += repaired;
            scratch.fallback_sources += fallback;
            scratch.decrease_repairs += dec_repairs;
            scratch.decrease_nodes_improved += dec_improved;
            let stage2_span = if dec_repairs > 0 {
                SpanId::RoutingRepairDecrease
            } else {
                SpanId::RoutingRepairIncrease
            };
            metrics.observe_since(stage2_span, stage2_timer);
        }

        // Stage 3 — delta-aware table maintenance for the rows the
        // inline patch could not cover: re-run sources and liveness
        // flips re-solve their whole row; leftover per-cell marks (a
        // patchable frame whose duplicate masks were cold) re-pick just
        // those entries. Deadlock raise *or* clear, remap and cold cache
        // still rebuild in full — with those stable, the paper's
        // `O(K·Σ|S_i|)` rebuild shrinks to the changed entries alone.
        {
            let _table_span = metrics.span(SpanId::RoutingRepairTable);
            if table_patchable {
                let m = module_nodes.len();
                let mut rebuilt = 0u64;
                for s in 0..n {
                    let mask = scratch.row_mask[s];
                    if mask == 0 {
                        continue;
                    }
                    if mask == u64::MAX {
                        out.rebuild_table_row(s, &scratch.weights, module_nodes, report, None);
                        rebuilt += m as u64;
                    } else {
                        let mut bits = mask;
                        while bits != 0 {
                            let module = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            out.rebuild_table_cell(
                                s,
                                module,
                                module_nodes,
                                &scratch.weights,
                                report,
                            );
                            rebuilt += 1;
                        }
                    }
                }
                scratch.table_entries_rebuilt += rebuilt + patched_entries;
                scratch.table_cells_patched += patched_entries - patched_full;
                scratch.table_delta_rebuilds += 1;
            } else {
                let prev = (!scratch.prev_hops.is_empty()).then_some(scratch.prev_hops.as_slice());
                out.rebuild_table(&scratch.weights, module_nodes, report, prev);
                scratch.table_entries_rebuilt += (n * module_nodes.len()) as u64;
            }
        }
        Self::cache_table_inputs(module_nodes, report, frame, scratch);
        scratch.repair_recomputes += 1;
    }

    /// Full phases 1–3 into `out`, refreshing the scratch caches.
    /// Expects `scratch.prev_hops` to be snapshotted already.
    #[allow(clippy::too_many_arguments)] // the staged pipeline's shared signature
    fn full_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        key: WeightsKey,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        match self.algorithm {
            Algorithm::Sdr => sdr_weights_into(graph, report, &mut scratch.weights),
            Algorithm::Ear => {
                ear_weights_into(graph, report, &self.weighting, &mut scratch.weights);
            }
        }
        let resolved = self.backend.resolve(n, graph.edge_count());
        resolved.compute_into(
            &scratch.weights,
            &mut scratch.adjacency,
            &mut scratch.dijkstra,
            out.paths_mut(),
            scratch.parallel,
        );
        out.policy = match resolved {
            ResolvedBackend::FloydWarshall => PathPolicy::FloydWarshall,
            ResolvedBackend::DijkstraAllPairs => PathPolicy::Dijkstra,
        };
        scratch.key = Some(key);
        // The trees describe the pre-recompute weights; a later repair
        // frame must rebuild them (recorded re-runs) before repairing.
        scratch.trees_valid = false;
        let prev = (!scratch.prev_hops.is_empty()).then_some(scratch.prev_hops.as_slice());
        out.rebuild_table(&scratch.weights, module_nodes, report, prev);
        scratch.table_entries_rebuilt += (n * module_nodes.len()) as u64;
        Self::cache_table_inputs(module_nodes, report, frame, scratch);
        scratch.full_recomputes += 1;
    }

    /// Whether stage 3 may refresh only the changed entries of `out`'s
    /// table instead of rebuilding it: the cached table inputs must
    /// describe the current call's placement, and deadlock flags may
    /// not differ from the table build they describe — deadlock
    /// presence detours *every* row through `prev_hops`, so any change
    /// forces a full rebuild. Deadlock-free frames also never read
    /// `prev_hops`.
    ///
    /// Liveness transitions no longer gate to full on the repair path
    /// (`patch_rows`, requires the per-node duplicate masks warm): a
    /// changed node's own table row is marked for a whole-row re-solve
    /// (`row_mask = MAX`), and that is all — the flip's effect on other
    /// sources' entries travels through the repair marks, because a
    /// died duplicate's row distances went infinite (its cells fail
    /// the winner check and re-pick) and a revived one's dropped from
    /// infinity (it lands in every repaired source's improved set and
    /// challenges its cells). On the affected-sources path
    /// (`patch_rows == false`, which rebuilds row-grain only and has
    /// no repair marks), any liveness change still forces a full
    /// rebuild.
    ///
    /// With a [`FrameMeta`] the whole decision is `O(changed)`:
    /// deadlock presence and placement identity come from the engine's
    /// aggregates, and the liveness comparison is restricted to the
    /// changed nodes — a node outside the bitset contributed no
    /// transition, so its cached liveness entry still matches (the
    /// [`FrameDelta`] soundness contract). Without one, deadlock
    /// presence falls back to the `O(K)` scan over the report, while
    /// the liveness comparison still needs only the dirty set: the
    /// cached snapshot is re-anchored to the previous report every
    /// frame, and the dirty set contains every node that changed since.
    fn table_delta_ok(
        &self,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
        out: &RoutingState,
        patch_rows: bool,
    ) -> bool {
        let n = report.node_count();
        if !scratch.table_cache_valid
            || scratch.prev_any_deadlock
            || scratch.prev_alive.len() != n
            || out.module_count() != module_nodes.len()
        {
            return false;
        }
        let structure_ok = match frame {
            Some(meta) => {
                !meta.any_deadlock
                    && !meta.placement_changed
                    && scratch.prev_modules.len() == module_nodes.len()
            }
            None => {
                scratch.prev_modules.as_slice() == module_nodes
                    && (0..n).all(|i| !report.is_deadlocked(NodeId::new(i)))
            }
        };
        if !structure_ok {
            return false;
        }
        let masks_warm =
            scratch.dup_mask.len() == n && module_nodes.len() <= 64 && scratch.row_mask.len() == n;
        for idx in 0..scratch.dirty.len() {
            let d = scratch.dirty[idx];
            if report.is_alive(NodeId::new(d)) != scratch.prev_alive[d] {
                if !patch_rows || !masks_warm {
                    return false;
                }
                scratch.row_mask[d] = u64::MAX;
            }
        }
        true
    }

    /// Records the table-relevant report state (liveness, deadlock
    /// presence) and placement the table was just built against, so the
    /// next frame's [`Router::table_delta_ok`] can compare.
    ///
    /// A frame whose cached inputs are still structurally valid is
    /// patched **in place** from the changed set — `O(changed)` instead
    /// of the `O(K)` rebuild — which is the second half of what
    /// [`RecomputeStats::frames_oK_skipped`] counts. Sound for the same
    /// reason the gate's restriction is: an unchanged node's cached
    /// liveness entry is already correct, and the placement caches
    /// (`prev_modules`, `dup_mask`) only depend on a placement the
    /// engine vouched did not change.
    fn cache_table_inputs(
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        frame: Option<FrameMeta>,
        scratch: &mut RoutingScratch,
    ) {
        let n = report.node_count();
        let fast = frame.is_some_and(|meta| !meta.placement_changed)
            && scratch.table_cache_valid
            && scratch.prev_alive.len() == n
            && scratch.dup_mask.len() == n
            && scratch.prev_modules.len() == module_nodes.len();
        if fast {
            for &d in &scratch.dirty {
                scratch.prev_alive[d] = report.is_alive(NodeId::new(d));
            }
            scratch.prev_any_deadlock =
                frame.expect("fast path requires frame metadata").any_deadlock;
            scratch.frames_ok_skipped += 1;
            scratch.nodes_scanned += scratch.dirty.len() as u64;
            return;
        }
        scratch.nodes_scanned += n as u64;
        scratch.prev_alive.clear();
        scratch.prev_alive.reserve(n);
        scratch.prev_any_deadlock = false;
        for i in 0..n {
            let node = NodeId::new(i);
            scratch.prev_alive.push(report.is_alive(node));
            scratch.prev_any_deadlock |= report.is_deadlocked(node);
        }
        // Nested `clone_from`-style copy: inner buffers are reused, so
        // steady-state frames (placement unchanged) allocate nothing.
        scratch.prev_modules.truncate(module_nodes.len());
        for (dst, src) in scratch.prev_modules.iter_mut().zip(module_nodes) {
            dst.clone_from(src);
        }
        for src in &module_nodes[scratch.prev_modules.len()..] {
            scratch.prev_modules.push(src.clone());
        }
        // Duplicate-membership masks: bit `m` of `dup_mask[node]` says
        // the node hosts module `m` (only meaningful up to 64 modules;
        // larger systems fall back to whole-row rebuilds).
        scratch.dup_mask.clear();
        scratch.dup_mask.resize(n, 0);
        if module_nodes.len() <= 64 {
            for (m, hosts) in module_nodes.iter().enumerate() {
                for &host in hosts {
                    if host.index() < n {
                        scratch.dup_mask[host.index()] |= 1u64 << m;
                    }
                }
            }
        }
        scratch.table_cache_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology::{self, Mesh2D};
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Sdr.to_string(), "SDR");
        assert_eq!(Algorithm::Ear.to_string(), "EAR");
    }

    #[test]
    fn strategy_names_roundtrip() {
        for s in [
            RecomputeStrategy::Full,
            RecomputeStrategy::AffectedSources,
            RecomputeStrategy::IncrementalRepair,
            RecomputeStrategy::Auto,
        ] {
            assert_eq!(RecomputeStrategy::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(RecomputeStrategy::parse("repair"), Some(RecomputeStrategy::IncrementalRepair));
        assert_eq!(RecomputeStrategy::parse("bogus"), None);
        assert_eq!(RecomputeStrategy::default(), RecomputeStrategy::Auto);
    }

    #[test]
    fn accessors() {
        let r = Router::with_weighting(Algorithm::Ear, BatteryWeighting::new(8, 4.0))
            .with_strategy(RecomputeStrategy::IncrementalRepair);
        assert_eq!(r.algorithm(), Algorithm::Ear);
        assert_eq!(r.weighting().levels(), 8);
        assert_eq!(r.strategy(), RecomputeStrategy::IncrementalRepair);
    }

    #[test]
    fn fresh_system_ear_equals_sdr() {
        let mesh = Mesh2D::square(5, cm(2.0));
        let graph = mesh.to_graph();
        let modules: Vec<Vec<NodeId>> = vec![
            (0..25).step_by(3).map(NodeId::new).collect(),
            (1..25).step_by(3).map(NodeId::new).collect(),
            (2..25).step_by(3).map(NodeId::new).collect(),
        ];
        let report = SystemReport::fresh(25, 16);
        let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
        for n in 0..25 {
            for m in 0..3 {
                let (s, e) = (sdr.route(NodeId::new(n), m), ear.route(NodeId::new(n), m));
                assert_eq!(
                    s.map(|x| x.destination),
                    e.map(|x| x.destination),
                    "node {n} module {m}"
                );
            }
        }
    }

    #[test]
    fn ear_switches_destination_when_duplicate_drains() {
        // Ring of 6 with module hosted at 0 and 3; node 1 queries it.
        let graph = topology::ring(6, cm(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let mut report = SystemReport::fresh(6, 16);

        let router = Router::new(Algorithm::Ear);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));

        // Drain node 0 to the last level: the (battery-weighted) distance
        // to 0 now exceeds the two plain hops to 3.
        report.set_battery_level(NodeId::new(0), 0);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(3));

        // SDR keeps hammering node 0.
        let rs = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));
    }

    #[test]
    fn ear_rotates_load_across_duplicates_sdr_does_not() {
        // Drain-and-reroute loop on a ring with two duplicates of one
        // module: each "round" the chosen destination loses one battery
        // level. EAR spreads the work over both duplicates; SDR hammers
        // its nearest one until death.
        let graph = topology::ring(6, cm(1.0));
        let hosts = vec![vec![NodeId::new(2), NodeId::new(4)]];
        let origin = NodeId::new(0);
        let mut usage = std::collections::HashMap::new();

        for algorithm in [Algorithm::Ear, Algorithm::Sdr] {
            let router = Router::new(algorithm);
            let mut report = SystemReport::fresh(6, 16);
            let mut counts = [0u32; 6];
            for _ in 0..24 {
                let routing = router.compute(&graph, &hosts, &report, None);
                let Some(entry) = routing.route(origin, 0) else { break };
                counts[entry.destination.index()] += 1;
                let level = report.battery_level(entry.destination);
                if level == 0 {
                    report.set_dead(entry.destination);
                } else {
                    report.set_battery_level(entry.destination, level - 1);
                }
            }
            usage.insert(format!("{algorithm}"), counts);
        }

        let ear = usage["EAR"];
        let sdr = usage["SDR"];
        // EAR alternates once the gap reaches one level: both duplicates
        // carry meaningful load.
        assert!(ear[2] >= 8 && ear[4] >= 8, "EAR did not balance: {ear:?}");
        // SDR uses only the nearer duplicate until it dies.
        assert_eq!(sdr[2], 16, "SDR should exhaust n2 first: {sdr:?}");
        assert!(sdr[4] <= 8, "SDR spread load unexpectedly: {sdr:?}");
    }

    #[test]
    fn dirty_feed_equals_report_diff() {
        // The engine-facing dirty feed and the compat report diff must
        // land in identical state, counters included per-path.
        let graph = Mesh2D::square(8, cm(2.05)).to_graph();
        let k = graph.node_count();
        let modules: Vec<Vec<NodeId>> =
            (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect();
        let router = Router::new(Algorithm::Ear);

        let mut report = SystemReport::fresh(k, 16);
        let mut a_scratch = RoutingScratch::new();
        let mut a_state = RoutingState::empty();
        let mut b_scratch = RoutingScratch::new();
        let mut b_state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut a_scratch, &mut a_state);
        router.compute_into(&graph, &modules, &report, None, &mut b_scratch, &mut b_state);

        for frame in 0..6 {
            let old = report.clone();
            let node = NodeId::new((frame * 11 + 5) % k);
            report.set_battery_level(node, report.battery_level(node).saturating_sub(2));
            router.recompute_into(&graph, &modules, &old, &report, &mut a_scratch, &mut a_state);
            router.recompute_dirty_into(
                &graph,
                &modules,
                &report,
                &[node],
                &mut b_scratch,
                &mut b_state,
            );
            assert_eq!(a_state, b_state, "frame {frame}");
        }
        assert_eq!(a_scratch.stats(), b_scratch.stats());
        assert!(a_scratch.repair_recomputes() >= 5, "Auto at 8x8 should repair");
        assert!(a_scratch.repaired_sources() > 0);
    }

    #[test]
    fn steady_drain_rebuilds_only_changed_table_rows() {
        // 8x8 battery-only drain: liveness/deadlock/placement never
        // change, so stage 3 must take the delta row rebuild and touch
        // far fewer rows than frames * K. A death frame then patches
        // incrementally too: the victim's own row plus the columns of
        // the modules it duplicated, not the whole table.
        let graph = Mesh2D::square(8, cm(2.05)).to_graph();
        let k = graph.node_count();
        let modules: Vec<Vec<NodeId>> =
            (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect();
        let router =
            Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair);

        let mut report = SystemReport::fresh(k, 16);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        let frames = 12u64;
        for frame in 0..frames {
            let node = NodeId::new((frame as usize * 7 + 3) % k);
            report.set_battery_level(node, report.battery_level(node).saturating_sub(1));
            router.recompute_dirty_into(
                &graph,
                &modules,
                &report,
                &[node],
                &mut scratch,
                &mut state,
            );
            let reference = router.compute(&graph, &modules, &report, None);
            assert_eq!(state.route_table(), reference.route_table(), "frame {frame}");
        }
        let stats = scratch.stats();
        assert_eq!(stats.table_delta_rebuilds, frames, "drain frames must take the delta path");
        // Initial full build: k * 3 entries. Each drain frame must touch
        // far fewer than its own k * 3 — the whole point of the delta.
        let full_build = 3 * k as u64;
        assert!(
            stats.table_entries_rebuilt < full_build + frames * full_build / 4,
            "delta rebuild touched {} entries over {frames} frames on K={k}",
            stats.table_entries_rebuilt
        );

        // Churn: a node death is a liveness change — the delta path now
        // patches the victim's row plus its hosted-module columns
        // instead of gating to a full rebuild.
        let victim = NodeId::new(9);
        report.set_dead(victim);
        let entries_before = scratch.table_entries_rebuilt();
        router.recompute_dirty_into(&graph, &modules, &report, &[victim], &mut scratch, &mut state);
        let reference = router.compute(&graph, &modules, &report, None);
        assert_eq!(state.route_table(), reference.route_table(), "death frame");
        assert_eq!(
            scratch.table_delta_rebuilds(),
            frames + 1,
            "death frame must take the delta path"
        );
        let death_entries = scratch.table_entries_rebuilt() - entries_before;
        assert!(
            death_entries < full_build,
            "death frame rebuilt {death_entries} entries, expected fewer than {full_build}"
        );

        // The frame after the death is steady again: delta path continues.
        let node = NodeId::new(12);
        report.set_battery_level(node, report.battery_level(node).saturating_sub(1));
        router.recompute_dirty_into(&graph, &modules, &report, &[node], &mut scratch, &mut state);
        let reference = router.compute(&graph, &modules, &report, None);
        assert_eq!(state.route_table(), reference.route_table(), "post-death frame");
        assert_eq!(scratch.table_delta_rebuilds(), frames + 2);
    }

    proptest! {
        /// Structural invariants on random meshes and battery states: every
        /// route entry's next hop is the node itself or a graph neighbour,
        /// its destination hosts the module and is alive, and the entry's
        /// distance matches the phase-2 distance to that destination.
        #[test]
        fn route_entries_are_consistent(
            side in 2usize..6,
            algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
            levels in proptest::collection::vec(0u32..16, 36),
            dead in proptest::collection::vec(any::<bool>(), 36),
        ) {
            let mesh = Mesh2D::square(side, cm(2.0));
            let graph = mesh.to_graph();
            let k = graph.node_count();
            let mut report = SystemReport::fresh(k, 16);
            for i in 0..k {
                report.set_battery_level(NodeId::new(i), levels[i]);
                if dead[i] {
                    report.set_dead(NodeId::new(i));
                }
            }
            // Three modules striped over the mesh.
            let modules: Vec<Vec<NodeId>> = (0..3)
                .map(|m| (m..k).step_by(3).map(NodeId::new).collect())
                .collect();
            let rs = Router::new(algorithm).compute(&graph, &modules, &report, None);
            for n in 0..k {
                let node = NodeId::new(n);
                for (m, hosts) in modules.iter().enumerate() {
                    if let Some(entry) = rs.route(node, m) {
                        prop_assert!(report.is_alive(node));
                        prop_assert!(hosts.contains(&entry.destination));
                        prop_assert!(report.is_alive(entry.destination));
                        if entry.destination == node {
                            prop_assert_eq!(entry.next_hop, node);
                            prop_assert_eq!(entry.distance, 0.0);
                        } else {
                            prop_assert!(graph.has_edge(node, entry.next_hop));
                        }
                        let d = rs.distance(node, entry.destination);
                        prop_assert_eq!(d, Some(entry.distance));
                    }
                }
            }
        }
    }
}
