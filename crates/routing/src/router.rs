//! The [`Router`]: all three phases behind one call.

use core::fmt;

use etx_graph::{dijkstra_source_into, DiGraph, NodeId, PathBackend, ResolvedBackend};

use crate::scratch::WeightsKey;
use crate::table::PathPolicy;
use crate::{
    ear_weights_into, sdr_weights_into, update_node_weights, BatteryWeighting, RoutingScratch,
    RoutingState, SystemReport,
};

/// Delta gate: fall back to a full recompute once more than this fraction
/// of the nodes is dirty (the incremental bookkeeping stops paying for
/// itself when most sources get re-run anyway).
const DELTA_MAX_DIRTY_FRACTION: f64 = 0.25;

/// Which routing algorithm the central controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Shortest-distance routing: weights are physical link lengths. The
    /// paper's non-energy-aware baseline.
    Sdr,
    /// Energy-aware routing: link lengths scaled by the receiving node's
    /// reported battery level. The paper's contribution.
    Ear,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Sdr => write!(f, "SDR"),
            Algorithm::Ear => write!(f, "EAR"),
        }
    }
}

/// The online routing engine run by the central controller.
///
/// "For a fair comparison, the proposed energy-aware routing strategy and
/// its non-energy-aware counterpart are kept exactly the same except their
/// routing algorithms" — [`Router`] embodies that: EAR and SDR differ only
/// in the phase-1 weight matrix.
///
/// # Examples
///
/// ```
/// use etx_graph::topology;
/// use etx_routing::{Algorithm, Router, SystemReport};
/// use etx_units::Length;
///
/// let graph = topology::ring(6, Length::from_centimetres(2.0));
/// let modules = vec![vec![0.into(), 3.into()]];
/// let report = SystemReport::fresh(6, 16);
///
/// let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
/// let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
/// // On a fresh system the two agree.
/// assert_eq!(
///     sdr.route(1.into(), 0).unwrap().destination,
///     ear.route(1.into(), 0).unwrap().destination,
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    algorithm: Algorithm,
    weighting: BatteryWeighting,
    backend: PathBackend,
}

impl Router {
    /// Creates a router with the default battery weighting
    /// (`N_B = 16`, `Q = 2`; irrelevant for SDR) and the
    /// [`PathBackend::Auto`] phase-2 backend.
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Self {
        Router { algorithm, weighting: BatteryWeighting::default(), backend: PathBackend::Auto }
    }

    /// Creates a router with an explicit EAR weighting function.
    #[must_use]
    pub fn with_weighting(algorithm: Algorithm, weighting: BatteryWeighting) -> Self {
        Router { algorithm, weighting, backend: PathBackend::Auto }
    }

    /// Selects the phase-2 all-pairs backend (default
    /// [`PathBackend::Auto`]; see its docs for the crossover heuristic).
    #[must_use]
    pub fn with_backend(mut self, backend: PathBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The algorithm this router runs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The EAR weighting function.
    #[must_use]
    pub fn weighting(&self) -> &BatteryWeighting {
        &self.weighting
    }

    /// The configured phase-2 backend.
    #[must_use]
    pub fn backend(&self) -> PathBackend {
        self.backend
    }

    /// Runs phases 1–3 and returns the complete routing state.
    ///
    /// `module_nodes[i]` is the paper's `S_i`: the set of nodes hosting
    /// duplicates of module `i`. `previous` enables the deadlock-port
    /// avoidance of phase 3; pass the routing state of the previous
    /// controller invocation (or `None` on the first run).
    ///
    /// This is a thin allocating wrapper over [`Router::compute_into`]
    /// with a fresh [`RoutingScratch`] (parallel phase 2 enabled).
    /// Complexity is dominated by phase 2: `O(K³)` under Floyd–Warshall —
    /// matching the paper — or `O(K·E log K)` under Dijkstra.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`.
    #[must_use]
    pub fn compute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
    ) -> RoutingState {
        let mut scratch = RoutingScratch::new().with_parallel(true);
        let mut out = RoutingState::empty();
        self.compute_into(graph, module_nodes, report, previous, &mut scratch, &mut out);
        out
    }

    /// Runs phases 1–3 **into** preallocated storage: once `scratch` and
    /// `out` have seen the current dimensions, the call performs no heap
    /// allocation (with `scratch`'s serial default; see
    /// [`RoutingScratch::with_parallel`]).
    ///
    /// Always performs a *full* phase-2 recompute; the simulation engine
    /// uses [`Router::recompute_into`], which additionally skips
    /// unaffected work by diffing consecutive reports.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`.
    pub fn compute_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        match previous {
            Some(prev)
                if prev.module_count() == module_nodes.len()
                    && prev.node_count() == graph.node_count() =>
            {
                prev.next_hop_snapshot_into(&mut scratch.prev_hops);
            }
            _ => scratch.prev_hops.clear(),
        }
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        self.full_recompute(graph, module_nodes, report, key, scratch, out);
    }

    /// Delta-aware recompute: `out` must hold the state this router
    /// produced for (`graph`, `old_report`), and `scratch` must be the
    /// workspace that produced it. Diffs the two reports to find nodes
    /// whose battery bucket or liveness changed, and — when the resolved
    /// backend is Dijkstra and the dirty set is small — re-runs
    /// single-source Dijkstra only from sources whose out-distances can
    /// change, falling back to a full recompute otherwise. The result is
    /// identical to [`Router::compute_into`] over `new_report` with
    /// `previous = out` (property-tested).
    ///
    /// Phase 3 (deadlock avoidance reads `out`'s table as "previous") and
    /// the report-difference bookkeeping are always refreshed; like
    /// `compute_into`, the steady state performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the reports cover a different node count than `graph`.
    pub fn recompute_into(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        old_report: &SystemReport,
        new_report: &SystemReport,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        if out.module_count() == module_nodes.len() && out.node_count() == graph.node_count() {
            out.next_hop_snapshot_into(&mut scratch.prev_hops);
        } else {
            scratch.prev_hops.clear();
        }
        // One fingerprint per frame: the delta gate compares it, the
        // full fallback stores it.
        let key = WeightsKey::new(self.algorithm, &self.weighting, graph);
        if !self.try_delta_recompute(graph, module_nodes, old_report, new_report, key, scratch, out)
        {
            self.full_recompute(graph, module_nodes, new_report, key, scratch, out);
        }
    }

    /// `true` if `node`'s phase-1-relevant state differs between reports:
    /// liveness always matters; the quantized battery bucket only feeds
    /// EAR weights.
    fn node_is_dirty(&self, old: &SystemReport, new: &SystemReport, node: NodeId) -> bool {
        if old.is_alive(node) != new.is_alive(node) {
            return true;
        }
        self.algorithm == Algorithm::Ear && old.battery_level(node) != new.battery_level(node)
    }

    /// The delta path; returns `false` when the gate conditions fail and
    /// a full recompute is required. Expects `scratch.prev_hops` to be
    /// snapshotted already.
    #[allow(clippy::too_many_arguments)]
    fn try_delta_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        old_report: &SystemReport,
        new_report: &SystemReport,
        key: WeightsKey,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) -> bool {
        let n = graph.node_count();
        // Gate: the cached weights/adjacency/paths must all describe the
        // previous call of this very configuration, and the previous
        // phase 2 must have used the Dijkstra successor policy (kept rows
        // must be bit-identical to what a fresh run would produce).
        if scratch.key != Some(key)
            || out.policy != PathPolicy::Dijkstra
            || self.backend.resolve(n, graph.edge_count()) != ResolvedBackend::DijkstraAllPairs
            || old_report.node_count() != n
            || new_report.node_count() != n
        {
            return false;
        }

        // Both vectors hold at most one entry per node; reserving the
        // bound up front keeps later frames free of mid-flight growth.
        scratch.dirty.clear();
        scratch.dirty.reserve(n);
        scratch.queue.reserve(n);
        for i in 0..n {
            if self.node_is_dirty(old_report, new_report, NodeId::new(i)) {
                scratch.dirty.push(i);
            }
        }
        #[allow(clippy::cast_precision_loss)]
        if scratch.dirty.len() as f64 > DELTA_MAX_DIRTY_FRACTION * n as f64 {
            return false;
        }

        if !scratch.dirty.is_empty() {
            // Affected sources: everything that reaches a dirty node in
            // the *union* of the old and new graphs. A source that cannot
            // reach any dirty node (old or new) never routes over a
            // changed edge, so its rows are unchanged; everything else is
            // recomputed from scratch by single-source Dijkstra.
            scratch.affected.clear();
            scratch.affected.resize(n, false);
            scratch.queue.clear();
            for &d in &scratch.dirty {
                scratch.affected[d] = true;
                scratch.queue.push(d);
            }
            while let Some(v) = scratch.queue.pop() {
                let v_node = NodeId::new(v);
                let v_alive_new = new_report.is_alive(v_node);
                for u in 0..n {
                    if u == v || scratch.affected[u] {
                        continue;
                    }
                    let u_node = NodeId::new(u);
                    // Old edge u→v: finite off-diagonal weight in the
                    // cached (previous) matrix.
                    let old_edge = scratch.weights[(u, v)].is_finite();
                    // New edge u→v: physical link with both ends alive.
                    let new_edge = v_alive_new
                        && new_report.is_alive(u_node)
                        && graph.has_edge(u_node, v_node);
                    if old_edge || new_edge {
                        scratch.affected[u] = true;
                        scratch.queue.push(u);
                    }
                }
            }

            // Phase 1 delta: refresh the weight rows/columns of dirty
            // nodes and mirror them into the adjacency lists.
            for &d in &scratch.dirty {
                update_node_weights(
                    graph,
                    new_report,
                    (self.algorithm == Algorithm::Ear).then_some(&self.weighting),
                    NodeId::new(d),
                    &mut scratch.weights,
                );
                scratch.adjacency.sync_node(d, &scratch.weights);
            }

            // Phase 2 delta: re-run the affected sources only.
            let paths = out.paths_mut();
            for s in 0..n {
                if !scratch.affected[s] {
                    continue;
                }
                let source = NodeId::new(s);
                let (dist_row, succ_row) = paths.source_rows_mut(source);
                dijkstra_source_into(
                    &scratch.adjacency,
                    source,
                    &mut scratch.dijkstra,
                    dist_row,
                    succ_row,
                );
            }
        }

        // Phase 3 always refreshes (deadlock flags and module placement
        // are not part of the dirty predicate).
        let prev = (!scratch.prev_hops.is_empty()).then_some(scratch.prev_hops.as_slice());
        out.rebuild_table(&scratch.weights, module_nodes, new_report, prev);
        scratch.delta_recomputes += 1;
        true
    }

    /// Full phases 1–3 into `out`, refreshing the scratch caches.
    /// Expects `scratch.prev_hops` to be snapshotted already.
    fn full_recompute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        key: WeightsKey,
        scratch: &mut RoutingScratch,
        out: &mut RoutingState,
    ) {
        let n = graph.node_count();
        match self.algorithm {
            Algorithm::Sdr => sdr_weights_into(graph, report, &mut scratch.weights),
            Algorithm::Ear => {
                ear_weights_into(graph, report, &self.weighting, &mut scratch.weights);
            }
        }
        let resolved = self.backend.resolve(n, graph.edge_count());
        resolved.compute_into(
            &scratch.weights,
            &mut scratch.adjacency,
            &mut scratch.dijkstra,
            out.paths_mut(),
            scratch.parallel,
        );
        out.policy = match resolved {
            ResolvedBackend::FloydWarshall => PathPolicy::FloydWarshall,
            ResolvedBackend::DijkstraAllPairs => PathPolicy::Dijkstra,
        };
        scratch.key = Some(key);
        let prev = (!scratch.prev_hops.is_empty()).then_some(scratch.prev_hops.as_slice());
        out.rebuild_table(&scratch.weights, module_nodes, report, prev);
        scratch.full_recomputes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology::{self, Mesh2D};
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Sdr.to_string(), "SDR");
        assert_eq!(Algorithm::Ear.to_string(), "EAR");
    }

    #[test]
    fn accessors() {
        let r = Router::with_weighting(Algorithm::Ear, BatteryWeighting::new(8, 4.0));
        assert_eq!(r.algorithm(), Algorithm::Ear);
        assert_eq!(r.weighting().levels(), 8);
    }

    #[test]
    fn fresh_system_ear_equals_sdr() {
        let mesh = Mesh2D::square(5, cm(2.0));
        let graph = mesh.to_graph();
        let modules: Vec<Vec<NodeId>> = vec![
            (0..25).step_by(3).map(NodeId::new).collect(),
            (1..25).step_by(3).map(NodeId::new).collect(),
            (2..25).step_by(3).map(NodeId::new).collect(),
        ];
        let report = SystemReport::fresh(25, 16);
        let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
        for n in 0..25 {
            for m in 0..3 {
                let (s, e) = (sdr.route(NodeId::new(n), m), ear.route(NodeId::new(n), m));
                assert_eq!(
                    s.map(|x| x.destination),
                    e.map(|x| x.destination),
                    "node {n} module {m}"
                );
            }
        }
    }

    #[test]
    fn ear_switches_destination_when_duplicate_drains() {
        // Ring of 6 with module hosted at 0 and 3; node 1 queries it.
        let graph = topology::ring(6, cm(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let mut report = SystemReport::fresh(6, 16);

        let router = Router::new(Algorithm::Ear);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));

        // Drain node 0 to the last level: the (battery-weighted) distance
        // to 0 now exceeds the two plain hops to 3.
        report.set_battery_level(NodeId::new(0), 0);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(3));

        // SDR keeps hammering node 0.
        let rs = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));
    }

    #[test]
    fn ear_rotates_load_across_duplicates_sdr_does_not() {
        // Drain-and-reroute loop on a ring with two duplicates of one
        // module: each "round" the chosen destination loses one battery
        // level. EAR spreads the work over both duplicates; SDR hammers
        // its nearest one until death.
        let graph = topology::ring(6, cm(1.0));
        let hosts = vec![vec![NodeId::new(2), NodeId::new(4)]];
        let origin = NodeId::new(0);
        let mut usage = std::collections::HashMap::new();

        for algorithm in [Algorithm::Ear, Algorithm::Sdr] {
            let router = Router::new(algorithm);
            let mut report = SystemReport::fresh(6, 16);
            let mut counts = [0u32; 6];
            for _ in 0..24 {
                let routing = router.compute(&graph, &hosts, &report, None);
                let Some(entry) = routing.route(origin, 0) else { break };
                counts[entry.destination.index()] += 1;
                let level = report.battery_level(entry.destination);
                if level == 0 {
                    report.set_dead(entry.destination);
                } else {
                    report.set_battery_level(entry.destination, level - 1);
                }
            }
            usage.insert(format!("{algorithm}"), counts);
        }

        let ear = usage["EAR"];
        let sdr = usage["SDR"];
        // EAR alternates once the gap reaches one level: both duplicates
        // carry meaningful load.
        assert!(ear[2] >= 8 && ear[4] >= 8, "EAR did not balance: {ear:?}");
        // SDR uses only the nearer duplicate until it dies.
        assert_eq!(sdr[2], 16, "SDR should exhaust n2 first: {sdr:?}");
        assert!(sdr[4] <= 8, "SDR spread load unexpectedly: {sdr:?}");
    }

    proptest! {
        /// Structural invariants on random meshes and battery states: every
        /// route entry's next hop is the node itself or a graph neighbour,
        /// its destination hosts the module and is alive, and the entry's
        /// distance matches the phase-2 distance to that destination.
        #[test]
        fn route_entries_are_consistent(
            side in 2usize..6,
            algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
            levels in proptest::collection::vec(0u32..16, 36),
            dead in proptest::collection::vec(any::<bool>(), 36),
        ) {
            let mesh = Mesh2D::square(side, cm(2.0));
            let graph = mesh.to_graph();
            let k = graph.node_count();
            let mut report = SystemReport::fresh(k, 16);
            for i in 0..k {
                report.set_battery_level(NodeId::new(i), levels[i]);
                if dead[i] {
                    report.set_dead(NodeId::new(i));
                }
            }
            // Three modules striped over the mesh.
            let modules: Vec<Vec<NodeId>> = (0..3)
                .map(|m| (m..k).step_by(3).map(NodeId::new).collect())
                .collect();
            let rs = Router::new(algorithm).compute(&graph, &modules, &report, None);
            for n in 0..k {
                let node = NodeId::new(n);
                for (m, hosts) in modules.iter().enumerate() {
                    if let Some(entry) = rs.route(node, m) {
                        prop_assert!(report.is_alive(node));
                        prop_assert!(hosts.contains(&entry.destination));
                        prop_assert!(report.is_alive(entry.destination));
                        if entry.destination == node {
                            prop_assert_eq!(entry.next_hop, node);
                            prop_assert_eq!(entry.distance, 0.0);
                        } else {
                            prop_assert!(graph.has_edge(node, entry.next_hop));
                        }
                        let d = rs.distance(node, entry.destination);
                        prop_assert_eq!(d, Some(entry.distance));
                    }
                }
            }
        }
    }
}
