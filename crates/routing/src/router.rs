//! The [`Router`]: all three phases behind one call.

use core::fmt;

use etx_graph::{floyd_warshall, DiGraph, NodeId};

use crate::{ear_weights, sdr_weights, BatteryWeighting, RoutingState, SystemReport};

/// Which routing algorithm the central controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Shortest-distance routing: weights are physical link lengths. The
    /// paper's non-energy-aware baseline.
    Sdr,
    /// Energy-aware routing: link lengths scaled by the receiving node's
    /// reported battery level. The paper's contribution.
    Ear,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Sdr => write!(f, "SDR"),
            Algorithm::Ear => write!(f, "EAR"),
        }
    }
}

/// The online routing engine run by the central controller.
///
/// "For a fair comparison, the proposed energy-aware routing strategy and
/// its non-energy-aware counterpart are kept exactly the same except their
/// routing algorithms" — [`Router`] embodies that: EAR and SDR differ only
/// in the phase-1 weight matrix.
///
/// # Examples
///
/// ```
/// use etx_graph::topology;
/// use etx_routing::{Algorithm, Router, SystemReport};
/// use etx_units::Length;
///
/// let graph = topology::ring(6, Length::from_centimetres(2.0));
/// let modules = vec![vec![0.into(), 3.into()]];
/// let report = SystemReport::fresh(6, 16);
///
/// let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
/// let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
/// // On a fresh system the two agree.
/// assert_eq!(
///     sdr.route(1.into(), 0).unwrap().destination,
///     ear.route(1.into(), 0).unwrap().destination,
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    algorithm: Algorithm,
    weighting: BatteryWeighting,
}

impl Router {
    /// Creates a router with the default battery weighting
    /// (`N_B = 16`, `Q = 2`; irrelevant for SDR).
    #[must_use]
    pub fn new(algorithm: Algorithm) -> Self {
        Router { algorithm, weighting: BatteryWeighting::default() }
    }

    /// Creates a router with an explicit EAR weighting function.
    #[must_use]
    pub fn with_weighting(algorithm: Algorithm, weighting: BatteryWeighting) -> Self {
        Router { algorithm, weighting }
    }

    /// The algorithm this router runs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The EAR weighting function.
    #[must_use]
    pub fn weighting(&self) -> &BatteryWeighting {
        &self.weighting
    }

    /// Runs phases 1–3 and returns the complete routing state.
    ///
    /// `module_nodes[i]` is the paper's `S_i`: the set of nodes hosting
    /// duplicates of module `i`. `previous` enables the deadlock-port
    /// avoidance of phase 3; pass the routing state of the previous
    /// controller invocation (or `None` on the first run).
    ///
    /// Complexity is dominated by phase 2's `O(K³)`, matching the paper.
    ///
    /// # Panics
    ///
    /// Panics if `report` covers a different node count than `graph`.
    #[must_use]
    pub fn compute(
        &self,
        graph: &DiGraph,
        module_nodes: &[Vec<NodeId>],
        report: &SystemReport,
        previous: Option<&RoutingState>,
    ) -> RoutingState {
        let weights = match self.algorithm {
            Algorithm::Sdr => sdr_weights(graph, report),
            Algorithm::Ear => ear_weights(graph, report, &self.weighting),
        };
        let paths = floyd_warshall(&weights);
        RoutingState::build(paths, &weights, module_nodes, report, previous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology::{self, Mesh2D};
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Sdr.to_string(), "SDR");
        assert_eq!(Algorithm::Ear.to_string(), "EAR");
    }

    #[test]
    fn accessors() {
        let r = Router::with_weighting(Algorithm::Ear, BatteryWeighting::new(8, 4.0));
        assert_eq!(r.algorithm(), Algorithm::Ear);
        assert_eq!(r.weighting().levels(), 8);
    }

    #[test]
    fn fresh_system_ear_equals_sdr() {
        let mesh = Mesh2D::square(5, cm(2.0));
        let graph = mesh.to_graph();
        let modules: Vec<Vec<NodeId>> = vec![
            (0..25).step_by(3).map(NodeId::new).collect(),
            (1..25).step_by(3).map(NodeId::new).collect(),
            (2..25).step_by(3).map(NodeId::new).collect(),
        ];
        let report = SystemReport::fresh(25, 16);
        let sdr = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        let ear = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
        for n in 0..25 {
            for m in 0..3 {
                let (s, e) = (sdr.route(NodeId::new(n), m), ear.route(NodeId::new(n), m));
                assert_eq!(
                    s.map(|x| x.destination),
                    e.map(|x| x.destination),
                    "node {n} module {m}"
                );
            }
        }
    }

    #[test]
    fn ear_switches_destination_when_duplicate_drains() {
        // Ring of 6 with module hosted at 0 and 3; node 1 queries it.
        let graph = topology::ring(6, cm(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let mut report = SystemReport::fresh(6, 16);

        let router = Router::new(Algorithm::Ear);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));

        // Drain node 0 to the last level: the (battery-weighted) distance
        // to 0 now exceeds the two plain hops to 3.
        report.set_battery_level(NodeId::new(0), 0);
        let rs = router.compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(3));

        // SDR keeps hammering node 0.
        let rs = Router::new(Algorithm::Sdr).compute(&graph, &modules, &report, None);
        assert_eq!(rs.route(NodeId::new(1), 0).unwrap().destination, NodeId::new(0));
    }

    #[test]
    fn ear_rotates_load_across_duplicates_sdr_does_not() {
        // Drain-and-reroute loop on a ring with two duplicates of one
        // module: each "round" the chosen destination loses one battery
        // level. EAR spreads the work over both duplicates; SDR hammers
        // its nearest one until death.
        let graph = topology::ring(6, cm(1.0));
        let hosts = vec![vec![NodeId::new(2), NodeId::new(4)]];
        let origin = NodeId::new(0);
        let mut usage = std::collections::HashMap::new();

        for algorithm in [Algorithm::Ear, Algorithm::Sdr] {
            let router = Router::new(algorithm);
            let mut report = SystemReport::fresh(6, 16);
            let mut counts = [0u32; 6];
            for _ in 0..24 {
                let routing = router.compute(&graph, &hosts, &report, None);
                let Some(entry) = routing.route(origin, 0) else { break };
                counts[entry.destination.index()] += 1;
                let level = report.battery_level(entry.destination);
                if level == 0 {
                    report.set_dead(entry.destination);
                } else {
                    report.set_battery_level(entry.destination, level - 1);
                }
            }
            usage.insert(format!("{algorithm}"), counts);
        }

        let ear = usage["EAR"];
        let sdr = usage["SDR"];
        // EAR alternates once the gap reaches one level: both duplicates
        // carry meaningful load.
        assert!(ear[2] >= 8 && ear[4] >= 8, "EAR did not balance: {ear:?}");
        // SDR uses only the nearer duplicate until it dies.
        assert_eq!(sdr[2], 16, "SDR should exhaust n2 first: {sdr:?}");
        assert!(sdr[4] <= 8, "SDR spread load unexpectedly: {sdr:?}");
    }

    proptest! {
        /// Structural invariants on random meshes and battery states: every
        /// route entry's next hop is the node itself or a graph neighbour,
        /// its destination hosts the module and is alive, and the entry's
        /// distance matches the phase-2 distance to that destination.
        #[test]
        fn route_entries_are_consistent(
            side in 2usize..6,
            algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
            levels in proptest::collection::vec(0u32..16, 36),
            dead in proptest::collection::vec(any::<bool>(), 36),
        ) {
            let mesh = Mesh2D::square(side, cm(2.0));
            let graph = mesh.to_graph();
            let k = graph.node_count();
            let mut report = SystemReport::fresh(k, 16);
            for i in 0..k {
                report.set_battery_level(NodeId::new(i), levels[i]);
                if dead[i] {
                    report.set_dead(NodeId::new(i));
                }
            }
            // Three modules striped over the mesh.
            let modules: Vec<Vec<NodeId>> = (0..3)
                .map(|m| (m..k).step_by(3).map(NodeId::new).collect())
                .collect();
            let rs = Router::new(algorithm).compute(&graph, &modules, &report, None);
            for n in 0..k {
                let node = NodeId::new(n);
                for (m, hosts) in modules.iter().enumerate() {
                    if let Some(entry) = rs.route(node, m) {
                        prop_assert!(report.is_alive(node));
                        prop_assert!(hosts.contains(&entry.destination));
                        prop_assert!(report.is_alive(entry.destination));
                        if entry.destination == node {
                            prop_assert_eq!(entry.next_hop, node);
                            prop_assert_eq!(entry.distance, 0.0);
                        } else {
                            prop_assert!(graph.has_edge(node, entry.next_hop));
                        }
                        let d = rs.distance(node, entry.destination);
                        prop_assert_eq!(d, Some(entry.distance));
                    }
                }
            }
        }
    }
}
