//! The EAR battery [`BatteryWeighting`] function `f(n)`.

use core::fmt;

/// The exponential battery weighting of the paper's Sec 6:
/// `f(n) = Q^(N_B − 1 − n)` for a reported battery level
/// `n ∈ 0..N_B`.
///
/// * At full charge (`n = N_B − 1`) the weight is `Q⁰ = 1`, so EAR's edge
///   weights coincide with SDR's and the algorithms agree on a fresh
///   system.
/// * Each level the battery drops multiplies the weight by `Q`; the
///   constant `Q > 0` "strengthen\[s\] the impact of the battery
///   information".
///
/// # Examples
///
/// ```
/// use etx_routing::BatteryWeighting;
///
/// let w = BatteryWeighting::new(16, 2.0);
/// assert_eq!(w.weight(15), 1.0);       // full battery
/// assert_eq!(w.weight(14), 2.0);
/// assert_eq!(w.weight(0), 2f64.powi(15)); // nearly empty
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryWeighting {
    levels: u32,
    q: f64,
}

impl BatteryWeighting {
    /// Creates a weighting with `levels` battery levels (`N_B`) and
    /// exponent base `q` (`Q`).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `q` is not finite and positive.
    #[must_use]
    pub fn new(levels: u32, q: f64) -> Self {
        assert!(levels > 0, "battery weighting needs at least one level");
        assert!(q.is_finite() && q > 0.0, "Q must be finite and positive, got {q}");
        BatteryWeighting { levels, q }
    }

    /// `N_B`: the number of battery levels.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// `Q`: the exponent base.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// `f(n) = Q^(N_B − 1 − n)`, clamping `n` to the valid range.
    #[must_use]
    pub fn weight(&self, level: u32) -> f64 {
        let n = level.min(self.levels - 1);
        self.q.powi((self.levels - 1 - n) as i32)
    }
}

impl Default for BatteryWeighting {
    /// The platform default: `N_B = 16` levels, `Q = 2`.
    fn default() -> Self {
        BatteryWeighting::new(16, 2.0)
    }
}

impl fmt::Display for BatteryWeighting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f(n) = {}^({} - 1 - n)", self.q, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_battery_weight_is_one() {
        for q in [1.0, 2.0, 4.0, 8.0] {
            let w = BatteryWeighting::new(16, q);
            assert_eq!(w.weight(15), 1.0);
        }
    }

    #[test]
    fn q_of_one_is_flat() {
        // Q = 1 disables battery awareness entirely: EAR == SDR.
        let w = BatteryWeighting::new(16, 1.0);
        for level in 0..16 {
            assert_eq!(w.weight(level), 1.0);
        }
    }

    #[test]
    fn weight_doubles_per_level_with_q2() {
        let w = BatteryWeighting::default();
        for level in 1..16 {
            assert_eq!(w.weight(level - 1), 2.0 * w.weight(level));
        }
    }

    #[test]
    fn out_of_range_level_clamps() {
        let w = BatteryWeighting::new(8, 2.0);
        assert_eq!(w.weight(7), 1.0);
        assert_eq!(w.weight(100), 1.0); // clamped to the top level
    }

    #[test]
    fn accessors_and_display() {
        let w = BatteryWeighting::new(16, 2.0);
        assert_eq!(w.levels(), 16);
        assert_eq!(w.q(), 2.0);
        assert!(w.to_string().contains("2^"));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = BatteryWeighting::new(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_q_panics() {
        let _ = BatteryWeighting::new(16, 0.0);
    }

    proptest! {
        /// Weights are monotone non-increasing in battery level and
        /// always >= 1 for Q >= 1.
        #[test]
        fn monotone_in_level(q in 1.0f64..8.0, a in 0u32..16, b in 0u32..16) {
            let w = BatteryWeighting::new(16, q);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(w.weight(lo) >= w.weight(hi));
            prop_assert!(w.weight(hi) >= 1.0);
        }
    }
}
