//! The [`SystemReport`] uploaded to the central controller.

use etx_graph::NodeId;

/// A snapshot of the system state as the TDMA upload phase delivers it to
/// the central controller: per-node battery levels (quantized to `N_B`
/// levels), liveness, and deadlock flags.
///
/// The controller re-runs the routing algorithm only "when the currently
/// reported system information differs from the previous one", so
/// `SystemReport` implements `PartialEq` for exactly that comparison.
///
/// # Examples
///
/// ```
/// use etx_routing::SystemReport;
///
/// let mut report = SystemReport::fresh(4, 16);
/// assert_eq!(report.battery_level(0.into()), 15);
/// report.set_battery_level(0.into(), 3);
/// report.set_dead(2.into());
/// assert!(!report.is_alive(2.into()));
/// assert_eq!(report.battery_level(2.into()), 0);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct SystemReport {
    levels: u32,
    battery: Vec<u32>,
    alive: Vec<bool>,
    deadlocked: Vec<bool>,
}

impl Clone for SystemReport {
    fn clone(&self) -> Self {
        SystemReport {
            levels: self.levels,
            battery: self.battery.clone(),
            alive: self.alive.clone(),
            deadlocked: self.deadlocked.clone(),
        }
    }

    /// Field-wise `clone_from` so recycled report buffers (the simulator
    /// keeps two and swaps them every TDMA frame) are refilled without
    /// allocating.
    fn clone_from(&mut self, source: &Self) {
        self.levels = source.levels;
        self.battery.clone_from(&source.battery);
        self.alive.clone_from(&source.alive);
        self.deadlocked.clone_from(&source.deadlocked);
    }
}

impl SystemReport {
    /// A report for `nodes` fresh nodes: full batteries, everyone alive,
    /// nothing deadlocked.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    #[must_use]
    pub fn fresh(nodes: usize, levels: u32) -> Self {
        assert!(levels > 0, "battery quantization needs at least one level");
        SystemReport {
            levels,
            battery: vec![levels - 1; nodes],
            alive: vec![true; nodes],
            deadlocked: vec![false; nodes],
        }
    }

    /// Resets this report to the fresh state of [`SystemReport::fresh`]
    /// for `nodes` nodes, reusing the existing allocations — the
    /// simulator rebuilds its report every TDMA frame through this, so
    /// steady-state frames allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn reset_fresh(&mut self, nodes: usize, levels: u32) {
        assert!(levels > 0, "battery quantization needs at least one level");
        self.levels = levels;
        self.battery.clear();
        self.battery.resize(nodes, levels - 1);
        self.alive.clear();
        self.alive.resize(nodes, true);
        self.deadlocked.clear();
        self.deadlocked.resize(nodes, false);
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.battery.len()
    }

    /// `N_B`: the battery quantization used by this report.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The reported battery level of `node` (0 for dead nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn battery_level(&self, node: NodeId) -> u32 {
        self.battery[node.index()]
    }

    /// Sets the reported battery level (clamped to `N_B − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_battery_level(&mut self, node: NodeId, level: u32) {
        self.battery[node.index()] = level.min(self.levels - 1);
    }

    /// `true` if `node` reported in (its battery has not died).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Marks `node` dead; its battery level drops to 0 and its deadlock
    /// flag clears (dead nodes hold no jobs).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_dead(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
        self.battery[node.index()] = 0;
        self.deadlocked[node.index()] = false;
    }

    /// Marks `node` alive again at battery `level` (clamped to `N_B − 1`)
    /// — a harvested/recharged battery climbing back over the voltage
    /// cutoff, or a reconnected fabric segment reporting in.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn revive(&mut self, node: NodeId, level: u32) {
        self.alive[node.index()] = true;
        self.battery[node.index()] = level.min(self.levels - 1);
        self.deadlocked[node.index()] = false;
    }

    /// `true` if `node` reported a job stuck past the deadlock threshold.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn is_deadlocked(&self, node: NodeId) -> bool {
        self.deadlocked[node.index()]
    }

    /// Sets or clears the deadlock flag of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_deadlocked(&mut self, node: NodeId, deadlocked: bool) {
        self.deadlocked[node.index()] = deadlocked;
    }

    /// Iterates over all live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive.iter().enumerate().filter_map(|(i, &a)| a.then_some(NodeId::new(i)))
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_report() {
        let r = SystemReport::fresh(3, 16);
        assert_eq!(r.node_count(), 3);
        assert_eq!(r.levels(), 16);
        assert_eq!(r.live_count(), 3);
        for i in 0..3 {
            let n = NodeId::new(i);
            assert_eq!(r.battery_level(n), 15);
            assert!(r.is_alive(n));
            assert!(!r.is_deadlocked(n));
        }
    }

    #[test]
    fn death_zeroes_battery_and_clears_deadlock() {
        let mut r = SystemReport::fresh(2, 16);
        r.set_deadlocked(NodeId::new(1), true);
        r.set_dead(NodeId::new(1));
        assert!(!r.is_alive(NodeId::new(1)));
        assert_eq!(r.battery_level(NodeId::new(1)), 0);
        assert!(!r.is_deadlocked(NodeId::new(1)));
        assert_eq!(r.live_count(), 1);
        assert_eq!(r.live_nodes().collect::<Vec<_>>(), vec![NodeId::new(0)]);
    }

    #[test]
    fn revive_restores_liveness_and_battery() {
        let mut r = SystemReport::fresh(3, 16);
        r.set_dead(NodeId::new(1));
        assert_eq!(r.live_count(), 2);
        r.revive(NodeId::new(1), 99);
        assert!(r.is_alive(NodeId::new(1)));
        assert_eq!(r.battery_level(NodeId::new(1)), 15, "level clamps to N_B - 1");
        assert!(!r.is_deadlocked(NodeId::new(1)));
        assert_eq!(r.live_count(), 3);
    }

    #[test]
    fn level_clamped_to_quantization() {
        let mut r = SystemReport::fresh(1, 8);
        r.set_battery_level(NodeId::new(0), 100);
        assert_eq!(r.battery_level(NodeId::new(0)), 7);
    }

    #[test]
    fn equality_detects_changes() {
        let a = SystemReport::fresh(4, 16);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.set_battery_level(NodeId::new(2), 3);
        assert_ne!(a, b);
        let mut c = a.clone();
        c.set_deadlocked(NodeId::new(0), true);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = SystemReport::fresh(4, 0);
    }
}
