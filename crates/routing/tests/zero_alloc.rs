//! Proves the zero-allocation claim of `Router::recompute_into`: once a
//! `RoutingScratch`/`RoutingState` pair has warmed up on the system's
//! dimensions, steady-state recomputes perform **no heap allocation** —
//! under both phase-2 backends and under every recompute strategy the
//! simulator can run (incremental repair included).
//!
//! A counting `#[global_allocator]` wraps the system allocator; this file
//! contains a single test so no concurrent test case can pollute the
//! counter between snapshots.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use etx_graph::{topology::Mesh2D, NodeBitset, NodeId};
use etx_routing::{
    Algorithm, FrameDelta, RecomputeStrategy, Router, RoutingScratch, RoutingState, SystemReport,
};
use etx_units::Length;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

/// Drives a warmed scratch through `frames` battery-drain recomputes
/// (mirroring what the simulator does every TDMA frame: snapshot the old
/// report into a recycled buffer, mutate, recompute) and returns how many
/// heap allocations the frames performed.
#[allow(clippy::too_many_arguments)] // test helper mirroring the engine's state
fn allocations_over_drain_frames(
    router: &Router,
    graph: &etx_graph::DiGraph,
    modules: &[Vec<NodeId>],
    scratch: &mut RoutingScratch,
    state: &mut RoutingState,
    report: &mut SystemReport,
    old_report: &mut SystemReport,
    frames: u32,
) -> u64 {
    let k = graph.node_count();
    let before = allocations();
    for frame in 0..frames {
        old_report.clone_from(report); // warmed buffer: no allocation
        let node = NodeId::new((frame as usize * 7 + 3) % k);
        let level = report.battery_level(node);
        report.set_battery_level(node, level.saturating_sub(1));
        router.recompute_into(graph, modules, old_report, report, scratch, state);
    }
    allocations() - before
}

#[test]
fn steady_state_recompute_does_not_allocate() {
    // 8x8: Auto resolves to Dijkstra, so both the repair pipeline
    // (strategy Auto/IncrementalRepair) and the affected-sources delta
    // path engage. 4x4: Auto resolves to Floyd-Warshall (the paper's
    // sizes) and every frame is a full recompute.
    for (side, strategy, expect) in [
        (8usize, RecomputeStrategy::Auto, "repair"),
        (8, RecomputeStrategy::IncrementalRepair, "repair"),
        (8, RecomputeStrategy::AffectedSources, "delta"),
        (4, RecomputeStrategy::Auto, "full"),
    ] {
        let graph = Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph();
        let k = graph.node_count();
        let modules = module_stripes(k);
        let router = Router::new(Algorithm::Ear).with_strategy(strategy);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = SystemReport::fresh(k, 16);

        // Warm-up: initial full compute, then a burst of drain frames so
        // every lazily-grown buffer (dirty/affected/queue/prev-hop
        // snapshot, adjacency + transpose, shortest-path trees, repair
        // scratch, heap, report clone buffer) reaches steady capacity.
        // Everything is deterministic, so "warm" is a stable property,
        // not a flaky one.
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
        let mut warm_old = SystemReport::fresh(0, 1);
        let _ = allocations_over_drain_frames(
            &router,
            &graph,
            &modules,
            &mut scratch,
            &mut state,
            &mut report,
            &mut warm_old,
            8,
        );

        let allocated = allocations_over_drain_frames(
            &router,
            &graph,
            &modules,
            &mut scratch,
            &mut state,
            &mut report,
            &mut warm_old,
            32,
        );
        assert_eq!(
            allocated, 0,
            "{side}x{side} {strategy}: steady-state recompute allocated {allocated} times"
        );
        match expect {
            "repair" => {
                assert!(
                    scratch.repair_recomputes() >= 32,
                    "{side}x{side} {strategy}: repair pipeline never engaged \
                     ({} repair / {} delta / {} full)",
                    scratch.repair_recomputes(),
                    scratch.delta_recomputes(),
                    scratch.full_recomputes()
                );
                assert!(
                    scratch.repaired_sources() > 0,
                    "{side}x{side} {strategy}: no source was ever repaired in place"
                );
            }
            "delta" => {
                assert!(
                    scratch.delta_recomputes() >= 32,
                    "{side}x{side} {strategy}: delta path never engaged ({} delta / {} full)",
                    scratch.delta_recomputes(),
                    scratch.full_recomputes()
                );
            }
            _ => {
                assert_eq!(
                    scratch.delta_recomputes() + scratch.repair_recomputes(),
                    0,
                    "{side}x{side} {strategy}: Floyd-Warshall sizes must recompute in full"
                );
            }
        }
        // Results stay correct after all those in-place updates.
        let reference = router.compute(&graph, &modules, &report, None);
        assert_eq!(state.paths().distances(), reference.paths().distances());
        assert_eq!(state.paths().successors(), reference.paths().successors());
    }

    // The changed-bitset frame feed (`recompute_frame_into`) holds the
    // same guarantee — and, being the O(changed) path, must also skip
    // the per-frame O(K) scans on every steady frame.
    let graph = Mesh2D::square(8, Length::from_centimetres(2.05)).to_graph();
    let k = graph.node_count();
    let modules = module_stripes(k);
    let router = Router::new(Algorithm::Ear);
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    let mut report = SystemReport::fresh(k, 16);
    let mut bits = NodeBitset::with_capacity(k);
    router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
    let drain_frame = |frame: usize,
                       report: &mut SystemReport,
                       bits: &mut NodeBitset,
                       scratch: &mut RoutingScratch,
                       state: &mut RoutingState| {
        let node = NodeId::new((frame * 7 + 3) % k);
        report.set_battery_level(node, report.battery_level(node).saturating_sub(1));
        bits.clear();
        bits.insert(node);
        router.recompute_frame_into(
            &graph,
            &modules,
            report,
            FrameDelta { changed: bits, any_deadlock: false, placement_changed: false },
            scratch,
            state,
        );
    };
    for frame in 0..8 {
        drain_frame(frame, &mut report, &mut bits, &mut scratch, &mut state);
    }
    let skipped_before = scratch.frames_ok_skipped();
    let before = allocations();
    for frame in 8..40 {
        drain_frame(frame, &mut report, &mut bits, &mut scratch, &mut state);
    }
    assert_eq!(allocations() - before, 0, "bitset-fed frames allocated");
    assert_eq!(
        scratch.frames_ok_skipped() - skipped_before,
        32,
        "every steady bitset-fed frame must skip the O(K) scan"
    );
    let reference = router.compute(&graph, &modules, &report, None);
    assert_eq!(state.paths().distances(), reference.paths().distances());
    assert_eq!(state.paths().successors(), reference.paths().successors());

    // The decrease half holds the guarantee too: alternating drain and
    // recharge frames keep the improvement heap, the child-link walks
    // and the succ-dirty DFS inside recycled buffers. The recharges are
    // genuine weight decreases, so `decrease_repairs` must advance while
    // the allocation counter stands still.
    let pulse_frame = |frame: usize,
                       report: &mut SystemReport,
                       bits: &mut NodeBitset,
                       scratch: &mut RoutingScratch,
                       state: &mut RoutingState| {
        let node = NodeId::new((frame * 5 + 2) % k);
        let level = report.battery_level(node);
        let level =
            if frame.is_multiple_of(2) { level.saturating_sub(1) } else { (level + 1).min(15) };
        report.set_battery_level(node, level);
        bits.clear();
        bits.insert(node);
        router.recompute_frame_into(
            &graph,
            &modules,
            report,
            FrameDelta { changed: bits, any_deadlock: false, placement_changed: false },
            scratch,
            state,
        );
    };
    for frame in 0..8 {
        pulse_frame(frame, &mut report, &mut bits, &mut scratch, &mut state);
    }
    let decreases_before = scratch.decrease_repairs();
    let before = allocations();
    for frame in 8..40 {
        pulse_frame(frame, &mut report, &mut bits, &mut scratch, &mut state);
    }
    assert_eq!(allocations() - before, 0, "decrease-repair frames allocated");
    assert!(
        scratch.decrease_repairs() > decreases_before,
        "recharge pulses never engaged the decrease half"
    );
    let reference = router.compute(&graph, &modules, &report, None);
    assert_eq!(state.paths().distances(), reference.paths().distances());
    assert_eq!(state.paths().successors(), reference.paths().successors());
}
