//! Property tests for the routing kernel's fast paths: scratch reuse,
//! delta-aware recompute, strategy equivalence, and backend equivalence.

use etx_graph::{topology::Mesh2D, NodeBitset, NodeId, PathBackend};
use etx_routing::{
    Algorithm, FrameDelta, RecomputeStrategy, Router, RoutingScratch, RoutingState, SystemReport,
};
use etx_units::Length;
use proptest::prelude::*;

fn mesh_graph(side: usize) -> etx_graph::DiGraph {
    Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph()
}

/// Three modules striped over `k` nodes.
fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

fn report_from(levels: &[u32], dead: &[bool], deadlocked: &[bool], k: usize) -> SystemReport {
    let mut report = SystemReport::fresh(k, 16);
    for i in 0..k {
        let node = NodeId::new(i);
        report.set_battery_level(node, levels[i % levels.len()]);
        report.set_deadlocked(node, deadlocked[i % deadlocked.len()]);
        if dead[i % dead.len()] {
            report.set_dead(node);
        }
    }
    report
}

/// One random mutation step applied to a report: drains, deaths, deadlock
/// toggles, and revivals (dead→alive transitions — weight *decreases* the
/// repair pipeline now patches in place instead of re-running).
fn apply_diff(report: &mut SystemReport, ops: &[(u8, usize, u32)]) {
    let k = report.node_count();
    for &(kind, node, value) in ops {
        let node = NodeId::new(node % k);
        match kind % 5 {
            0 => report.set_battery_level(node, value % 16),
            1 => report.set_dead(node),
            2 if report.is_alive(node) => report.set_deadlocked(node, value % 2 == 0),
            3 if !report.is_alive(node) => report.revive(node, value % 16),
            _ => {} // no-op step: recompute with an unchanged report
        }
    }
}

/// Regression: a different graph with identical node/edge *counts* (only
/// edge lengths differ) must not let the delta path reuse stale cached
/// weights — the scratch fingerprints the full edge list.
#[test]
fn swapping_same_shape_graph_invalidates_scratch_cache() {
    let router = Router::new(Algorithm::Ear).with_backend(PathBackend::DijkstraAllPairs);
    let graph_a = Mesh2D::square(4, Length::from_centimetres(2.0)).to_graph();
    let graph_b = Mesh2D::square(4, Length::from_centimetres(3.0)).to_graph();
    let k = graph_a.node_count();
    let modules = module_stripes(k);
    let report = SystemReport::fresh(k, 16);

    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    router.compute_into(&graph_a, &modules, &report, None, &mut scratch, &mut state);

    // Same report (empty diff), different graph of identical shape: a
    // count-only fingerprint would skip phase 2 and keep graph A's
    // distances.
    router.recompute_into(&graph_b, &modules, &report, &report, &mut scratch, &mut state);
    let reference = router.compute(&graph_b, &modules, &report, None);
    assert_eq!(state.paths().distances(), reference.paths().distances());
    assert_eq!(scratch.delta_recomputes(), 0, "delta must not engage across graphs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `compute_into` with one long-lived scratch/state pair — resized
    /// across differing mesh sizes, both algorithms and all backends —
    /// always equals a fresh `compute`.
    #[test]
    fn compute_into_with_reused_scratch_equals_fresh_compute(
        sides in proptest::collection::vec(2usize..9, 1..5),
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        backend in prop_oneof![
            Just(PathBackend::FloydWarshall),
            Just(PathBackend::DijkstraAllPairs),
            Just(PathBackend::Auto),
        ],
        levels in proptest::collection::vec(0u32..16, 8),
        dead in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let router = Router::new(algorithm).with_backend(backend);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        for &side in &sides {
            let graph = mesh_graph(side);
            let k = graph.node_count();
            let modules = module_stripes(k);
            let report = report_from(&levels, &dead, &[false], k);
            router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
            let fresh = router.compute(&graph, &modules, &report, None);
            prop_assert_eq!(&state, &fresh, "side {} backend {:?}", side, backend);
        }
    }

    /// Delta-aware recompute over a whole chain of random report diffs
    /// stays exactly equal (distances, successors, and tables) to a full
    /// recompute at every step.
    #[test]
    fn delta_recompute_equals_full_recompute(
        side in 2usize..8,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        levels in proptest::collection::vec(0u32..16, 8),
        dead in proptest::collection::vec(any::<bool>(), 5),
        diffs in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0usize..64, 0u32..32), 0..4),
            1..6
        ),
    ) {
        // Explicit Dijkstra backend so the delta path engages at every
        // mesh size, not just past the Auto crossover.
        let router = Router::new(algorithm).with_backend(PathBackend::DijkstraAllPairs);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut report = report_from(&levels, &dead, &[false], k);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        for ops in &diffs {
            let old_report = report.clone();
            let previous = state.clone();
            apply_diff(&mut report, ops);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            // Reference: full recompute with the previous state supplied
            // for deadlock-port avoidance, exactly as `compute` would.
            let reference = router.compute(&graph, &modules, &report, Some(&previous));
            prop_assert_eq!(&state, &reference, "side {} after ops {:?}", side, ops);
        }
    }

    /// Every [`RecomputeStrategy`] lands in **identical** routing state
    /// — distances *and* chosen successors — over chains of random
    /// drain/churn/scripted-failure mutations. The reference is a
    /// `Full`-strategy recompute of each frame.
    #[test]
    fn strategies_equal_full_over_drain_and_churn(
        side in 2usize..8,
        algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
        strategy in prop_oneof![
            Just(RecomputeStrategy::AffectedSources),
            Just(RecomputeStrategy::IncrementalRepair),
            Just(RecomputeStrategy::Auto),
        ],
        levels in proptest::collection::vec(0u32..16, 8),
        diffs in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0usize..64, 0u32..32), 0..4),
            1..6
        ),
    ) {
        // Explicit Dijkstra backend so the fast paths engage at every
        // mesh size, not just past the Auto crossover.
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(strategy);
        let reference_router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(RecomputeStrategy::Full);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut report = report_from(&levels, &[false], &[false], k);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        for ops in &diffs {
            let old_report = report.clone();
            let previous = state.clone();
            apply_diff(&mut report, ops);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            let reference = reference_router.compute(&graph, &modules, &report, Some(&previous));
            prop_assert_eq!(&state, &reference,
                "strategy {:?} side {} after ops {:?}", strategy, side, ops);
        }
        let stats = scratch.stats();
        prop_assert_eq!(
            stats.full_recomputes + stats.delta_recomputes + stats.repair_recomputes,
            1 + diffs.len() as u64,
            "every frame must be counted exactly once"
        );
    }

    /// The changed-bitset frame feed (`recompute_frame_into`) is
    /// byte-identical — distances, successors, *and* the phase-3 table —
    /// to the dense dirty-list feed (`recompute_dirty_into`) across
    /// chains of drain / churn / deadlock-raise-and-clear mutations,
    /// under every [`RecomputeStrategy`]. This is the property that
    /// makes the engine's `O(changed)` frame state safe to trust.
    #[test]
    fn bitset_frame_feed_equals_dirty_feed(
        side in 2usize..8,
        algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
        strategy in prop_oneof![
            Just(RecomputeStrategy::Full),
            Just(RecomputeStrategy::AffectedSources),
            Just(RecomputeStrategy::IncrementalRepair),
            Just(RecomputeStrategy::Auto),
        ],
        levels in proptest::collection::vec(0u32..16, 8),
        diffs in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0usize..64, 0u32..32), 0..4),
            1..6
        ),
    ) {
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(strategy);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut report = report_from(&levels, &[false], &[false], k);
        let mut a_scratch = RoutingScratch::new();
        let mut a_state = RoutingState::empty();
        let mut b_scratch = RoutingScratch::new();
        let mut b_state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut a_scratch, &mut a_state);
        router.compute_into(&graph, &modules, &report, None, &mut b_scratch, &mut b_state);

        let mut bits = NodeBitset::with_capacity(k);
        for ops in &diffs {
            let old_report = report.clone();
            apply_diff(&mut report, ops);
            // The engine's contract: the bitset holds exactly the nodes
            // whose battery bucket or liveness moved; deadlock presence
            // arrives as a cached aggregate.
            bits.clear();
            let mut dirty = Vec::new();
            let mut any_deadlock = false;
            for i in 0..k {
                let node = NodeId::new(i);
                if report.battery_level(node) != old_report.battery_level(node)
                    || report.is_alive(node) != old_report.is_alive(node)
                {
                    bits.insert(node);
                    dirty.push(node);
                }
                any_deadlock |= report.is_deadlocked(node);
            }
            router.recompute_dirty_into(
                &graph, &modules, &report, &dirty, &mut a_scratch, &mut a_state,
            );
            router.recompute_frame_into(
                &graph,
                &modules,
                &report,
                FrameDelta { changed: &bits, any_deadlock, placement_changed: false },
                &mut b_scratch,
                &mut b_state,
            );
            prop_assert_eq!(&a_state, &b_state,
                "strategy {:?} side {} after ops {:?}", strategy, side, ops);
        }
        // The frame feed may only ever *skip* node scans, never add any.
        prop_assert!(b_scratch.nodes_scanned() <= a_scratch.nodes_scanned());
    }

    /// The incremental repair stays exact when consecutive reports are
    /// built *independently* — including disconnect/reconnect
    /// transitions (nodes flipping dead→alive revive edges, weight
    /// decreases the repair's improvement pass patches in place) and
    /// mass changes that trip the combined-frontier fallback.
    #[test]
    fn repair_equals_full_across_disconnect_reconnect(
        side in 2usize..8,
        algorithm in prop_oneof![Just(Algorithm::Sdr), Just(Algorithm::Ear)],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..6
        ),
    ) {
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(RecomputeStrategy::IncrementalRepair);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = report_from(&frames[0].0, &frames[0].1, &[false], k);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        for (levels, dead) in &frames[1..] {
            let old_report = report;
            let previous = state.clone();
            report = report_from(levels, dead, &[false], k);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            let reference = router.compute(&graph, &modules, &report, Some(&previous));
            prop_assert_eq!(&state, &reference, "side {} frame levels {:?}", side, levels);
        }
    }

    /// Decrease-heavy chains — revive the dead at the ambient battery
    /// level (every restored edge exactly ties the uniform mesh around
    /// it), trickle-charge weak nodes, then disconnect again — are
    /// repaired **in place** on warm trees: bit-exact vs a `Full`
    /// reference (distances AND successors), with the decrease half
    /// engaged and zero per-source fallback re-runs. (Recharging a node
    /// that *carries* traffic strictly improves its whole shortest-path
    /// subtree, a legitimately large frontier the gate may decline —
    /// that regime rides through `strategies_equal_full_over_drain_and_churn`;
    /// this chain pins the regimes where repair must never fall back.)
    #[test]
    fn decrease_chains_repair_in_place_bit_exact(
        side in 5usize..8,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        victims in proptest::collection::vec(0usize..64, 1..3),
        pulses in proptest::collection::vec(0usize..64, 1..4),
    ) {
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(RecomputeStrategy::IncrementalRepair);
        let reference_router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(RecomputeStrategy::Full);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);
        let victims: Vec<usize> = victims.iter().map(|&v| v % k).collect();
        // Trickle targets: weak cells (level 1 in a level-7 fleet) carry
        // no through-traffic, so a +1 pulse improves only their own
        // distance — the harvesting regime this PR exists for.
        let pulses: Vec<usize> =
            pulses.iter().map(|&p| p % k).filter(|p| !victims.contains(p)).collect();

        let mut report = SystemReport::fresh(k, 16);
        for i in 0..k {
            report.set_battery_level(NodeId::new(i), 7);
        }
        for &p in &pulses {
            report.set_battery_level(NodeId::new(p), 1);
        }
        for &v in &victims {
            report.set_dead(NodeId::new(v));
        }
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        // Warmup: the first delta frame after a full recompute re-runs
        // every source once to record trees, and the change must be
        // structural so SDR (whose weights ignore batteries) sees a
        // non-empty delta stream. Blink one bystander dead and back so
        // the chain below runs entirely on warm trees in both
        // algorithms, from the exact pre-blink report.
        let warm = (0..k).find(|i| !victims.contains(i) && !pulses.contains(i)).unwrap();
        report.set_dead(NodeId::new(warm));
        router.recompute_dirty_into(
            &graph,
            &modules,
            &report,
            &[NodeId::new(warm)],
            &mut scratch,
            &mut state,
        );
        report.revive(NodeId::new(warm), 7);
        router.recompute_dirty_into(
            &graph,
            &modules,
            &report,
            &[NodeId::new(warm)],
            &mut scratch,
            &mut state,
        );
        let baseline = scratch.stats();

        // Frame 0: revive every victim at the ambient level (exact ties).
        // Frames 1..: one +1 trickle pulse per frame (strict decreases).
        // Last frame: disconnect the first victim again (pure increase).
        let mut frames: Vec<Vec<(usize, Option<u32>)>> = Vec::new();
        frames.push(victims.iter().map(|&v| (v, Some(7))).collect());
        for &p in &pulses {
            frames.push(vec![(p, Some(2))]);
        }
        frames.push(vec![(victims[0], None)]);

        let mut decreases_after_revival = 0;
        let mut fallbacks_after_revival = 0;
        let mut fallbacks_before_disconnect = 0;
        for (fi, frame) in frames.iter().enumerate() {
            let old_report = report.clone();
            let previous = state.clone();
            for &(node, level) in frame {
                let node = NodeId::new(node);
                match level {
                    Some(level) if report.is_alive(node) => report.set_battery_level(node, level),
                    Some(level) => report.revive(node, level),
                    None => report.set_dead(node),
                }
            }
            let dirty: Vec<NodeId> = (0..k)
                .map(NodeId::new)
                .filter(|&n| {
                    report.battery_level(n) != old_report.battery_level(n)
                        || report.is_alive(n) != old_report.is_alive(n)
                })
                .collect();
            router.recompute_dirty_into(&graph, &modules, &report, &dirty, &mut scratch, &mut state);
            let reference = reference_router.compute(&graph, &modules, &report, Some(&previous));
            prop_assert_eq!(&state, &reference, "frame {} of chain on side {}", fi, side);
            if fi == 0 {
                decreases_after_revival =
                    scratch.stats().decrease_repairs - baseline.decrease_repairs;
                fallbacks_after_revival = scratch.stats().fallback_sources;
                // Revival may re-run a *few* sources: the revived source
                // itself resettles its entire row, and a victim whose
                // death forced traffic through an expensive weak cell
                // reroutes a whole region on its return — in both cases
                // the frontier gate's decline is the cheap call. Repair
                // in place must still be the common case.
                let repaired_delta =
                    scratch.stats().repaired_sources - baseline.repaired_sources;
                prop_assert!(
                    repaired_delta > fallbacks_after_revival - baseline.fallback_sources,
                    "revival mostly fell back instead of repairing: {:?}",
                    scratch.stats()
                );
            }
            if fi + 2 == frames.len() {
                fallbacks_before_disconnect = scratch.stats().fallback_sources;
            }
        }
        let stats = scratch.stats();
        prop_assert!(decreases_after_revival > 0, "revival never engaged the decrease half");
        // Battery pulses only move EAR weights; under SDR the trickle
        // frames are no-op deltas by design.
        prop_assert!(
            algorithm == Algorithm::Sdr
                || pulses.is_empty()
                || stats.decrease_repairs - baseline.decrease_repairs > decreases_after_revival,
            "trickle pulses never engaged the decrease half: {:?}",
            stats
        );
        // Trickle frames must never fall back: warm trees absorb every
        // +1 pulse in place. (The final disconnect is the increase
        // half's regime — a newly dead source re-runs by design — so the
        // zero-fallback window closes just before it.)
        prop_assert_eq!(
            fallbacks_before_disconnect,
            fallbacks_after_revival,
            "warm trees must not fall back on trickle pulses: {:?}",
            stats
        );
        prop_assert_eq!(stats.repair_recomputes, (frames.len() + 2) as u64);
    }

    /// Delta recompute stays exact when consecutive reports are built
    /// *independently* — including nodes flipping dead→alive between
    /// frames — and under mass changes that trip the dirty-fraction
    /// fallback.
    #[test]
    fn delta_recompute_equals_full_across_independent_reports(
        side in 2usize..8,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..6
        ),
    ) {
        let router = Router::new(algorithm).with_backend(PathBackend::DijkstraAllPairs);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = report_from(&frames[0].0, &frames[0].1, &[false], k);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        for (levels, dead) in &frames[1..] {
            let old_report = report;
            let previous = state.clone();
            report = report_from(levels, dead, &[false], k);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            let reference = router.compute(&graph, &modules, &report, Some(&previous));
            prop_assert_eq!(&state, &reference, "side {} frame levels {:?}", side, levels);
        }
    }

    /// `PathBackend::Auto` agrees with both explicit backends on
    /// distances for arbitrary battery/death patterns (successor
    /// tie-breaking may differ between algorithms, distances may not).
    #[test]
    fn auto_matches_both_backends_on_distances(
        side in 2usize..9,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        levels in proptest::collection::vec(0u32..16, 8),
        dead in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);
        let report = report_from(&levels, &dead, &[false], k);
        let states: Vec<RoutingState> = [
            PathBackend::Auto,
            PathBackend::FloydWarshall,
            PathBackend::DijkstraAllPairs,
        ]
        .into_iter()
        .map(|backend| {
            Router::new(algorithm)
                .with_backend(backend)
                .compute(&graph, &modules, &report, None)
        })
        .collect();
        for i in 0..k {
            for j in 0..k {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                let auto = states[0].distance(a, b);
                let fw = states[1].distance(a, b);
                let dj = states[2].distance(a, b);
                match (auto, fw, dj) {
                    (Some(x), Some(y), Some(z)) => {
                        prop_assert!((x - y).abs() < 1e-9, "({i},{j}): auto={x} fw={y}");
                        prop_assert!((x - z).abs() < 1e-9, "({i},{j}): auto={x} dj={z}");
                    }
                    (None, None, None) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "({i},{j}): reachability disagrees: {other:?}"
                        )));
                    }
                }
            }
        }
    }

    /// The deadlock-avoidance phase behaves identically whether the
    /// previous tables arrive via `compute(previous)` or in place via
    /// `recompute_into` — exercised with deadlock flags set so the
    /// blocked-port scan actually runs.
    #[test]
    fn deadlock_ports_survive_in_place_recompute(
        side in 3usize..7,
        stuck in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let router = Router::new(Algorithm::Ear).with_backend(PathBackend::DijkstraAllPairs);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);
        let fresh = SystemReport::fresh(k, 16);

        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        router.compute_into(&graph, &modules, &fresh, None, &mut scratch, &mut state);
        let previous = state.clone();

        let mut flagged = fresh.clone();
        for i in 0..k {
            if stuck[i % stuck.len()] {
                flagged.set_deadlocked(NodeId::new(i), true);
            }
        }
        router.recompute_into(&graph, &modules, &fresh, &flagged, &mut scratch, &mut state);
        let reference = router.compute(&graph, &modules, &flagged, Some(&previous));
        prop_assert_eq!(&state, &reference);
    }
}
