//! Criterion bench for the Fig 8 experiment: controller-count sweeps with
//! battery-powered controller banks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etx::experiments::fig8;

const BENCH_BATTERY_PJ: f64 = 15_000.0;

fn bench_fig8(c: &mut Criterion) {
    let cells = fig8::run(&[4, 5], &[1, 2, 4], BENCH_BATTERY_PJ);
    println!("\nFig 8 (scaled to {BENCH_BATTERY_PJ} pJ/node):\n{}", fig8::render(&cells));

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for controllers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("controllers", controllers),
            &controllers,
            |b, &controllers| {
                b.iter(|| {
                    fig8::run(
                        std::hint::black_box(&[4]),
                        std::hint::black_box(&[controllers]),
                        BENCH_BATTERY_PJ,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
