//! Criterion bench for the Fig 7 experiment: EAR vs SDR simulation runs.
//!
//! Regenerate the full paper-scale figure with the `repro` binary; this
//! bench times scaled-down runs of the same pipeline (so `cargo bench`
//! stays tractable) and prints the resulting series once per session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etx::experiments::fig7;

/// Scaled battery budget: same physics, shorter lifetime.
const BENCH_BATTERY_PJ: f64 = 15_000.0;

fn bench_fig7(c: &mut Criterion) {
    // Print the series this bench regenerates (scaled).
    let rows = fig7::run(&[4, 5, 6], BENCH_BATTERY_PJ);
    println!("\nFig 7 (scaled to {BENCH_BATTERY_PJ} pJ/node):\n{}", fig7::render(&rows));

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for mesh in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("ear_vs_sdr", mesh), &mesh, |b, &mesh| {
            b.iter(|| fig7::run(std::hint::black_box(&[mesh]), BENCH_BATTERY_PJ));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
