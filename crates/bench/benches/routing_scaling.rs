//! Criterion bench for the routing kernels: the `O(K^3)` Floyd–Warshall
//! phase 2 and the full EAR three-phase recomputation, across the paper's
//! mesh sizes. This backs the paper's complexity claim that EAR/SDR are
//! "practical for graphs consisting of tens to a few hundreds of nodes".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etx::prelude::*;
use etx::graph::{dijkstra_all_pairs, floyd_warshall};

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_scaling");
    for side in [4usize, 6, 8, 12, 16] {
        let mesh = Mesh2D::square(side, Length::from_centimetres(2.05));
        let graph = mesh.to_graph();
        let k = graph.node_count();
        let report = SystemReport::fresh(k, 16);
        let modules = module_stripes(k);

        group.bench_with_input(BenchmarkId::new("floyd_warshall", k), &graph, |b, graph| {
            let weights = graph.weight_matrix(|e| e.length.centimetres());
            b.iter(|| floyd_warshall(std::hint::black_box(&weights)));
        });
        // The O(K·E log K) alternative phase-2 backend: on sparse meshes
        // it overtakes the O(K^3) Floyd-Warshall as K grows.
        group.bench_with_input(BenchmarkId::new("dijkstra_all_pairs", k), &graph, |b, graph| {
            let weights = graph.weight_matrix(|e| e.length.centimetres());
            b.iter(|| dijkstra_all_pairs(std::hint::black_box(&weights)));
        });
        group.bench_with_input(BenchmarkId::new("ear_full_recompute", k), &graph, |b, graph| {
            let router = Router::new(Algorithm::Ear);
            b.iter(|| {
                router.compute(
                    std::hint::black_box(graph),
                    std::hint::black_box(&modules),
                    std::hint::black_box(&report),
                    None,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
