//! Criterion bench for the routing kernels: the `O(K^3)` Floyd–Warshall
//! phase 2, the `O(K·E log K)` Dijkstra backend, the full EAR three-phase
//! recomputation under `PathBackend::Auto`, and the steady-state
//! scratch/delta recompute loop the simulator actually runs — across
//! mesh sizes from the paper's 4x4 up to 32x32 (K = 1024). This backs
//! both the paper's complexity claim ("practical for graphs consisting
//! of tens to a few hundreds of nodes") and the `Auto` crossover table
//! documented on `PathBackend`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etx::graph::{dijkstra_all_pairs, floyd_warshall, PathBackend};
use etx::prelude::*;
use etx::routing::{RoutingScratch, RoutingState};

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

/// Floyd–Warshall's `O(K³)` makes it pointless (minutes of bench time)
/// past this size; the Dijkstra backend and the recompute loop keep
/// scaling to 32x32.
const FLOYD_WARSHALL_MAX_NODES: usize = 576;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_scaling");
    group.sample_size(50);
    for side in [4usize, 6, 8, 12, 16, 24, 32] {
        let mesh = Mesh2D::square(side, Length::from_centimetres(2.05));
        let graph = mesh.to_graph();
        let k = graph.node_count();
        let report = SystemReport::fresh(k, 16);
        let modules = module_stripes(k);

        if k <= FLOYD_WARSHALL_MAX_NODES {
            group.bench_with_input(BenchmarkId::new("floyd_warshall", k), &graph, |b, graph| {
                let weights = graph.weight_matrix(|e| e.length.centimetres());
                b.iter(|| floyd_warshall(std::hint::black_box(&weights)));
            });
        }
        // The O(K·E log K) alternative phase-2 backend: on sparse meshes
        // it overtakes the O(K^3) Floyd-Warshall from K ≈ 16-36 on.
        group.bench_with_input(BenchmarkId::new("dijkstra_all_pairs", k), &graph, |b, graph| {
            let weights = graph.weight_matrix(|e| e.length.centimetres());
            b.iter(|| dijkstra_all_pairs(std::hint::black_box(&weights)));
        });
        // Full three-phase EAR recompute, fresh allocations, backend
        // picked by Auto — the seed's benchmark, now backend-aware.
        group.bench_with_input(BenchmarkId::new("ear_full_recompute", k), &graph, |b, graph| {
            let router = Router::new(Algorithm::Ear);
            b.iter(|| {
                router.compute(
                    std::hint::black_box(graph),
                    std::hint::black_box(&modules),
                    std::hint::black_box(&report),
                    None,
                )
            });
        });
        // Pinned Floyd-Warshall full recompute for an apples-to-apples
        // "what the seed paid" series at every size benched.
        if k <= FLOYD_WARSHALL_MAX_NODES {
            group.bench_with_input(
                BenchmarkId::new("ear_full_recompute_fw", k),
                &graph,
                |b, graph| {
                    let router =
                        Router::new(Algorithm::Ear).with_backend(PathBackend::FloydWarshall);
                    b.iter(|| {
                        router.compute(
                            std::hint::black_box(graph),
                            std::hint::black_box(&modules),
                            std::hint::black_box(&report),
                            None,
                        )
                    });
                },
            );
        }
        // The path the simulator runs every changed TDMA frame: in-place,
        // delta-aware, zero steady-state allocation. One battery bucket
        // drains per iteration (cycling over nodes), exactly like a
        // long-running simulation's report stream.
        group.bench_with_input(BenchmarkId::new("ear_delta_recompute", k), &graph, |b, graph| {
            let router = Router::new(Algorithm::Ear);
            let mut scratch = RoutingScratch::new();
            let mut state = RoutingState::empty();
            let mut current = SystemReport::fresh(k, 16);
            let mut old = SystemReport::fresh(0, 1);
            router.compute_into(graph, &modules, &current, None, &mut scratch, &mut state);
            let mut frame = 0usize;
            b.iter(|| {
                old.clone_from(&current);
                let node = NodeId::new((frame * 7 + 3) % k);
                let level = current.battery_level(node);
                current.set_battery_level(node, if level == 0 { 15 } else { level - 1 });
                frame += 1;
                router.recompute_into(
                    std::hint::black_box(graph),
                    &modules,
                    &old,
                    &current,
                    &mut scratch,
                    &mut state,
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
