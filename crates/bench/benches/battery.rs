//! Criterion bench for the Fig 2 battery models: discharge-curve lookups
//! and full discharge walks of the thin-film discrete-time model.

use criterion::{criterion_group, criterion_main, Criterion};
use etx::experiments::fig2;
use etx::prelude::*;

fn bench_battery(c: &mut Criterion) {
    let samples = fig2::run(60_000.0, 250.0);
    println!("\nFig 2 (thin-film discharge curve):\n{}", fig2::render(&samples, 12));

    let mut group = c.benchmark_group("battery");
    group.bench_function("curve_lookup", |b| {
        let curve = DischargeCurve::li_free_thin_film();
        let mut dod = 0.0f64;
        b.iter(|| {
            dod = (dod + 0.001) % 1.0;
            std::hint::black_box(curve.voltage_at(std::hint::black_box(dod)))
        });
    });
    group.bench_function("thin_film_full_discharge", |b| {
        b.iter(|| {
            let mut cell = ThinFilmBattery::new(Energy::from_picojoules(60_000.0));
            let op = Energy::from_picojoules(250.0);
            let mut draws = 0u32;
            while cell.draw(op).is_delivered() {
                cell.rest(Cycles::new(100));
                draws += 1;
            }
            std::hint::black_box(draws)
        });
    });
    group.bench_function("ideal_full_discharge", |b| {
        b.iter(|| {
            let mut cell = IdealBattery::new(Energy::from_picojoules(60_000.0));
            let op = Energy::from_picojoules(250.0);
            let mut draws = 0u32;
            while cell.draw(op).is_delivered() {
                draws += 1;
            }
            std::hint::black_box(draws)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_battery);
criterion_main!(benches);
