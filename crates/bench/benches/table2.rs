//! Criterion bench for the Table 2 experiment: simulated EAR (ideal
//! batteries) against the Theorem-1 analytical bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etx::experiments::table2;
use etx::prelude::*;

const BENCH_BATTERY_PJ: f64 = 15_000.0;

fn bench_table2(c: &mut Criterion) {
    let rows = table2::run(&[4, 5], BENCH_BATTERY_PJ);
    println!("\nTable 2 (scaled to {BENCH_BATTERY_PJ} pJ/node):\n{}", table2::render(&rows));

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("simulate", 4), &4usize, |b, &mesh| {
        b.iter(|| table2::run(std::hint::black_box(&[mesh]), BENCH_BATTERY_PJ));
    });
    // The closed-form side on its own is effectively free; keep it
    // measured so regressions in the bound path are visible.
    group.bench_function("theorem1_closed_form", |b| {
        let inputs = BoundInputs::uniform_comm(&AppSpec::aes(), Energy::from_picojoules(116.71));
        b.iter(|| {
            upper_bound(std::hint::black_box(&inputs), Energy::from_picojoules(60_000.0), 64)
                .expect("valid inputs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
