//! Shared helpers for the `etx-bench` harness.
//!
//! The real content of this crate is its binaries and benches:
//!
//! * `repro` — regenerates every table and figure of the paper
//!   (`cargo run -p etx-bench --bin repro --release -- --exp all`);
//! * Criterion benches `fig7`, `table2`, `fig8`, `battery`,
//!   `routing_scaling` — timing harnesses for the same experiments plus
//!   the simulator's computational kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Experiments the `repro` binary can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Fig 2: thin-film discharge curve.
    Fig2,
    /// Fig 7: EAR vs SDR + overhead percentages.
    Fig7,
    /// Table 2: EAR vs the Theorem-1 bound.
    Table2,
    /// Fig 8: controller-count sweep.
    Fig8,
    /// Theorem 1 closed form vs allocations.
    Theorem1,
    /// Concurrency / deadlock recovery.
    Concurrent,
    /// Q-exponent ablation.
    AblateQ,
    /// Mapping-strategy ablation.
    AblateMapping,
    /// Battery-model ablation.
    AblateBattery,
    /// Battery-quantization ablation.
    AblateLevels,
    /// Interconnect-topology ablation.
    AblateTopology,
    /// Remapping (code-migration) extension ablation.
    AblateRemap,
}

impl Experiment {
    /// All experiments in report order.
    pub const ALL: [Experiment; 12] = [
        Experiment::Fig2,
        Experiment::Fig7,
        Experiment::Table2,
        Experiment::Fig8,
        Experiment::Theorem1,
        Experiment::Concurrent,
        Experiment::AblateQ,
        Experiment::AblateMapping,
        Experiment::AblateBattery,
        Experiment::AblateLevels,
        Experiment::AblateTopology,
        Experiment::AblateRemap,
    ];

    /// Parses a CLI name like `fig7` or `ablate-q`.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "fig2" => Some(Experiment::Fig2),
            "fig7" => Some(Experiment::Fig7),
            "table2" => Some(Experiment::Table2),
            "fig8" => Some(Experiment::Fig8),
            "theorem1" => Some(Experiment::Theorem1),
            "concurrent" => Some(Experiment::Concurrent),
            "ablate-q" => Some(Experiment::AblateQ),
            "ablate-mapping" => Some(Experiment::AblateMapping),
            "ablate-battery" => Some(Experiment::AblateBattery),
            "ablate-levels" => Some(Experiment::AblateLevels),
            "ablate-topology" => Some(Experiment::AblateTopology),
            "ablate-remap" => Some(Experiment::AblateRemap),
            _ => None,
        }
    }

    /// The CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Fig2 => "fig2",
            Experiment::Fig7 => "fig7",
            Experiment::Table2 => "table2",
            Experiment::Fig8 => "fig8",
            Experiment::Theorem1 => "theorem1",
            Experiment::Concurrent => "concurrent",
            Experiment::AblateQ => "ablate-q",
            Experiment::AblateMapping => "ablate-mapping",
            Experiment::AblateBattery => "ablate-battery",
            Experiment::AblateLevels => "ablate-levels",
            Experiment::AblateTopology => "ablate-topology",
            Experiment::AblateRemap => "ablate-remap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for exp in Experiment::ALL {
            assert_eq!(Experiment::parse(exp.name()), Some(exp));
        }
        assert_eq!(Experiment::parse("FIG7"), Some(Experiment::Fig7));
        assert_eq!(Experiment::parse("nope"), None);
    }
}
