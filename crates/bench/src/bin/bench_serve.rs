//! `bench_serve` — emits `BENCH_serve.json`, the machine-readable perf
//! baseline of the read-side query service: sustained queries/second
//! plus HDR tail-latency percentiles (p50/p99/p999) against warm,
//! epoch-published fleet snapshots.
//!
//! ```text
//! cargo run -p etx-bench --bin bench_serve --release              # writes ./BENCH_serve.json
//! cargo run -p etx-bench --bin bench_serve --release -- out.json
//! cargo run -p etx-bench --bin bench_serve --release -- --smoke   # tiny CI sizes
//! cargo run -p etx-bench --bin bench_serve --release -- \
//!     --dump out.txt --shards 4 --strategy incremental            # determinism dump
//! ```
//!
//! Workloads:
//!
//! * `point_32x32` — pure next-hop point lookups on a warm
//!   32x32-fabric fleet (the ≥ 1M queries/sec acceptance metric),
//! * `mixed_32x32` — the 8:1:1 point/path/cost mix on the same fleet,
//! * `point_wide_fleet` — point lookups hash-sharded over hundreds of
//!   small fabrics,
//! * `open_loop_32x32` — point lookups arriving on a fixed schedule at
//!   ~60 % of the measured closed-loop rate, so the tail includes real
//!   queueing delay.
//!
//! `--dump` renders every query's resolved answer as text: CI diffs the
//! output across shard counts and across `full` vs `incremental`
//! recompute strategies (published snapshots must be byte-identical).

use std::fmt::Write as _;

use etx::fleet::ScenarioSpec;
use etx::routing::RecomputeStrategy;
use etx::serve::{
    run_load, FleetFrontend, LoadMode, LoadReport, QueryBatch, QueryOutput, QueryResult,
    WorkloadGen, WorkloadSpec,
};

/// A single-topology spec: `count` fabrics of `side`x`side` meshes under
/// EAR, fixed TDMA/battery scales so the warm-up drains visibly.
fn fleet_spec(side: usize, count: usize, strategy: RecomputeStrategy) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("serve-{side}x{side}"),
        seed: 2005,
        instances: count,
        mesh_side: (side, side),
        topologies: vec![etx::fleet::TopologyChoice::Mesh],
        algorithms: vec![etx::routing::Algorithm::Ear],
        strategy,
        battery_models: vec![etx::fleet::BatteryChoice::Ideal],
        battery_pj: (40_000.0, 60_000.0),
        heterogeneity: 0.2,
        churn: (0, 0),
        concurrent_jobs: (2, 4),
        broadcast_fraction: 0.0,
        max_cycles: 10_000_000,
        ..ScenarioSpec::default()
    }
}

struct Point {
    workload: &'static str,
    fabrics: usize,
    mesh: String,
    report: LoadReport,
}

fn describe(point: &Point) {
    let r = &point.report;
    eprintln!(
        "{:<16} ({} fabrics, {}): {:>9.0} q/s over {:>8} queries; \
         latency ns p50 {:>6} p99 {:>7} p999 {:>8}",
        point.workload,
        point.fabrics,
        point.mesh,
        r.qps,
        r.queries,
        r.latency_ns(0.50),
        r.latency_ns(0.99),
        r.latency_ns(0.999),
    );
}

fn bench(smoke: bool, out_path: &str) {
    let (side, big_count, wide_side, wide_count, warm, target) = if smoke {
        (8usize, 2usize, 4usize, 16usize, 4_000u64, 50_000u64)
    } else {
        (32, 4, 4, 256, 8_000, 4_000_000)
    };

    eprintln!("building {big_count}x {side}x{side} fleet (warm {warm} cycles each)...");
    let big =
        FleetFrontend::from_spec(&fleet_spec(side, big_count, RecomputeStrategy::Auto), warm, 4)
            .expect("serve spec is valid");
    eprintln!("building {wide_count}x {wide_side}x{wide_side} wide fleet...");
    let wide = FleetFrontend::from_spec(
        &fleet_spec(wide_side, wide_count, RecomputeStrategy::Auto),
        warm,
        8,
    )
    .expect("serve spec is valid");

    let mut points = Vec::new();

    let point_spec = WorkloadSpec { batch: 2_048, ..WorkloadSpec::point_lookups() };
    let closed =
        run_load(&big, &mut WorkloadGen::new(point_spec.clone()), LoadMode::Closed, target);
    let closed_qps = closed.qps;
    points.push(Point {
        workload: "point_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: closed,
    });

    let mixed_spec = WorkloadSpec { batch: 2_048, ..WorkloadSpec::default() };
    points.push(Point {
        workload: "mixed_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: run_load(&big, &mut WorkloadGen::new(mixed_spec), LoadMode::Closed, target / 2),
    });

    points.push(Point {
        workload: "point_wide_fleet",
        fabrics: wide.fabric_count(),
        mesh: format!("{wide_side}x{wide_side}"),
        report: run_load(
            &wide,
            &mut WorkloadGen::new(point_spec.clone()),
            LoadMode::Closed,
            target / 2,
        ),
    });

    points.push(Point {
        workload: "open_loop_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: run_load(
            &big,
            &mut WorkloadGen::new(point_spec),
            LoadMode::Open { rate_qps: closed_qps * 0.6 },
            target / 4,
        ),
    });

    for point in &points {
        describe(point);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve_query_throughput\",\n");
    json.push_str("  \"command\": \"cargo run -p etx-bench --bin bench_serve --release\",\n");
    json.push_str(
        "  \"units\": \"queries per second (single core) and nanoseconds of per-query latency\",\n",
    );
    json.push_str(
        "  \"workload\": \"epoch-published fleet snapshots; batched (2048) queries sorted by \
         (shard, fabric, source); SplitMix64 workload streams\",\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"fabrics\": {}, \"mesh\": \"{}\", \"queries\": {}, \
             \"wall_seconds\": {:.3}, \"qps\": {:.0}, \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p999\": {}, \"max\": {}}}}}{}",
            p.workload,
            p.fabrics,
            p.mesh,
            r.queries,
            r.wall_seconds,
            r.qps,
            r.latency_ns(0.50),
            r.latency_ns(0.90),
            r.latency_ns(0.99),
            r.latency_ns(0.999),
            r.latency_ns(1.0),
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

/// Determinism mode: a fixed fleet + fixed workload, every resolved
/// answer rendered as one line. Byte-identical across `--shards` values
/// and across `--strategy full|incremental` (published snapshots carry
/// no trace of how phase 2/3 were computed).
fn dump(path: &str, shards: usize, strategy: RecomputeStrategy) {
    let spec = fleet_spec(8, 6, strategy);
    let frontend = FleetFrontend::from_spec(&spec, 4_000, shards).expect("dump spec is valid");
    let mut generator =
        WorkloadGen::new(WorkloadSpec { seed: 77, batch: 512, ..WorkloadSpec::default() });
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut text = String::new();
    for round in 0..3 {
        generator.fill(&frontend, &mut batch);
        frontend.execute(&mut batch, &mut out);
        for (query, result) in batch.queries().iter().zip(out.results()) {
            let _ = write!(text, "round {round} {query:?} => ");
            match result {
                QueryResult::Path { entry, .. } => {
                    let _ = writeln!(text, "Path {entry:?} via {:?}", out.path_nodes(result));
                }
                other => {
                    let _ = writeln!(text, "{other:?}");
                }
            }
        }
    }
    std::fs::write(path, &text).expect("write dump");
    eprintln!("wrote {path} ({} lines)", 3 * 512);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut dump_path: Option<String> = None;
    let mut shards = 2usize;
    let mut strategy = RecomputeStrategy::Auto;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--dump" => dump_path = Some(it.next().expect("--dump needs a path")),
            "--shards" => {
                shards = it.next().and_then(|v| v.parse().ok()).expect("--shards needs a count");
            }
            "--strategy" => {
                let name = it.next().expect("--strategy needs a name");
                strategy = RecomputeStrategy::parse(&name)
                    .unwrap_or_else(|| panic!("unknown strategy `{name}`"));
            }
            other if !other.starts_with("--") => out_path = Some(other.to_string()),
            other => panic!("unknown flag `{other}`"),
        }
    }
    if let Some(path) = dump_path {
        dump(&path, shards, strategy);
    } else {
        bench(smoke, &out_path.unwrap_or_else(|| "BENCH_serve.json".to_string()));
    }
}
