//! `bench_serve` — emits `BENCH_serve.json`, the machine-readable perf
//! baseline of the read-side query service: sustained queries/second
//! plus HDR tail-latency percentiles (p50/p99/p999) against warm,
//! epoch-published fleet snapshots.
//!
//! ```text
//! cargo run -p etx-bench --bin bench_serve --release              # writes ./BENCH_serve.json
//! cargo run -p etx-bench --bin bench_serve --release -- out.json
//! cargo run -p etx-bench --bin bench_serve --release -- --smoke   # tiny CI sizes
//! cargo run -p etx-bench --bin bench_serve --release -- \
//!     --dump out.txt --shards 4 --strategy incremental            # determinism dump
//! ```
//!
//! Workloads:
//!
//! * `point_32x32` — pure next-hop point lookups on a warm
//!   32x32-fabric fleet (the ≥ 1M queries/sec acceptance metric),
//! * `mixed_32x32` — the 8:1:1 point/path/cost mix on the same fleet,
//! * `point_wide_fleet` — point lookups hash-sharded over hundreds of
//!   small fabrics,
//! * `open_loop_32x32` — point lookups arriving on a fixed schedule at
//!   ~60 % of the measured closed-loop rate, so the tail includes real
//!   queueing delay.
//!
//! The `daemon` block runs the same point-lookup stream **through the
//! `etx-served` TCP daemon over loopback** — closed-loop wire
//! throughput, open-loop tail latency at 60 % load, and a degradation
//! sweep past saturation where the bounded shard queues shed instead
//! of queueing without bound.
//!
//! `--dump` renders every query's resolved answer as text: CI diffs the
//! output across shard counts, across `full` vs `incremental` recompute
//! strategies, and across `--layout soa|aos` execution paths (published
//! snapshots and both layouts must be byte-identical).
//!
//! The `layout` block of the JSON interleaves the struct-of-arrays
//! planes against the [`AosFrontend`] array-of-structs mirror **in one
//! process** (alternating reps, min-over-reps ns/query, identical
//! deterministic batch streams), so the reported speedup is immune to
//! box-to-box and minute-to-minute drift.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use etx::fleet::ScenarioSpec;
use etx::graph::{topology::Mesh2D, NodeId};
use etx::metrics::{CounterId, MetricsHandle, Registry, SpanId};
use etx::routing::{Algorithm, RecomputeStrategy, Router, SystemReport};
use etx::serve::{
    run_load, run_wire_load, AosFrontend, EpochPublisher, FleetFrontend, LoadMode, LoadReport,
    QueryBatch, QueryOutput, QueryResult, Served, ServedConfig, WireLoadReport, WorkloadGen,
    WorkloadSpec,
};
use etx::units::Length;

/// A single-topology spec: `count` fabrics of `side`x`side` meshes under
/// EAR, fixed TDMA/battery scales so the warm-up drains visibly.
fn fleet_spec(side: usize, count: usize, strategy: RecomputeStrategy) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("serve-{side}x{side}"),
        seed: 2005,
        instances: count,
        mesh_side: (side, side),
        topologies: vec![etx::fleet::TopologyChoice::Mesh],
        algorithms: vec![etx::routing::Algorithm::Ear],
        strategy,
        battery_models: vec![etx::fleet::BatteryChoice::Ideal],
        battery_pj: (40_000.0, 60_000.0),
        heterogeneity: 0.2,
        churn: (0, 0),
        concurrent_jobs: (2, 4),
        broadcast_fraction: 0.0,
        max_cycles: 10_000_000,
        ..ScenarioSpec::default()
    }
}

struct Point {
    workload: &'static str,
    fabrics: usize,
    mesh: String,
    report: LoadReport,
}

fn describe(point: &Point) {
    let r = &point.report;
    eprintln!(
        "{:<16} ({} fabrics, {}): {:>9.0} q/s over {:>8} queries; \
         latency ns p50 {:>6} p99 {:>7} p999 {:>8}",
        point.workload,
        point.fabrics,
        point.mesh,
        r.qps,
        r.queries,
        r.latency_ns(0.50),
        r.latency_ns(0.99),
        r.latency_ns(0.999),
    );
}

/// Per-query nanoseconds for one layout over `batches` deterministic
/// batches (execute time only; generation excluded). The first batch
/// warms every buffer and is not timed.
fn timed_pass(
    frontend: &FleetFrontend,
    aos: Option<&AosFrontend>,
    spec: &WorkloadSpec,
    batches: u64,
) -> f64 {
    let mut generator = WorkloadGen::new(spec.clone());
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let run = |batch: &mut QueryBatch, out: &mut QueryOutput| match aos {
        Some(aos) => aos.execute(batch, out),
        None => frontend.execute(batch, out),
    };
    generator.fill(frontend, &mut batch);
    run(&mut batch, &mut out);
    let mut queries = 0u64;
    let mut nanos = 0u128;
    for _ in 0..batches {
        generator.fill(frontend, &mut batch);
        let start = Instant::now();
        run(&mut batch, &mut out);
        nanos += start.elapsed().as_nanos();
        queries += batch.len() as u64;
    }
    nanos as f64 / queries as f64
}

/// One lane's interleaved AoS-vs-SoA comparison: alternating rep order,
/// min-over-reps ns/query for each layout. Both layouts replay the same
/// SplitMix64 batch stream, so they execute identical queries.
fn interleaved_lane(
    frontend: &FleetFrontend,
    aos: &AosFrontend,
    spec: &WorkloadSpec,
    reps: u32,
    batches: u64,
) -> (f64, f64) {
    let (mut best_soa, mut best_aos) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..reps {
        let order: [Option<&AosFrontend>; 2] =
            if rep % 2 == 0 { [None, Some(aos)] } else { [Some(aos), None] };
        for layout in order {
            let ns = timed_pass(frontend, layout, spec, batches);
            match layout {
                None => best_soa = best_soa.min(ns),
                Some(_) => best_aos = best_aos.min(ns),
            }
        }
    }
    (best_soa, best_aos)
}

/// In-process differential check: the SoA lane-split execution and the
/// AoS mirror must resolve identical answers (and identical path node
/// sequences) for identical batches.
fn assert_layouts_agree(frontend: &FleetFrontend, aos: &AosFrontend, spec: &WorkloadSpec) {
    let mut soa_gen = WorkloadGen::new(spec.clone());
    let mut aos_gen = WorkloadGen::new(spec.clone());
    let (mut soa_batch, mut aos_batch) = (QueryBatch::new(), QueryBatch::new());
    let (mut soa_out, mut aos_out) = (QueryOutput::new(), QueryOutput::new());
    for round in 0..3 {
        soa_gen.fill(frontend, &mut soa_batch);
        aos_gen.fill(frontend, &mut aos_batch);
        assert_eq!(soa_batch.queries(), aos_batch.queries(), "batch streams diverged");
        frontend.execute(&mut soa_batch, &mut soa_out);
        aos.execute(&mut aos_batch, &mut aos_out);
        assert_eq!(
            soa_out.results(),
            aos_out.results(),
            "SoA and AoS layouts disagree (round {round})"
        );
        for (s, a) in soa_out.results().iter().zip(aos_out.results()) {
            assert_eq!(soa_out.path_nodes(s), aos_out.path_nodes(a), "path arenas diverged");
        }
    }
}

struct LayoutStats {
    next_hop: (f64, f64),
    cost: (f64, f64),
    path: (f64, f64),
    mixed: (f64, f64),
}

/// One module-dense fabric registered directly from a fresh router
/// compute: `side*side` nodes striped into `modules` modules, so the
/// phase-3 table has `n * modules` entries — the serving regime where
/// the table exceeds cache and layout decides the memory traffic
/// (32 B/lookup AoS vs 12 B + 1 bit across the planes). A single fabric
/// also takes the batch fast path, so lookups arrive in submission
/// (i.e. random) order and neither layout gets sorted-sweep prefetch
/// help.
fn layout_frontend(side: usize, modules: usize) -> FleetFrontend {
    let graph = Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph();
    let k = graph.node_count();
    let stripes: Vec<Vec<NodeId>> =
        (0..modules).map(|m| (m..k).step_by(modules).map(NodeId::new).collect()).collect();
    let report = SystemReport::fresh(k, 16);
    let state = Router::new(Algorithm::Ear).compute(&graph, &stripes, &report, None);
    let (mut publisher, reader) = EpochPublisher::new();
    publisher.publish(&state);
    let mut frontend = FleetFrontend::new(1);
    frontend.register(reader, k, stripes.len());
    frontend
}

/// The layout shoot-out: one AoS mirror of the same published
/// snapshots, each query-type lane timed in isolation plus the 8:1:1
/// mix, everything interleaved in this very process.
fn measure_layout(smoke: bool) -> LayoutStats {
    let (side, modules) = if smoke { (8, 16) } else { (32, 512) };
    let frontend = &layout_frontend(side, modules);
    let aos = AosFrontend::mirror(frontend);
    let (reps, batches) = if smoke { (3u32, 8u64) } else { (5, 48) };
    let batch = |spec: WorkloadSpec| WorkloadSpec { batch: 2_048, ..spec };
    let lanes = [
        ("next_hop", batch(WorkloadSpec::point_lookups())),
        ("cost", batch(WorkloadSpec::path_costs())),
        ("path", batch(WorkloadSpec::full_paths())),
        ("mixed", batch(WorkloadSpec::default())),
    ];
    assert_layouts_agree(frontend, &aos, &lanes[3].1);
    let mut timings = [(0.0, 0.0); 4];
    for (slot, (name, spec)) in timings.iter_mut().zip(&lanes) {
        *slot = interleaved_lane(frontend, &aos, spec, reps, batches);
        eprintln!(
            "layout {name:<9}: SoA {:>7.1} ns/q, AoS {:>7.1} ns/q ({:.2}x)",
            slot.0,
            slot.1,
            slot.1 / slot.0
        );
    }
    LayoutStats { next_hop: timings[0], cost: timings[1], path: timings[2], mixed: timings[3] }
}

struct DaemonStats {
    closed: WireLoadReport,
    capacity: WireLoadReport,
    open_60: WireLoadReport,
    degradation: Vec<(f64, WireLoadReport)>,
}

/// The end-to-end wire benchmark: one `etx-served` shard on an
/// ephemeral loopback port, driven by [`run_wire_load`] with the same
/// point-lookup stream the in-process workloads use. Closed loop
/// measures raw per-core wire throughput; the open-loop points replay
/// a paced arrival schedule so the percentiles include real queueing
/// delay — including past saturation, where the bounded shard queue
/// sheds and the tail must stay bounded instead of diverging.
fn measure_daemon(side: usize, count: usize, warm: u64, target: u64) -> DaemonStats {
    eprintln!("starting etx-served ({count}x {side}x{side}, 1 shard, loopback)...");
    let mut config = ServedConfig::new(fleet_spec(side, count, RecomputeStrategy::Auto));
    config.warm_cycles = Some(warm);
    config.shards = 1;
    // Small enough that the degradation sweep actually fills it and
    // sheds; big enough that 60 % load never touches it.
    config.queue_capacity = 16;
    let served = Served::start(config).expect("daemon starts");
    let addr = served.addr();

    let spec = WorkloadSpec { batch: 2_048, ..WorkloadSpec::point_lookups() };
    let closed = run_wire_load(addr, &spec, LoadMode::Closed, target).expect("closed wire load");
    eprintln!(
        "daemon closed     : {:>9.0} q/s over {:>8} queries; p50 {:>6} p99 {:>7}",
        closed.qps,
        closed.queries,
        closed.latency_ns(0.50),
        closed.latency_ns(0.99),
    );

    // Open-loop pacing uses finer batches: a 2048-query frame is
    // itself ~0.2 ms of service, which would quantize every latency
    // sample; 256 keeps the arrival schedule and the queueing delay
    // resolution well under the tail we are trying to measure. The
    // load factors are relative to the capacity *at that batch size*
    // (smaller frames amortize less per-frame overhead), so "60 %"
    // means 60 % of what this exact stream can sustain.
    let open_spec = WorkloadSpec { batch: 256, ..WorkloadSpec::point_lookups() };
    let capacity =
        run_wire_load(addr, &open_spec, LoadMode::Closed, target / 4).expect("capacity wire load");
    // Single-vCPU hosts get multi-millisecond hypervisor steal pauses
    // that land verbatim in an open-loop tail; like the layout lanes,
    // every open point takes the best of a few reps (selected by p99)
    // so the report measures the daemon, not the neighbour's VM.
    let best_of = |reps: u32, run: &dyn Fn() -> WireLoadReport| {
        let mut best: Option<WireLoadReport> = None;
        for _ in 0..reps {
            let report = run();
            let better = match &best {
                None => true,
                Some(b) => report.latency_ns(0.99) < b.latency_ns(0.99),
            };
            if better {
                best = Some(report);
            }
        }
        best.expect("at least one rep")
    };
    let open_60 = best_of(3, &|| {
        run_wire_load(addr, &open_spec, LoadMode::Open { rate_qps: capacity.qps * 0.6 }, target / 4)
            .expect("open wire load")
    });
    eprintln!(
        "daemon open 60%   : {:>9.0} q/s offered; p50 {:>6} p99 {:>7} shed {:.4}",
        open_60.offered_qps,
        open_60.latency_ns(0.50),
        open_60.latency_ns(0.99),
        open_60.shed_fraction(),
    );

    let mut degradation = Vec::new();
    for factor in [0.9, 1.2, 1.5] {
        let report = best_of(2, &|| {
            run_wire_load(
                addr,
                &open_spec,
                LoadMode::Open { rate_qps: capacity.qps * factor },
                (target / 4).max(open_spec.batch as u64 * 64),
            )
            .expect("degradation wire load")
        });
        eprintln!(
            "daemon open {factor:.1}x  : served {:>9.0} q/s; p99 {:>9} shed {:.4}",
            report.qps,
            report.latency_ns(0.99),
            report.shed_fraction(),
        );
        degradation.push((factor, report));
    }

    DaemonStats { closed, capacity, open_60, degradation }
}

fn bench(smoke: bool, out_path: &str) {
    let (side, big_count, wide_side, wide_count, warm, target) = if smoke {
        (8usize, 2usize, 4usize, 16usize, 4_000u64, 50_000u64)
    } else {
        (32, 4, 4, 256, 8_000, 4_000_000)
    };

    // One full registry across both frontends: the load loops below
    // fill the batch counters and the per-lane latency histograms,
    // which the `metrics` JSON block reports at the end.
    let metrics = MetricsHandle::new(Arc::new(Registry::full()));
    eprintln!("building {big_count}x {side}x{side} fleet (warm {warm} cycles each)...");
    let big =
        FleetFrontend::from_spec(&fleet_spec(side, big_count, RecomputeStrategy::Auto), warm, 4)
            .expect("serve spec is valid")
            .with_metrics(metrics.clone());
    eprintln!("building {wide_count}x {wide_side}x{wide_side} wide fleet...");
    let wide = FleetFrontend::from_spec(
        &fleet_spec(wide_side, wide_count, RecomputeStrategy::Auto),
        warm,
        8,
    )
    .expect("serve spec is valid")
    .with_metrics(metrics.clone());

    let mut points = Vec::new();

    let point_spec = WorkloadSpec { batch: 2_048, ..WorkloadSpec::point_lookups() };
    let closed =
        run_load(&big, &mut WorkloadGen::new(point_spec.clone()), LoadMode::Closed, target);
    let closed_qps = closed.qps;
    points.push(Point {
        workload: "point_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: closed,
    });

    let mixed_spec = WorkloadSpec { batch: 2_048, ..WorkloadSpec::default() };
    points.push(Point {
        workload: "mixed_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: run_load(&big, &mut WorkloadGen::new(mixed_spec), LoadMode::Closed, target / 2),
    });

    points.push(Point {
        workload: "point_wide_fleet",
        fabrics: wide.fabric_count(),
        mesh: format!("{wide_side}x{wide_side}"),
        report: run_load(
            &wide,
            &mut WorkloadGen::new(point_spec.clone()),
            LoadMode::Closed,
            target / 2,
        ),
    });

    points.push(Point {
        workload: "open_loop_32x32",
        fabrics: big.fabric_count(),
        mesh: format!("{side}x{side}"),
        report: run_load(
            &big,
            &mut WorkloadGen::new(point_spec),
            LoadMode::Open { rate_qps: closed_qps * 0.6 },
            target / 4,
        ),
    });

    for point in &points {
        describe(point);
    }

    eprintln!("interleaving SoA planes vs AoS mirror on a module-dense fabric...");
    let layout = measure_layout(smoke);

    let daemon = measure_daemon(side, big_count, warm, target);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve_query_throughput\",\n");
    json.push_str("  \"command\": \"cargo run -p etx-bench --bin bench_serve --release\",\n");
    json.push_str(
        "  \"units\": \"queries per second (single core) and nanoseconds of per-query latency\",\n",
    );
    json.push_str(
        "  \"workload\": \"epoch-published fleet snapshots; batched (2048) queries sorted by \
         (shard, fabric, source); SplitMix64 workload streams\",\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"fabrics\": {}, \"mesh\": \"{}\", \"queries\": {}, \
             \"wall_seconds\": {:.3}, \"qps\": {:.0}, \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p999\": {}, \"max\": {}}}}}{}",
            p.workload,
            p.fabrics,
            p.mesh,
            r.queries,
            r.wall_seconds,
            r.qps,
            r.latency_ns(0.50),
            r.latency_ns(0.90),
            r.latency_ns(0.99),
            r.latency_ns(0.999),
            r.latency_ns(1.0),
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    // The registry's view of everything the load loops above executed:
    // batch counters plus per-lane latency percentiles (each lane pass
    // timed once, elapsed divided over its queries).
    let snap = metrics.snapshot();
    let lane_q = |id: SpanId, q: f64| snap.span(id).map_or(0, |h| h.quantile_raw(q));
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"serve_batches\": {}, \"queries_next_hop\": {}, \
         \"queries_cost\": {}, \"queries_path\": {}, \
         \"lane_next_hop_p50_ns\": {}, \"lane_next_hop_p999_ns\": {}, \
         \"lane_cost_p50_ns\": {}, \"lane_path_p50_ns\": {}}},",
        snap.counter(CounterId::ServeBatches),
        snap.counter(CounterId::ServeQueriesNextHop),
        snap.counter(CounterId::ServeQueriesCost),
        snap.counter(CounterId::ServeQueriesPath),
        lane_q(SpanId::ServeLatencyNextHop, 0.50),
        lane_q(SpanId::ServeLatencyNextHop, 0.999),
        lane_q(SpanId::ServeLatencyCost, 0.50),
        lane_q(SpanId::ServeLatencyPath, 0.50),
    );
    json.push_str("  \"layout\": {\n");
    json.push_str(
        "    \"method\": \"AoS mirror vs SoA planes interleaved in one process; \
         alternating reps, min-over-reps ns/query, identical batch streams\",\n",
    );
    let _ = writeln!(
        json,
        "    \"next_hop_lane_ns\": {:.1}, \"cost_lane_ns\": {:.1}, \"path_lane_ns\": {:.1}, \
         \"mixed_lane_ns\": {:.1},",
        layout.next_hop.0, layout.cost.0, layout.path.0, layout.mixed.0
    );
    let _ = writeln!(
        json,
        "    \"aos_next_hop_ns\": {:.1}, \"aos_cost_ns\": {:.1}, \"aos_path_ns\": {:.1}, \
         \"aos_mixed_ns\": {:.1},",
        layout.next_hop.1, layout.cost.1, layout.path.1, layout.mixed.1
    );
    let _ = writeln!(
        json,
        "    \"layout_speedup\": {:.2}, \"mixed_speedup\": {:.2}",
        layout.next_hop.1 / layout.next_hop.0,
        layout.mixed.1 / layout.mixed.0
    );
    json.push_str("  },\n");
    json.push_str("  \"daemon\": {\n");
    json.push_str(
        "    \"transport\": \"etx-served over loopback TCP; 1 shard (per-core figure); \
         closed loop on 2048-query frames, open loop paced on 256-query frames at factors \
         of the same-size closed capacity; open points are min-over-reps by p99 (steal-prone \
         single-vCPU host); bounded queue sheds past saturation\",\n",
    );
    let _ = writeln!(
        json,
        "    \"daemon_closed_qps\": {:.0}, \"closed_p50_ns\": {}, \"closed_p99_ns\": {}, \
         \"open_capacity_qps\": {:.0},",
        daemon.closed.qps,
        daemon.closed.latency_ns(0.50),
        daemon.closed.latency_ns(0.99),
        daemon.capacity.qps,
    );
    let o = &daemon.open_60;
    let _ = writeln!(
        json,
        "    \"open_60\": {{\"offered_qps\": {:.0}, \"qps\": {:.0}, \"p50_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"shed_fraction\": {:.4}}},",
        o.offered_qps,
        o.qps,
        o.latency_ns(0.50),
        o.latency_ns(0.99),
        o.latency_ns(0.999),
        o.shed_fraction(),
    );
    json.push_str("    \"degradation\": [\n");
    for (i, (factor, r)) in daemon.degradation.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"load_factor\": {:.1}, \"offered_qps\": {:.0}, \"qps\": {:.0}, \
             \"p99_ns\": {}, \"shed_fraction\": {:.4}}}{}",
            factor,
            r.offered_qps,
            r.qps,
            r.latency_ns(0.99),
            r.shed_fraction(),
            if i + 1 == daemon.degradation.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n");
    json.push_str("  }\n}\n");
    std::fs::write(out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}

/// Determinism mode: a fixed fleet + fixed workload, every resolved
/// answer rendered as one line. Byte-identical across `--shards` values,
/// across `--strategy full|incremental` (published snapshots carry no
/// trace of how phase 2/3 were computed), and across `--layout soa|aos`
/// (the plane gather and the struct walk resolve the same entries).
fn dump(path: &str, shards: usize, strategy: RecomputeStrategy, layout: &str) {
    let spec = fleet_spec(8, 6, strategy);
    let frontend = FleetFrontend::from_spec(&spec, 4_000, shards).expect("dump spec is valid");
    let aos = match layout {
        "soa" => None,
        "aos" => Some(AosFrontend::mirror(&frontend)),
        other => panic!("unknown layout `{other}` (expected soa|aos)"),
    };
    let mut generator =
        WorkloadGen::new(WorkloadSpec { seed: 77, batch: 512, ..WorkloadSpec::default() });
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut text = String::new();
    for round in 0..3 {
        generator.fill(&frontend, &mut batch);
        match &aos {
            Some(aos) => aos.execute(&mut batch, &mut out),
            None => frontend.execute(&mut batch, &mut out),
        }
        for (query, result) in batch.queries().iter().zip(out.results()) {
            let _ = write!(text, "round {round} {query:?} => ");
            match result {
                QueryResult::Path { entry, .. } => {
                    let _ = writeln!(text, "Path {entry:?} via {:?}", out.path_nodes(result));
                }
                other => {
                    let _ = writeln!(text, "{other:?}");
                }
            }
        }
    }
    std::fs::write(path, &text).expect("write dump");
    eprintln!("wrote {path} ({} lines)", 3 * 512);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut dump_path: Option<String> = None;
    let mut shards = 2usize;
    let mut strategy = RecomputeStrategy::Auto;
    let mut layout = "soa".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--dump" => dump_path = Some(it.next().expect("--dump needs a path")),
            "--shards" => {
                shards = it.next().and_then(|v| v.parse().ok()).expect("--shards needs a count");
            }
            "--strategy" => {
                let name = it.next().expect("--strategy needs a name");
                strategy = RecomputeStrategy::parse(&name)
                    .unwrap_or_else(|| panic!("unknown strategy `{name}`"));
            }
            "--layout" => layout = it.next().expect("--layout needs soa|aos"),
            other if !other.starts_with("--") => out_path = Some(other.to_string()),
            other => panic!("unknown flag `{other}`"),
        }
    }
    if let Some(path) = dump_path {
        dump(&path, shards, strategy, &layout);
    } else {
        bench(smoke, &out_path.unwrap_or_else(|| "BENCH_serve.json".to_string()));
    }
}
