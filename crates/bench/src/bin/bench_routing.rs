//! `bench_routing` — emits `BENCH_routing.json`, the machine-readable
//! perf baseline of the routing kernel, so future changes have a
//! trajectory to compare against.
//!
//! ```text
//! cargo run -p etx-bench --bin bench_routing --release            # writes ./BENCH_routing.json
//! cargo run -p etx-bench --bin bench_routing --release -- out.json
//! cargo run -p etx-bench --bin bench_routing --release -- --smoke # small sizes, short budgets
//! ```
//!
//! For each K in {16, 64, 256, 1024} (square meshes 4×4 … 32×32) it
//! measures, in nanoseconds (best of a fixed wall-clock budget):
//!
//! * `full_floyd_warshall_ns` — the seed's phase-2+3 path (`Router::compute`
//!   pinned to [`PathBackend::FloydWarshall`]),
//! * `full_auto_ns` — the same full recompute under [`PathBackend::Auto`],
//! * `delta_recompute_ns` — the affected-sources delta path
//!   (`RecomputeStrategy::AffectedSources`): one battery-bucket drain per
//!   frame, recomputed in place via `Router::recompute_into` with a
//!   warmed [`RoutingScratch`] — on a connected fabric this still re-runs
//!   single-source Dijkstra from every source,
//! * `incremental_repair_ns` — the same steady-drain loop the simulator
//!   actually runs: the changed-bitset frame feed
//!   (`Router::recompute_frame_into`) driving the incremental
//!   path-repair pipeline,
//!
//! * `churn_repair_ns` — the churn/reconnect loop: per 16-frame period
//!   a rotating victim is disconnected and revived while recharge
//!   pulses land on bystanders in between, so every period drives both
//!   repair halves (increase *and* decrease) through the same
//!   changed-bitset frame feed,
//!
//! plus three per-frame observability metrics of the repair loop:
//! `repair_table_entries_per_frame` (phase-3 delta rebuild),
//! `nodes_scanned_per_frame` (the changed-bitset feed's node-state
//! examinations; a report-diff frame would scan all `K`), and
//! `decrease_repairs_per_frame` (sources whose repair engaged the
//! decrease half over the churn loop);
//!
//! plus the frame-time distribution and tracing cost:
//! `repair_frame_p50/p90/p99_ns` (individually-timed steady-drain
//! repair frames — the latency shape a frame-trace timeline reports)
//! and `record_overhead_ns` / `record_overhead_frac` (one `etx-trace`
//! record call — digest + encode + ring store — absolute and as a
//! fraction of a steady repair frame).
//!
//! A final `"metrics"` block reports `metrics_overhead_frac`: one
//! frame's full `etx-metrics` record traffic (the engine's frame
//! counters, phase spans, routing-version gauge and `RecomputeStats`
//! delta flush, plus every live repair-stage span) micro-timed on a
//! warm loop against the identical loop with recording
//! runtime-disabled, divided by the K=1024 steady-drain repair frame —
//! the same protocol as `record_overhead_frac`. CI gates this at ≤ 1%.

use std::sync::Arc;
use std::time::{Duration, Instant};

use etx::graph::{NodeBitset, PathBackend};
use etx::metrics::{CounterId, GaugeId, MetricsHandle, Registry, SpanId};
use etx::prelude::*;
use etx::routing::{FrameDelta, RecomputeStrategy, RoutingScratch, RoutingState};

fn best_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    let mut iters = 0u32;
    loop {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed().as_secs_f64() * 1e9;
        best = best.min(elapsed);
        iters += 1;
        if (iters >= 3 && Instant::now() >= deadline) || iters >= 10_000 {
            return best;
        }
    }
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

struct Point {
    k: usize,
    side: usize,
    auto_backend: &'static str,
    full_floyd_warshall_ns: f64,
    full_auto_ns: f64,
    delta_recompute_ns: f64,
    incremental_repair_ns: f64,
    /// Per-frame cost of the churn/reconnect loop (one disconnect +
    /// reconnect pair per [`CHURN_PERIOD`], recharge/drain pulse pairs
    /// in between, one node per frame) on the repair pipeline.
    churn_repair_ns: f64,
    /// Average `(node, module)` table entries phase 3 refreshed per
    /// steady-drain repair frame (a full rebuild would refresh `3 * K`).
    repair_table_entries_per_frame: f64,
    /// Average node states the per-frame bookkeeping examined per
    /// steady-drain repair frame under the changed-bitset feed (a
    /// report-diff frame scans all `K`).
    nodes_scanned_per_frame: f64,
    /// Average sources per churn frame whose repair engaged the decrease
    /// half (improvement propagation instead of a conservative re-run).
    decrease_repairs_per_frame: f64,
    /// Steady-drain repair frame-time distribution (individual frame
    /// timings, not best-window averages): the p50/p90/p99 shape the
    /// frame-trace timeline reports per run.
    repair_frame_p50_ns: f64,
    /// 90th percentile of the same distribution.
    repair_frame_p90_ns: f64,
    /// 99th percentile of the same distribution.
    repair_frame_p99_ns: f64,
    /// Cost of one frame-trace record call (state + cost digest over a
    /// K-node report, LEB128 encode, ring-slot store) on a warm
    /// recorder — the whole per-frame price of `fleet --record`.
    record_overhead_ns: f64,
    /// `record_overhead_ns / incremental_repair_ns`: recording cost as
    /// a fraction of the steady-drain repair frame it rides on.
    record_overhead_frac: f64,
}

/// Times one frame-trace record call on a warm ring recorder: the state
/// digest walks all `K` node states, so this is the recording hook's
/// full per-frame cost (the engine adds only an event-tap drain).
fn record_frame_ns(report: &SystemReport, budget: Duration) -> f64 {
    use etx::sim::{FrameSnapshot, TraceEntry, TraceEvent};
    use etx::trace::{TraceHeader, TraceRecorder};
    let mut recorder = TraceRecorder::ring(TraceHeader::default(), 64).with_wall_time(false);
    let events = [
        TraceEntry::new(1, 1_024, TraceEvent::RoutingRecomputed { version: 1 }),
        TraceEntry::new(1, 1_024, TraceEvent::JobCompleted { job: 7 }),
    ];
    let stats = etx::routing::RecomputeStats {
        repair_recomputes: 1,
        repaired_sources: 3,
        table_cells_patched: 12,
        nodes_scanned: 1,
        ..Default::default()
    };
    let mut frame = 0u64;
    let mut record_one = move |recorder: &mut TraceRecorder| {
        frame += 1;
        recorder.record(&FrameSnapshot {
            frame,
            cycle: frame * 1_024,
            routing_version: frame,
            recomputed: true,
            report,
            recompute: stats,
            recompute_delta: stats,
            events: &events,
            medium_energy: Energy::from_picojoules(frame as f64 * 100.0),
            controller_energy: Energy::from_picojoules(frame as f64 * 400.0),
            jobs_completed: frame,
            jobs_lost: 0,
        });
    };
    // Warm the digest bitsets, encode buffer, and every ring slot.
    for _ in 0..128 {
        record_one(&mut recorder);
    }
    let window_ns = best_ns(budget, || {
        for _ in 0..CHURN_PERIOD {
            record_one(&mut recorder);
        }
    });
    window_ns / CHURN_PERIOD as f64
}

/// Individual steady-drain repair frame timings (the same loop as
/// [`steady_drain_ns`] with the changed-bitset feed), reduced to
/// `(p50, p90, p99)` — the per-frame latency distribution a frame-trace
/// timeline would show for this fabric size.
fn repair_frame_percentiles(
    graph: &etx::graph::DiGraph,
    modules: &[Vec<NodeId>],
    report: &SystemReport,
    samples: usize,
) -> (f64, f64, f64) {
    let router = Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair);
    let k = graph.node_count();
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    let mut current = report.clone();
    let mut bits = NodeBitset::with_capacity(k);
    router.compute_into(graph, modules, &current, None, &mut scratch, &mut state);
    let mut frame = 0usize;
    let mut drain_one = move |current: &mut SystemReport,
                              scratch: &mut RoutingScratch,
                              state: &mut RoutingState| {
        let node = NodeId::new((frame * 7 + 3) % k);
        let level = current.battery_level(node);
        current.set_battery_level(node, if level == 0 { 15 } else { level - 1 });
        frame += 1;
        bits.clear();
        bits.insert(node);
        router.recompute_frame_into(
            graph,
            modules,
            current,
            FrameDelta { changed: &bits, any_deadlock: false, placement_changed: false },
            scratch,
            state,
        );
    };
    for _ in 0..8 {
        drain_one(&mut current, &mut scratch, &mut state);
    }
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            drain_one(&mut current, &mut scratch, &mut state);
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    timings.sort_by(f64::total_cmp);
    let pick = |q: f64| timings[((timings.len() - 1) as f64 * q).round() as usize];
    (pick(0.50), pick(0.90), pick(0.99))
}

/// Measures the steady-state per-frame observability counters over a
/// battery-drain loop on the changed-bitset frame feed: `(table entries
/// refreshed, node states scanned)` per frame, plus an assertion-grade
/// check that every steady frame skipped its `O(K)` scan.
fn steady_frame_stats(
    graph: &etx::graph::DiGraph,
    modules: &[Vec<NodeId>],
    report: &SystemReport,
) -> (f64, f64) {
    let router = Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair);
    let k = graph.node_count();
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    let mut current = report.clone();
    let mut bits = NodeBitset::with_capacity(k);
    router.compute_into(graph, modules, &current, None, &mut scratch, &mut state);
    let mut drain_one = |frame: usize, scratch: &mut RoutingScratch, state: &mut RoutingState| {
        let node = NodeId::new((frame * 7 + 3) % k);
        let level = current.battery_level(node);
        current.set_battery_level(node, if level == 0 { 15 } else { level - 1 });
        bits.clear();
        bits.insert(node);
        router.recompute_frame_into(
            graph,
            modules,
            &current,
            FrameDelta { changed: &bits, any_deadlock: false, placement_changed: false },
            scratch,
            state,
        );
    };
    // Warm-up frames: the first delta frame after a full recompute finds
    // cold shortest-path trees and re-runs (and re-tables) everything —
    // that is start-up cost, not the steady state this metric tracks.
    let warmup_frames = 4usize;
    for frame in 0..warmup_frames {
        drain_one(frame, &mut scratch, &mut state);
    }
    let warmup = scratch.stats();
    let frames = 32u64;
    for frame in 0..frames {
        drain_one(warmup_frames + frame as usize, &mut scratch, &mut state);
    }
    let stats = scratch.stats();
    assert_eq!(
        stats.frames_oK_skipped - warmup.frames_oK_skipped,
        frames,
        "steady bitset-fed frames must skip the O(K) scan"
    );
    (
        (stats.table_entries_rebuilt - warmup.table_entries_rebuilt) as f64 / frames as f64,
        (stats.nodes_scanned - warmup.nodes_scanned) as f64 / frames as f64,
    )
}

/// Length of one churn period: a disconnect/reconnect pair followed by
/// recharge/drain pulse pairs on rotating bystanders. One failure every
/// 16 recompute frames is still orders of magnitude denser churn than
/// any fleet scenario (whose failures are separated by thousands of
/// frames) — a disconnect re-hangs the victim's whole shortest-path
/// subtree for every source, `Θ(avg depth)` nodes against a drain
/// tick's `Θ(1)`, so an every-frame-structural loop would measure that
/// asymptotic gap rather than the repair pipeline.
const CHURN_PERIOD: usize = 16;

/// Applies churn frame `frame` to `report` and returns the changed
/// node: per 16-frame period, disconnect a rotating victim, revive it
/// at its pre-death battery level (reconnect semantics — the battery
/// rides along while the node is unreachable, so every revived edge is
/// a dead→alive weight *decrease* back to its exact old value), then
/// drain-and-recharge bystanders in pairs (each recharge a strict
/// decrease). Every period exercises both repair halves with one
/// changed node per frame.
fn churn_mutate(
    report: &mut SystemReport,
    frame: usize,
    k: usize,
    victim_level: &mut u32,
) -> NodeId {
    match frame % CHURN_PERIOD {
        0 => {
            let victim = NodeId::new((frame / CHURN_PERIOD * 11 + 5) % k);
            *victim_level = report.battery_level(victim);
            report.set_dead(victim);
            victim
        }
        1 => {
            let victim = NodeId::new(((frame - 1) / CHURN_PERIOD * 11 + 5) % k);
            report.revive(victim, *victim_level);
            victim
        }
        i => {
            let node = NodeId::new(((frame - i % 2) * 7 + 3) % k);
            let level = report.battery_level(node);
            let level = if i % 2 == 0 { level.saturating_sub(1) } else { (level + 1).min(15) };
            report.set_battery_level(node, level);
            node
        }
    }
}

/// Times one churn/reconnect cycle (averaged to a per-frame figure) on
/// the repair pipeline's changed-bitset feed, and measures how many
/// sources per frame the decrease half repaired in place.
fn churn_repair_stats(
    graph: &etx::graph::DiGraph,
    modules: &[Vec<NodeId>],
    report: &SystemReport,
    budget: Duration,
) -> (f64, f64) {
    let router = Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair);
    let k = graph.node_count();
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    let mut current = report.clone();
    let mut bits = NodeBitset::with_capacity(k);
    router.compute_into(graph, modules, &current, None, &mut scratch, &mut state);
    let mut frame = 0usize;
    let mut victim_level = 0u32;
    let mut churn_one = move |current: &mut SystemReport,
                              scratch: &mut RoutingScratch,
                              state: &mut RoutingState| {
        let node = churn_mutate(current, frame, k, &mut victim_level);
        frame += 1;
        bits.clear();
        bits.insert(node);
        router.recompute_frame_into(
            graph,
            modules,
            current,
            FrameDelta { changed: &bits, any_deadlock: false, placement_changed: false },
            scratch,
            state,
        );
    };
    for _ in 0..CHURN_PERIOD {
        churn_one(&mut current, &mut scratch, &mut state);
    }
    let warmup = scratch.stats();
    let stat_frames = 2 * CHURN_PERIOD as u64;
    for _ in 0..stat_frames {
        churn_one(&mut current, &mut scratch, &mut state);
    }
    let stats = scratch.stats();
    let decrease_per_frame =
        (stats.decrease_repairs - warmup.decrease_repairs) as f64 / stat_frames as f64;
    let cycle_ns = best_ns(budget, || {
        for _ in 0..CHURN_PERIOD {
            churn_one(&mut current, &mut scratch, &mut state);
        }
    });
    (cycle_ns / CHURN_PERIOD as f64, decrease_per_frame)
}

/// Times the simulator's steady-state loop — one battery-bucket drain
/// per frame, recomputed in place over warmed buffers — under `router`'s
/// configured strategy. `frame_feed` selects the engine's changed-bitset
/// path (`recompute_frame_into`) over the legacy rebuild-and-diff one.
///
/// Measured as the best complete [`CHURN_PERIOD`]-frame window averaged
/// to a per-frame figure — the same protocol as
/// [`churn_repair_stats`], so the churn/drain ratio compares like with
/// like. (Frame costs vary with the drained node's depth and charge
/// class; a best-*single*-frame figure would report the luckiest node
/// instead of the steady state.)
fn steady_drain_ns(
    router: &Router,
    graph: &etx::graph::DiGraph,
    modules: &[Vec<NodeId>],
    report: &SystemReport,
    budget: Duration,
    frame_feed: bool,
) -> f64 {
    let k = graph.node_count();
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    let mut current = report.clone();
    let mut old = SystemReport::fresh(0, 1);
    let mut bits = NodeBitset::with_capacity(k);
    router.compute_into(graph, modules, &current, None, &mut scratch, &mut state);
    let mut frame = 0usize;
    let mut drain_one = move |current: &mut SystemReport,
                              old: &mut SystemReport,
                              scratch: &mut RoutingScratch,
                              state: &mut RoutingState| {
        old.clone_from(current);
        let node = NodeId::new((frame * 7 + 3) % k);
        let level = current.battery_level(node);
        if level == 0 {
            current.set_battery_level(node, 15); // keep the loop running
        } else {
            current.set_battery_level(node, level - 1);
        }
        frame += 1;
        if frame_feed {
            bits.clear();
            bits.insert(node);
            router.recompute_frame_into(
                graph,
                modules,
                current,
                FrameDelta { changed: &bits, any_deadlock: false, placement_changed: false },
                scratch,
                state,
            );
        } else {
            router.recompute_into(graph, modules, old, current, scratch, state);
        }
    };
    for _ in 0..8 {
        drain_one(&mut current, &mut old, &mut scratch, &mut state);
    }
    let window_ns = best_ns(budget, || {
        for _ in 0..CHURN_PERIOD {
            drain_one(&mut current, &mut old, &mut scratch, &mut state);
        }
    });
    window_ns / CHURN_PERIOD as f64
}

/// Per-frame cost of full `etx-metrics` instrumentation, measured the
/// way `record_overhead_ns` measures trace recording: the complete
/// record traffic one instrumented steady-drain frame emits — the
/// engine's frame counters, phase spans, routing-version gauge and
/// `RecomputeStats` delta flush, plus every live repair-stage span —
/// timed on a warm tight loop against the identical loop with
/// recording runtime-disabled (the shipped no-op mode: every record
/// call early-returns on the class flags, spans never read the clock).
/// Returns `(enabled_ns, noop_ns)` per frame.
///
/// **One registry, toggled, windows interleaved.** Two
/// separately-allocated loop instances differ in memory layout, and on
/// this shared container address-dependent cache/TLB aliasing makes
/// one systematically 1–2% faster for the lifetime of the process;
/// and best-of minima gathered seconds apart swing ±4% because the
/// noise floor itself drifts. Toggling one registry keeps every byte
/// of working set identical between the streams, and alternating
/// enabled/disabled windows inside one budget keeps both on the same
/// machine.
///
/// Differential end-to-end timing of the repair loop itself was tried
/// and abandoned: a sub-microsecond per-frame record cost is ~0.03% of
/// the 1.8 ms K=1024 repair frame, an order of magnitude below this
/// container's demonstrated estimator bias — null experiments with
/// both streams disabled read ±2–4% "overhead" on a true zero, bent by
/// LLC-exceeding working sets, node-residue workload parity coupling
/// and co-tenant stalls. Micro-timing the record traffic resolves
/// nanoseconds; dividing by the separately measured repair frame gives
/// the fraction the CI gate rides — exactly how `record_overhead_frac`
/// is defined.
fn metrics_record_ns(budget: Duration) -> (f64, f64) {
    let registry = Arc::new(Registry::full());
    let metrics = MetricsHandle::new(Arc::clone(&registry));
    // A representative steady-drain frame's recompute delta: one
    // repaired source, a phase-3 patch sweep, one node scanned.
    let delta = etx::routing::RecomputeStats {
        repair_recomputes: 1,
        repaired_sources: 1,
        table_cells_patched: 33,
        nodes_scanned: 1,
        ..Default::default()
    };
    let mut version = 0u64;
    let mut record_one = || {
        version += 1;
        // The engine's frame loop traffic (engine.rs): frame counter,
        // three phase spans, recompute counter, version gauge, delta
        // flush...
        metrics.inc(CounterId::SimFrames);
        {
            let _upload = metrics.span(SpanId::SimFrameUpload);
        }
        {
            let _recompute = metrics.span(SpanId::SimFrameRecompute);
            // ...wrapping the repair pipeline's stage spans
            // (router.rs): the stage-1 delta guard, the stage-2 timer
            // with its one-half observation, the stage-3 table guard.
            {
                let _delta = metrics.span(SpanId::RoutingRepairDelta);
            }
            let stage2 = metrics.timer();
            metrics.observe_since(SpanId::RoutingRepairIncrease, stage2);
            {
                let _table = metrics.span(SpanId::RoutingRepairTable);
            }
        }
        metrics.inc(CounterId::SimRecomputes);
        {
            let _publish = metrics.span(SpanId::SimFramePublish);
        }
        metrics.gauge_raise(GaugeId::SimRoutingVersion, version);
        delta.record_into(&metrics);
    };
    let set_recording = |on: bool| {
        registry.set_counting(on);
        registry.set_timing(on);
    };
    // ~600 ns/frame enabled: a window is long enough to dwarf the two
    // clock reads timing it, short enough for many windows per budget.
    const WINDOW: usize = 1024;
    for on in [true, false] {
        set_recording(on);
        for _ in 0..WINDOW {
            record_one();
        }
    }
    // best[0] = noop stream, best[1] = enabled stream.
    let mut best = [f64::INFINITY; 2];
    let deadline = Instant::now() + budget;
    let mut iters = 0u32;
    loop {
        for on in [true, false] {
            set_recording(on);
            let start = Instant::now();
            for _ in 0..WINDOW {
                record_one();
            }
            let ns = start.elapsed().as_secs_f64() * 1e9;
            let slot = usize::from(on);
            best[slot] = best[slot].min(ns);
        }
        iters += 1;
        if (iters >= 3 && Instant::now() >= deadline) || iters >= 10_000 {
            break;
        }
    }
    (best[1] / WINDOW as f64, best[0] / WINDOW as f64)
}

/// A mid-drain fleet with striped charge (buckets 8..=15, neighbours
/// differing) rather than a factory-fresh uniform one: uniform levels
/// make every pulse back to ambient spawn mesh-wide exact-tie
/// achiever flips, a worst case no running fleet sits in, and the
/// repair paths measured here are exactly the tie-maintenance-sensitive
/// ones.
fn striped_report(k: usize) -> SystemReport {
    let mut report = SystemReport::fresh(k, 16);
    for i in 0..k {
        report.set_battery_level(NodeId::new(i), 8 + ((i * 5) % 8) as u32);
    }
    report
}

fn measure(side: usize, budget: Duration) -> Point {
    let mesh = Mesh2D::square(side, Length::from_centimetres(2.05));
    let graph = mesh.to_graph();
    let k = graph.node_count();
    let modules = module_stripes(k);
    let report = striped_report(k);

    let fw = Router::new(Algorithm::Ear).with_backend(PathBackend::FloydWarshall);
    let auto = Router::new(Algorithm::Ear);
    let auto_backend = match PathBackend::Auto.resolve(graph.node_count(), graph.edge_count()) {
        etx::graph::ResolvedBackend::FloydWarshall => "floyd_warshall",
        etx::graph::ResolvedBackend::DijkstraAllPairs => "dijkstra_all_pairs",
    };

    let full_floyd_warshall_ns = best_ns(budget, || {
        std::hint::black_box(fw.compute(std::hint::black_box(&graph), &modules, &report, None));
    });
    let full_auto_ns = best_ns(budget, || {
        std::hint::black_box(auto.compute(std::hint::black_box(&graph), &modules, &report, None));
    });

    // The two steady-state simulator paths, over identical drain loops:
    // affected-sources re-solve (report-diff fed) vs the engine's real
    // loop — incremental path repair on the changed-bitset frame feed.
    let delta_recompute_ns = steady_drain_ns(
        &Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::AffectedSources),
        &graph,
        &modules,
        &report,
        budget,
        false,
    );
    let incremental_repair_ns = steady_drain_ns(
        &Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair),
        &graph,
        &modules,
        &report,
        budget,
        true,
    );

    let (churn_repair_ns, decrease_repairs_per_frame) =
        churn_repair_stats(&graph, &modules, &report, budget);

    let (repair_table_entries_per_frame, nodes_scanned_per_frame) =
        steady_frame_stats(&graph, &modules, &report);

    let samples = if budget < Duration::from_millis(100) { 64 } else { 128 };
    let (repair_frame_p50_ns, repair_frame_p90_ns, repair_frame_p99_ns) =
        repair_frame_percentiles(&graph, &modules, &report, samples);
    let record_overhead_ns = record_frame_ns(&report, budget);
    let record_overhead_frac = record_overhead_ns / incremental_repair_ns;
    Point {
        k,
        side,
        auto_backend,
        full_floyd_warshall_ns,
        full_auto_ns,
        delta_recompute_ns,
        incremental_repair_ns,
        churn_repair_ns,
        repair_table_entries_per_frame,
        nodes_scanned_per_frame,
        decrease_repairs_per_frame,
        repair_frame_p50_ns,
        repair_frame_p90_ns,
        repair_frame_p99_ns,
        record_overhead_ns,
        record_overhead_frac,
    }
}

fn main() {
    // `--smoke`: small sizes and short budgets — the CI-speed pass that
    // still exercises every measured path and emits the per-frame
    // observability metrics (`nodes_scanned_per_frame` included).
    let mut smoke = false;
    let mut out_path = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_routing.json".to_string());
    let sides: &[usize] = if smoke { &[4, 8, 16] } else { &[4, 8, 16, 32] };
    let mut points = Vec::new();
    for &side in sides {
        let budget = match (smoke, side >= 32) {
            (true, _) => Duration::from_millis(60),
            (false, true) => Duration::from_millis(3000),
            (false, false) => Duration::from_millis(400),
        };
        let point = measure(side, budget);
        eprintln!(
            "K={:4} ({}x{}, auto={}): full_fw={:.0}ns full_auto={:.0}ns delta={:.0}ns \
             repair={:.0}ns ({:.1}x over delta, {:.1}x over seed) churn={:.0}ns \
             ({:.1}x over drain, {:.1} decrease-repairs/frame); \
             table {:.1}/{} entries, {:.1}/{} nodes scanned per repair frame",
            point.k,
            point.side,
            point.side,
            point.auto_backend,
            point.full_floyd_warshall_ns,
            point.full_auto_ns,
            point.delta_recompute_ns,
            point.incremental_repair_ns,
            point.delta_recompute_ns / point.incremental_repair_ns,
            point.full_floyd_warshall_ns / point.incremental_repair_ns,
            point.churn_repair_ns,
            point.churn_repair_ns / point.incremental_repair_ns,
            point.decrease_repairs_per_frame,
            point.repair_table_entries_per_frame,
            3 * point.k,
            point.nodes_scanned_per_frame,
            point.k,
        );
        eprintln!(
            "        frame times p50={:.0}ns p90={:.0}ns p99={:.0}ns; trace record {:.0}ns \
             = {:.2}% of a repair frame",
            point.repair_frame_p50_ns,
            point.repair_frame_p90_ns,
            point.repair_frame_p99_ns,
            point.record_overhead_ns,
            point.record_overhead_frac * 100.0,
        );
        points.push(point);
    }

    // Metrics instrumentation overhead, always against the K=1024
    // steady-drain repair frame — the ≤1% budget is defined there, and
    // at smaller K the (fixed, sub-microsecond) per-frame record cost
    // reads as a misleadingly large fraction of a cheap frame. The
    // record traffic is micro-timed (see `metrics_record_ns` for why
    // end-to-end differential timing cannot resolve this on a shared
    // container); the denominator reuses the full run's K=1024 point,
    // or is measured directly with a short budget under `--smoke`.
    let overhead_side = 32;
    let overhead_budget =
        if smoke { Duration::from_millis(200) } else { Duration::from_millis(1000) };
    let (metrics_enabled_ns, metrics_noop_ns) = metrics_record_ns(overhead_budget);
    let metrics_overhead_ns = (metrics_enabled_ns - metrics_noop_ns).max(0.0);
    let repair_frame_ns = points
        .iter()
        .find(|p| p.side == overhead_side)
        .map(|p| p.incremental_repair_ns)
        .unwrap_or_else(|| {
            let mesh = Mesh2D::square(overhead_side, Length::from_centimetres(2.05));
            let graph = mesh.to_graph();
            let k = graph.node_count();
            let modules = module_stripes(k);
            let report = striped_report(k);
            steady_drain_ns(
                &Router::new(Algorithm::Ear).with_strategy(RecomputeStrategy::IncrementalRepair),
                &graph,
                &modules,
                &report,
                Duration::from_millis(250),
                true,
            )
        });
    let metrics_overhead_frac = metrics_overhead_ns / repair_frame_ns;
    eprintln!(
        "metrics record traffic: enabled={:.0}ns noop={:.0}ns overhead={:.0}ns/frame \
         = {:.3}% of the K={} repair frame ({:.2}ms)",
        metrics_enabled_ns,
        metrics_noop_ns,
        metrics_overhead_ns,
        metrics_overhead_frac * 100.0,
        overhead_side * overhead_side,
        repair_frame_ns / 1e6,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"routing_recompute\",\n");
    json.push_str("  \"command\": \"cargo run -p etx-bench --bin bench_routing --release\",\n");
    json.push_str("  \"units\": \"nanoseconds, best observed iteration\",\n");
    json.push_str("  \"workload\": \"EAR three-phase recompute, square mesh, 3 striped modules, 16 battery levels\",\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k\": {}, \"mesh\": \"{}x{}\", \"auto_backend\": \"{}\", \
             \"full_floyd_warshall_ns\": {:.0}, \"full_auto_ns\": {:.0}, \
             \"delta_recompute_ns\": {:.0}, \"incremental_repair_ns\": {:.0}, \
             \"churn_repair_ns\": {:.0}, \
             \"repair_table_entries_per_frame\": {:.1}, \
             \"nodes_scanned_per_frame\": {:.1}, \
             \"decrease_repairs_per_frame\": {:.1}, \
             \"repair_frame_p50_ns\": {:.0}, \"repair_frame_p90_ns\": {:.0}, \
             \"repair_frame_p99_ns\": {:.0}, \"record_overhead_ns\": {:.0}, \
             \"record_overhead_frac\": {:.4}}}{}\n",
            p.k,
            p.side,
            p.side,
            p.auto_backend,
            p.full_floyd_warshall_ns,
            p.full_auto_ns,
            p.delta_recompute_ns,
            p.incremental_repair_ns,
            p.churn_repair_ns,
            p.repair_table_entries_per_frame,
            p.nodes_scanned_per_frame,
            p.decrease_repairs_per_frame,
            p.repair_frame_p50_ns,
            p.repair_frame_p90_ns,
            p.repair_frame_p99_ns,
            p.record_overhead_ns,
            p.record_overhead_frac,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"metrics\": {{\"k\": {}, \"record_enabled_ns\": {:.0}, \
         \"record_noop_ns\": {:.0}, \"metrics_overhead_ns\": {:.0}, \
         \"repair_frame_ns\": {:.0}, \"metrics_overhead_frac\": {:.4}}}\n",
        overhead_side * overhead_side,
        metrics_enabled_ns,
        metrics_noop_ns,
        metrics_overhead_ns,
        repair_frame_ns,
        metrics_overhead_frac,
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
