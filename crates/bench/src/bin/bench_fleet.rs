//! `bench_fleet` — emits `BENCH_fleet.json`, the machine-readable perf
//! baseline of the fleet controller: instances/second at fleet sizes
//! 100, 1 000 and 10 000 of the small `smoke` scenario family.
//!
//! ```text
//! cargo run -p etx-bench --bin bench_fleet --release          # writes ./BENCH_fleet.json
//! cargo run -p etx-bench --bin bench_fleet --release -- out.json
//! ```
//!
//! Each point reports wall time, instances/sec, the shard count the
//! auto plan picked, and the aggregate's totals (so a perf "win" that
//! silently changed results is visible in review). Aggregates are
//! deterministic; timings of course are not.
//!
//! A `frame_walltime` block rides along: one smoke instance recorded
//! through `etx-trace` with wall-time capture on, reduced to per-frame
//! wall-time percentiles — the engine-level frame latency shape
//! (upload, dirty extraction, recompute, publish, record) that the
//! instances/sec figures average away.

use std::time::Instant;

use etx::fleet::{FleetController, ScenarioSpec, ShardPlan};
use etx::metrics::{CounterId, MetricsSnapshot};
use etx::trace::{record_run, RecordMode, RecordOptions};

struct Point {
    instances: usize,
    shards: usize,
    wall_seconds: f64,
    instances_per_sec: f64,
    jobs_completed_total: u128,
    lifetime_p50: u64,
    /// The run's merged fleet-wide metrics snapshot (per-shard
    /// counters-only registries; the shards record whether or not the
    /// bench reads them, so surfacing them costs nothing extra).
    metrics: MetricsSnapshot,
}

fn measure(instances: usize) -> Point {
    let spec = ScenarioSpec { instances, ..ScenarioSpec::smoke() };
    let controller = FleetController::new().with_shards(ShardPlan::Auto);
    // Single measured pass (fleet runs are long enough that best-of-N
    // would only measure the OS scheduler); `main` does one throwaway
    // warm-up call before the measured sizes.
    let start = Instant::now();
    let result = controller.run(&spec).expect("smoke-derived spec is valid");
    let wall = start.elapsed().as_secs_f64();
    Point {
        instances,
        shards: result.shards,
        wall_seconds: wall,
        instances_per_sec: instances as f64 / wall.max(1e-9),
        jobs_completed_total: result.aggregate.jobs_completed_total,
        lifetime_p50: result.aggregate.lifetime.quantile_raw(0.5),
        metrics: result.metrics,
    }
}

/// Per-frame wall-time distribution of one recorded smoke instance:
/// `(frames, p50_ns, p99_ns, p999_ns, max_ns)`. The first frame has no
/// predecessor timestamp (wall time 0) and is excluded.
fn frame_walltime_stats() -> (usize, u64, u64, u64, u64) {
    // The longest-lived smoke instance beats a 1-frame one: sample a few
    // and keep the instance with the most frames.
    let spec = ScenarioSpec { instances: 8, ..ScenarioSpec::smoke() };
    let mut best: Vec<u64> = Vec::new();
    for index in 0..spec.instances {
        let options = RecordOptions {
            spec: String::new(),
            instance: index as u64,
            mode: RecordMode::Full,
            wall_time: true,
        };
        let Ok((_report, trace)) = record_run(spec.sample(index), &options) else {
            continue;
        };
        let samples: Vec<u64> = trace.records.iter().skip(1).map(|r| r.wall_ns).collect();
        if samples.len() > best.len() {
            best = samples;
        }
    }
    if best.is_empty() {
        return (0, 0, 0, 0, 0);
    }
    best.sort_unstable();
    let pick = |q: f64| best[((best.len() - 1) as f64 * q).round() as usize];
    (best.len(), pick(0.50), pick(0.90), pick(0.999), best[best.len() - 1])
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fleet.json".to_string());
    // Warm-up (code paths, allocator, page cache).
    let _ = measure(50);
    let mut points = Vec::new();
    for instances in [100usize, 1_000, 10_000] {
        let point = measure(instances);
        eprintln!(
            "instances={:>6} shards={:>2}: {:>8.3}s wall, {:>7.0} instances/sec, \
             {} jobs total, lifetime p50 {}",
            point.instances,
            point.shards,
            point.wall_seconds,
            point.instances_per_sec,
            point.jobs_completed_total,
            point.lifetime_p50,
        );
        points.push(point);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fleet_throughput\",\n");
    json.push_str("  \"command\": \"cargo run -p etx-bench --bin bench_fleet --release\",\n");
    json.push_str("  \"units\": \"instances per second, single measured pass\",\n");
    json.push_str(
        "  \"workload\": \"smoke scenario family (3x3..4x4 fabrics, churn, heterogeneity), \
         auto shard plan, per-shard SimPool reuse\",\n",
    );
    let (ft_frames, ft_p50, ft_p90, ft_p999, ft_max) = frame_walltime_stats();
    eprintln!(
        "frame wall time (recorded smoke instance, {ft_frames} frames): \
         p50={ft_p50}ns p90={ft_p90}ns p999={ft_p999}ns max={ft_max}ns"
    );
    json.push_str(&format!(
        "  \"frame_walltime\": {{\"frames\": {ft_frames}, \"p50_ns\": {ft_p50}, \
         \"p90_ns\": {ft_p90}, \"p999_ns\": {ft_p999}, \"max_ns\": {ft_max}}},\n"
    ));
    // Headline counters of the largest measured run (shard-count
    // invariant, so reviewers can diff them like the aggregates).
    if let Some(largest) = points.last() {
        let m = &largest.metrics;
        json.push_str(&format!(
            "  \"metrics\": {{\"fleet_instances\": {}, \"sim_frames\": {}, \
             \"sim_recomputes\": {}, \"sim_jobs_completed\": {}, \"sim_jobs_lost\": {}}},\n",
            m.counter(CounterId::FleetInstances),
            m.counter(CounterId::SimFrames),
            m.counter(CounterId::SimRecomputes),
            m.counter(CounterId::SimJobsCompleted),
            m.counter(CounterId::SimJobsLost),
        ));
    }
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"instances\": {}, \"shards\": {}, \"wall_seconds\": {:.3}, \
             \"instances_per_sec\": {:.0}, \"jobs_completed_total\": {}, \
             \"lifetime_p50\": {}}}{}\n",
            p.instances,
            p.shards,
            p.wall_seconds,
            p.instances_per_sec,
            p.jobs_completed_total,
            p.lifetime_p50,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
