//! `repro` — regenerate every table and figure of the DATE'05 evaluation.
//!
//! ```text
//! cargo run -p etx-bench --bin repro --release            # everything
//! cargo run -p etx-bench --bin repro --release -- --exp fig7
//! cargo run -p etx-bench --bin repro --release -- --exp table2 --battery 60000
//! ```

use etx::experiments::{
    ablation, concurrent, fig2, fig7, fig8, table2, PAPER_BATTERY_PJ, PAPER_CONTROLLER_COUNTS,
    PAPER_MESHES,
};
use etx::prelude::*;
use etx_bench::Experiment;

struct Options {
    experiments: Vec<Experiment>,
    battery_pj: f64,
    csv: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut experiments = Vec::new();
    let mut battery_pj = PAPER_BATTERY_PJ;
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let name = args.next().ok_or("--exp needs a value")?;
                if name == "all" {
                    experiments.extend(Experiment::ALL);
                } else {
                    experiments.push(
                        Experiment::parse(&name)
                            .ok_or_else(|| format!("unknown experiment '{name}'"))?,
                    );
                }
            }
            "--battery" => {
                let pj = args.next().ok_or("--battery needs a value")?;
                battery_pj =
                    pj.parse::<f64>().map_err(|e| format!("bad battery value '{pj}': {e}"))?;
            }
            "--csv" => {
                csv = true;
            }
            "--help" | "-h" => {
                let names: Vec<_> = Experiment::ALL.iter().map(|e| e.name()).collect();
                return Err(format!(
                    "usage: repro [--exp <name>|all]... [--battery <pJ>] [--csv]\n\
                     experiments: {}",
                    names.join(", ")
                ));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if experiments.is_empty() {
        experiments.extend(Experiment::ALL);
    }
    Ok(Options { experiments, battery_pj, csv })
}

fn run_theorem1(battery_pj: f64) {
    let inputs =
        BoundInputs::uniform_comm(&AppSpec::aes(), SimConfig::default().comm_energy_per_act());
    println!("Theorem 1 — upper bound and optimal duplicates (B = {battery_pj} pJ)");
    println!(
        "normalized energies H_i: {:?}",
        inputs
            .normalized_energies()
            .iter()
            .map(|h| format!("{:.1} pJ", h.picojoules()))
            .collect::<Vec<_>>()
    );
    for k in [16usize, 25, 36, 49, 64] {
        let bound =
            upper_bound(&inputs, Energy::from_picojoules(battery_pj), k).expect("valid inputs");
        let ints = bound.integer_duplicates().expect("node budget >= modules");
        println!(
            "K = {k:2}: J* = {:7.2}, n* = {:?} (integers {:?})",
            bound.jobs(),
            bound.optimal_duplicates().iter().map(|d| format!("{d:.2}")).collect::<Vec<_>>(),
            ints
        );
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let b = options.battery_pj;
    println!("etx repro — Kao & Marculescu, DATE 2005 (battery budget {b} pJ/node)\n");
    for exp in options.experiments {
        println!("==================================================================");
        match exp {
            Experiment::Fig2 => {
                println!("Fig 2 — thin-film battery discharge curve\n");
                let samples = fig2::run(b, b / 240.0);
                println!("{}", fig2::render(&samples, 20));
            }
            Experiment::Fig7 => {
                println!("Fig 7 — jobs completed, EAR vs SDR (thin-film batteries)\n");
                let rows = fig7::run(&PAPER_MESHES, b);
                if options.csv {
                    println!("{}", fig7::render_as_csv(&rows));
                } else {
                    println!("{}", fig7::render(&rows));
                }
            }
            Experiment::Table2 => {
                println!("Table 2 — EAR vs the Theorem-1 upper bound (ideal batteries)\n");
                let rows = table2::run(&PAPER_MESHES, b);
                if options.csv {
                    println!("{}", table2::render_as_csv(&rows));
                } else {
                    println!("{}", table2::render(&rows));
                }
            }
            Experiment::Fig8 => {
                println!("Fig 8 — controller-count sweep (battery-powered controllers)\n");
                let cells = fig8::run(&PAPER_MESHES, &PAPER_CONTROLLER_COUNTS, b);
                if options.csv {
                    println!("{}", fig8::render_as_csv(&cells));
                } else {
                    println!("{}", fig8::render(&cells));
                }
            }
            Experiment::Theorem1 => {
                run_theorem1(b);
            }
            Experiment::Concurrent => {
                println!("Concurrent jobs & deadlock recovery (Sec 7 intro)\n");
                let rows = concurrent::run(&[1, 2, 4, 8], b);
                println!("{}", concurrent::render(&rows));
            }
            Experiment::AblateQ => {
                let rows = ablation::q_sweep(&[1.0, 2.0, 4.0, 8.0], b);
                println!("{}", ablation::render("Ablation — EAR exponent Q (4x4)", &rows));
            }
            Experiment::AblateMapping => {
                let rows = ablation::mapping_sweep(b);
                println!("{}", ablation::render("Ablation — mapping strategy (EAR, 4x4)", &rows));
            }
            Experiment::AblateBattery => {
                let rows = ablation::battery_sweep(b);
                println!("{}", ablation::render("Ablation — battery model (4x4)", &rows));
            }
            Experiment::AblateLevels => {
                let rows = ablation::levels_sweep(&[2, 4, 16, 64], b);
                println!(
                    "{}",
                    ablation::render("Ablation — battery quantization N_B (EAR, 4x4)", &rows)
                );
            }
            Experiment::AblateTopology => {
                let rows = ablation::topology_sweep(b);
                println!(
                    "{}",
                    ablation::render("Ablation — interconnect topology (EAR, 16 nodes)", &rows)
                );
            }
            Experiment::AblateRemap => {
                let rows = ablation::remap_sweep(b);
                println!("{}", ablation::render("Extension — module remapping (EAR, 5x5)", &rows));
            }
        }
        println!();
    }
}
