//! [`Fnv64`]: the workspace's in-repo streaming hash.
//!
//! Frame-trace records (the `etx-trace` crate) fingerprint per-frame
//! engine state — battery buckets, liveness/deadlock bitsets, routing
//! versions — so replays can assert byte-identical evolution. The build
//! environment is offline, so instead of a vendored xxHash this is
//! FNV-1a over little-endian words: dependency-free, allocation-free,
//! stable across platforms, and plenty for divergence *detection*
//! (nothing here is security-sensitive).

/// Streaming 64-bit FNV-1a hasher.
///
/// All multi-byte writes feed the byte stream little-endian, so digests
/// are identical across platforms.
///
/// ```
/// use etx_graph::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_u64(7);
/// h.write_bytes(b"etx");
/// let a = h.finish();
/// assert_ne!(a, Fnv64::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(OFFSET_BASIS)
    }

    /// Hashes `bytes` in one shot.
    #[must_use]
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write_bytes(bytes);
        h.finish()
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(PRIME);
    }

    /// Feeds a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Feeds a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits (digests must not depend on
    /// the host's pointer width).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// The digest of everything written so far (the hasher stays usable).
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Fnv64;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a reference values.
        assert_eq!(Fnv64::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot_and_is_order_sensitive() {
        let mut h = Fnv64::new();
        h.write_u8(b'f');
        h.write_bytes(b"oobar");
        assert_eq!(h.finish(), Fnv64::hash_bytes(b"foobar"));

        let mut ab = Fnv64::new();
        ab.write_u64(1);
        ab.write_u64(2);
        let mut ba = Fnv64::new();
        ba.write_u64(2);
        ba.write_u64(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn typed_writes_are_width_stable() {
        let mut a = Fnv64::new();
        a.write_usize(300);
        let mut b = Fnv64::new();
        b.write_u64(300);
        assert_eq!(a.finish(), b.finish());

        let mut t = Fnv64::new();
        t.write_bool(true);
        let mut one = Fnv64::new();
        one.write_u8(1);
        assert_eq!(t.finish(), one.finish());
    }
}
