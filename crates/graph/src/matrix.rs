//! The dense [`Matrix`] used for weights, distances and successors.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::NodeId;

/// A dense row-major `n x n`-capable matrix (rows and columns may differ).
///
/// All-pairs shortest path data is inherently dense — the Floyd–Warshall
/// variant in the paper fills every entry — so a flat `Vec` beats any
/// sparse representation here.
///
/// Indexing by `(NodeId, NodeId)` is provided so that routing code reads
/// like the pseudo-code in the paper: `dist[(i, j)]`.
///
/// # Examples
///
/// ```
/// use etx_graph::{Matrix, NodeId};
///
/// let mut m = Matrix::filled(2, 2, 0.0f64);
/// m[(NodeId::new(0), NodeId::new(1))] = 2.5;
/// assert_eq!(m[(NodeId::new(0), NodeId::new(1))], 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Default for Matrix<T> {
    /// An empty `0 x 0` matrix (grow it with [`Matrix::reset`]).
    fn default() -> Self {
        Matrix { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a `rows x cols` matrix with every entry set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix { rows, cols, data: vec![fill; len] }
    }
}

impl<T: Clone> Matrix<T> {
    /// Resizes to `rows x cols` with every entry set to `fill`, reusing
    /// the existing allocation whenever it is large enough.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn reset(&mut self, rows: usize, cols: usize, fill: T) {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, fill);
    }

    /// Copies dimensions and entries from `other`, reusing the existing
    /// allocation whenever it is large enough.
    pub fn copy_from(&mut self, other: &Matrix<T>) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clone_from(&other.data);
    }
}

impl<T> Matrix<T> {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowing accessor; `None` when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            self.data.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Mutable accessor; `None` when out of bounds.
    pub fn get_mut(&mut self, row: usize, col: usize) -> Option<&mut T> {
        if row < self.rows && col < self.cols {
            self.data.get_mut(row * self.cols + col)
        } else {
            None
        }
    }

    /// Iterates over a row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> impl Iterator<Item = &T> + '_ {
        assert!(row < self.rows, "row {row} out of bounds ({} rows)", self.rows);
        self.data[row * self.cols..(row + 1) * self.cols].iter()
    }

    /// Borrows one row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_slice(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds ({} rows)", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows one row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_slice_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row {row} out of bounds ({} rows)", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Splits the matrix into disjoint mutable blocks of up to
    /// `rows_per_chunk` consecutive rows — the handoff used to compute
    /// independent all-pairs rows on separate threads.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_chunk` is zero.
    pub fn row_chunks_mut(&mut self, rows_per_chunk: usize) -> impl Iterator<Item = &mut [T]> {
        assert!(rows_per_chunk > 0, "rows_per_chunk must be non-zero");
        self.data.chunks_mut(rows_per_chunk * self.cols.max(1))
    }

    /// The full row-major backing slice (`rows * cols` entries) — the
    /// contiguous plane view that gather loops and SoA exporters stream
    /// over without per-row bookkeeping.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Iterates over all `(row, col, &value)` triples in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        self.data.iter().enumerate().map(move |(k, v)| (k / self.cols, k % self.cols, v))
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Matrix<U> {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(f).collect() }
    }

    /// Consumes the matrix and returns the row-major data.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(row < self.rows && col < self.cols, "matrix index ({row},{col}) out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(row < self.rows && col < self.cols, "matrix index ({row},{col}) out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl<T> Index<(NodeId, NodeId)> for Matrix<T> {
    type Output = T;
    fn index(&self, (row, col): (NodeId, NodeId)) -> &T {
        &self[(row.index(), col.index())]
    }
}

impl<T> IndexMut<(NodeId, NodeId)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (NodeId, NodeId)) -> &mut T {
        &mut self[(row.index(), col.index())]
    }
}

impl<T: fmt::Display> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let mut m = Matrix::filled(2, 3, 0i32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 9;
        assert_eq!(m[(1, 2)], 9);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m.get(1, 2), Some(&9));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
        *m.get_mut(0, 1).unwrap() = 4;
        assert_eq!(m[(0, 1)], 4);
    }

    #[test]
    fn node_id_indexing() {
        let mut m = Matrix::filled(2, 2, 0.0f64);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        m[(a, b)] = 1.5;
        assert_eq!(m[(a, b)], 1.5);
    }

    #[test]
    fn from_vec_row_major() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(m[(0, 0)], 1);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m[(1, 0)], 3);
        assert_eq!(m[(1, 1)], 4);
        assert_eq!(m.clone().into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let m = Matrix::filled(2, 2, 0);
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_iteration() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let row1: Vec<_> = m.row(1).copied().collect();
        assert_eq!(row1, vec![4, 5, 6]);
    }

    #[test]
    fn entries_iteration() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let all: Vec<_> = m.entries().map(|(r, c, v)| (r, c, *v)).collect();
        assert_eq!(all, vec![(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
    }

    #[test]
    fn map_preserves_shape() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let d = m.map(|v| *v as f64 * 0.5);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d.rows(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let s = m.to_string();
        assert!(s.contains('1') && s.contains('4'));
    }
}
