//! Directed-graph substrate for e-textile networks.
//!
//! The routing algorithms of Kao & Marculescu (DATE'05) operate on an
//! adjacency-matrix representation of the communication network and run a
//! Floyd–Warshall variant that tracks, for every pair `(i, j)`, both the
//! shortest distance `D[i][j]` and the *successor* `S[i][j]` — the next hop
//! out of `i` on a shortest path to `j` (Fig 5 of the paper).
//!
//! This crate provides:
//!
//! * [`NodeId`] — a typed node index,
//! * [`Matrix`] — a dense row-major matrix used for weights, distances and
//!   successors,
//! * [`DiGraph`] — a directed graph whose edges carry physical
//!   [`Length`](etx_units::Length)s (textile transmission lines),
//! * [`floyd_warshall`] / [`ShortestPaths`] — the all-pairs computation
//!   (plus [`dijkstra_all_pairs`], an `O(K·E log K)` alternative backend
//!   that beats `O(K³)` on sparse fabrics),
//! * [`topology`] — mesh / torus / line / ring / star builders, including
//!   the coordinate bookkeeping for the paper's 2-D mesh ([`Mesh2D`]),
//! * [`connectivity`] — reachability helpers used for system-death checks.
//!
//! # Examples
//!
//! ```
//! use etx_graph::{topology::Mesh2D, floyd_warshall};
//! use etx_units::Length;
//!
//! let mesh = Mesh2D::new(4, 4, Length::from_centimetres(2.0));
//! let graph = mesh.to_graph();
//! let weights = graph.weight_matrix(|edge| edge.length.centimetres());
//! let paths = floyd_warshall(&weights);
//!
//! let a = mesh.node_at(1, 1).unwrap();
//! let b = mesh.node_at(4, 4).unwrap();
//! // Manhattan distance: 6 hops of 2 cm each.
//! assert_eq!(paths.distance(a, b), Some(12.0));
//! assert_eq!(paths.path(a, b).unwrap().len(), 7); // 7 nodes, 6 hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bitset;
mod digest;
mod digraph;
mod matrix;
mod node;
mod plane;
mod shortest;

pub mod connectivity;
pub mod dynamic;
pub mod topology;

pub use backend::{PathBackend, ResolvedBackend};
pub use bitset::NodeBitset;
pub use digest::Fnv64;
pub use digraph::{DiGraph, Edge, GraphError};
pub use dynamic::{
    dijkstra_source_tree_into, repair_source, RepairOutcome, RepairScratch, SpTreeStore,
    WeightDelta,
};
pub use matrix::Matrix;
pub use node::NodeId;
pub use plane::{IndexPlane, PlaneIdx};
pub use shortest::{
    dijkstra_all_pairs, dijkstra_all_pairs_into, dijkstra_source_into, floyd_warshall,
    floyd_warshall_into, AdjacencyList, DijkstraScratch, PathError, ShortestPaths,
    INFINITE_DISTANCE,
};
pub use topology::Mesh2D;
