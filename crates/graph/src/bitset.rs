//! [`NodeBitset`]: a word-packed set of node indices.
//!
//! The frame pipeline (engine → router → table) communicates *which*
//! nodes changed this TDMA frame through one of these: the engine sets a
//! bit at the drain/death/buffer site where a transition actually
//! happens, and every consumer downstream iterates **set words** instead
//! of scanning all `K` nodes. On a quiet fabric that turns per-frame
//! bookkeeping from `O(K)` into `O(K/64)` word skips plus `O(changed)`
//! real work.
//!
//! # Soundness of the changed-bitset contract
//!
//! A node whose bit is clear contributed **no transition** since the bit
//! was last cleared: nothing mutated its battery bucket, its liveness or
//! its deadlock flag, so any state derived from those inputs (a cached
//! report row, a cached liveness snapshot, a table-gate scan
//! contribution) is still valid and need not be re-examined. Consumers
//! may therefore restrict themselves to set bits. The reverse is *not*
//! required: a set bit whose node ended up back at its published value
//! is an over-approximation the consumers tolerate (they re-check the
//! actual values), never an error.

use crate::NodeId;

/// A fixed-capacity set of node indices packed 64 per `u64` word.
///
/// All operations are branch-light and allocation-free after
/// [`NodeBitset::resize`]; iteration visits indices in ascending order
/// (the same order a `0..n` scan would), which is what keeps
/// bitset-driven consumers byte-identical to their full-scan twins.
///
/// # Examples
///
/// ```
/// use etx_graph::{NodeBitset, NodeId};
///
/// let mut set = NodeBitset::new();
/// set.resize(130);
/// set.insert(NodeId::new(3));
/// set.insert(NodeId::new(128));
/// assert!(set.contains(NodeId::new(3)));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![NodeId::new(3), NodeId::new(128)]);
/// set.clear();
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBitset {
    words: Vec<u64>,
    /// Number of valid node indices (bits past `len` stay zero).
    len: usize,
}

impl NodeBitset {
    /// An empty set of capacity 0; size it with [`NodeBitset::resize`].
    #[must_use]
    pub fn new() -> Self {
        NodeBitset::default()
    }

    /// A cleared set covering indices `0..n`.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut set = NodeBitset::new();
        set.resize(n);
        set
    }

    /// Resizes to cover indices `0..n` and clears every bit. Reuses the
    /// existing allocation whenever it is large enough.
    pub fn resize(&mut self, n: usize) {
        let words = n.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = n;
    }

    /// Number of node indices covered (the `n` of the last resize).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Clears every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts `node`. Returns `true` when the bit was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.len, "node {i} out of range (capacity {})", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `node`. Returns `true` when the bit was set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.len, "node {i} out of range (capacity {})", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// `true` when `node`'s bit is set (`false` for out-of-range nodes).
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `true` when no bit is set. `O(words)`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits. `O(words)` popcounts.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed words (64 indices per word, LSB first).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Feeds the set's capacity and packed membership words into
    /// `hasher`: two sets digest equal iff they have the same capacity
    /// and the same members (tail bits past `len` are never set, so the
    /// packed words are canonical).
    pub fn digest_into(&self, hasher: &mut crate::Fnv64) {
        hasher.write_usize(self.len);
        for &word in &self.words {
            hasher.write_u64(word);
        }
    }

    /// Iterates the set indices in ascending order, skipping whole empty
    /// words.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::new(wi * 64 + bit))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = NodeBitset::with_capacity(70);
        assert!(set.is_empty());
        assert!(set.insert(NodeId::new(0)));
        assert!(!set.insert(NodeId::new(0)), "double insert reports not-fresh");
        assert!(set.insert(NodeId::new(69)));
        assert!(set.contains(NodeId::new(0)) && set.contains(NodeId::new(69)));
        assert!(!set.contains(NodeId::new(68)));
        assert!(!set.contains(NodeId::new(1_000)), "out of range reads as absent");
        assert_eq!(set.count(), 2);
        assert!(set.remove(NodeId::new(0)));
        assert!(!set.remove(NodeId::new(0)));
        assert_eq!(set.count(), 1);
    }

    #[test]
    fn iteration_is_ascending_and_word_skipping() {
        let mut set = NodeBitset::with_capacity(200);
        for i in [199, 0, 64, 63, 128, 5] {
            set.insert(NodeId::new(i));
        }
        let got: Vec<usize> = set.iter().map(NodeId::index).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn resize_clears_and_reuses() {
        let mut set = NodeBitset::with_capacity(128);
        set.insert(NodeId::new(100));
        set.resize(64);
        assert!(set.is_empty());
        assert_eq!(set.capacity(), 64);
        set.insert(NodeId::new(63));
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut set = NodeBitset::with_capacity(10);
        set.insert(NodeId::new(10));
    }
}
