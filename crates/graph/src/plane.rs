//! [`IndexPlane`]: a contiguous plane of compacted node indices.
//!
//! The serve tier's struct-of-arrays snapshots store node indices
//! (successors, route destinations, first hops) in flat planes instead
//! of `Option<NodeId>`-shaped structs. On every current workload the
//! node count fits a `u16`, so a plane packs indices 4–8x denser than
//! the machine-word `NodeId` it replaces — the difference between a
//! route table that lives in L1 and one that is chased through L2 on
//! every batched lookup. "No index" is a reserved sentinel (the
//! all-ones value of the lane type), which keeps the plane a plain
//! slice of unsigned integers that gather loops can stream over.
//!
//! Planes pick their lane width from the caller-supplied *index bound*
//! (the exclusive upper bound of representable indices): bounds up to
//! [`IndexPlane::NARROW_BOUND`] use `u16` lanes, anything larger falls
//! back to `u32` lanes. The width decision is data-independent, so two
//! planes filled from equal data under equal bounds compare equal.

/// A lane element of an [`IndexPlane`]: an unsigned integer whose
/// all-ones value is reserved as the "no index" sentinel.
///
/// Implemented for `u16` (the compact plane used whenever the node
/// count allows) and `u32` (the wide fallback). Gather loops that are
/// generic over this trait monomorphize into one tight loop per width —
/// no per-element enum dispatch.
pub trait PlaneIdx: Copy + Eq {
    /// The reserved "no index" value (`Self::MAX`).
    const SENTINEL: Self;

    /// Widens a lane value back to a `usize` index.
    fn expand(self) -> usize;

    /// Narrows an index into a lane value.
    ///
    /// Callers guarantee `index` is below the plane's index bound (and
    /// therefore below the sentinel); the conversions cannot truncate.
    fn compact(index: usize) -> Self;
}

impl PlaneIdx for u16 {
    const SENTINEL: u16 = u16::MAX;

    #[inline]
    fn expand(self) -> usize {
        usize::from(self)
    }

    #[inline]
    fn compact(index: usize) -> Self {
        index as u16
    }
}

impl PlaneIdx for u32 {
    const SENTINEL: u32 = u32::MAX;

    #[inline]
    fn expand(self) -> usize {
        usize::try_from(self).expect("index plane value exceeds usize")
    }

    #[inline]
    fn compact(index: usize) -> Self {
        index as u32
    }
}

/// A flat plane of optional node indices, `u16`-compacted when the
/// index bound allows and `u32` otherwise, with the lane type's
/// all-ones value as the "no index" sentinel.
///
/// Refills reuse the backing allocation whenever the width regime is
/// unchanged (it only changes when the covered system's dimensions
/// change), so steady-state refill performs no heap allocation — the
/// same discipline as [`Matrix`](crate::Matrix) and
/// [`NodeBitset`](crate::NodeBitset).
///
/// # Examples
///
/// ```
/// use etx_graph::IndexPlane;
///
/// let mut plane = IndexPlane::new();
/// plane.fill_with(3, 100, |i| if i == 1 { None } else { Some(i * 10) });
/// assert!(!plane.is_wide());
/// assert_eq!(plane.get(0), Some(0));
/// assert_eq!(plane.get(1), None);
/// assert_eq!(plane.get(2), Some(20));
/// assert_eq!(plane.get(3), None); // out of range reads as absent
///
/// // Bounds past the u16 range fall back to u32 lanes.
/// plane.fill_with(2, 70_000, |i| Some(65_536 + i));
/// assert!(plane.is_wide());
/// assert_eq!(plane.get(1), Some(65_537));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexPlane {
    /// `u16` lanes (index bound ≤ [`IndexPlane::NARROW_BOUND`]).
    Narrow(Vec<u16>),
    /// `u32` lanes (the wide fallback).
    Wide(Vec<u32>),
}

impl Default for IndexPlane {
    fn default() -> Self {
        IndexPlane::Narrow(Vec::new())
    }
}

impl IndexPlane {
    /// The largest index bound a narrow (`u16`) plane can represent:
    /// indices `0..=65534`, keeping `u16::MAX` free as the sentinel.
    pub const NARROW_BOUND: usize = u16::MAX as usize;

    /// An empty narrow plane.
    #[must_use]
    pub fn new() -> Self {
        IndexPlane::default()
    }

    /// `true` when `index_bound` (exclusive upper bound of stored
    /// indices) fits the narrow `u16` plane.
    #[must_use]
    pub fn narrow_fits(index_bound: usize) -> bool {
        index_bound <= Self::NARROW_BOUND
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            IndexPlane::Narrow(v) => v.len(),
            IndexPlane::Wide(v) => v.len(),
        }
    }

    /// `true` when the plane holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the plane runs `u32` lanes (the wide fallback).
    #[must_use]
    pub fn is_wide(&self) -> bool {
        matches!(self, IndexPlane::Wide(_))
    }

    /// The entry at `i`; `None` for the sentinel and for out-of-range
    /// positions.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<usize> {
        match self {
            IndexPlane::Narrow(v) => {
                v.get(i).and_then(|&x| (x != u16::SENTINEL).then(|| x.expand()))
            }
            IndexPlane::Wide(v) => v.get(i).and_then(|&x| (x != u32::SENTINEL).then(|| x.expand())),
        }
    }

    /// The narrow lane slice, when this plane is narrow.
    #[must_use]
    pub fn narrow(&self) -> Option<&[u16]> {
        match self {
            IndexPlane::Narrow(v) => Some(v),
            IndexPlane::Wide(_) => None,
        }
    }

    /// The wide lane slice, when this plane is wide.
    #[must_use]
    pub fn wide(&self) -> Option<&[u32]> {
        match self {
            IndexPlane::Wide(v) => Some(v),
            IndexPlane::Narrow(_) => None,
        }
    }

    /// Switches to the narrow width if needed and clears, returning the
    /// lane buffer for appending. Reuses the allocation when already
    /// narrow.
    pub fn reset_narrow(&mut self) -> &mut Vec<u16> {
        if !matches!(self, IndexPlane::Narrow(_)) {
            *self = IndexPlane::Narrow(Vec::new());
        }
        let IndexPlane::Narrow(v) = self else { unreachable!("just reset to narrow") };
        v.clear();
        v
    }

    /// Switches to the wide width if needed and clears, returning the
    /// lane buffer for appending. Reuses the allocation when already
    /// wide.
    pub fn reset_wide(&mut self) -> &mut Vec<u32> {
        if !matches!(self, IndexPlane::Wide(_)) {
            *self = IndexPlane::Wide(Vec::new());
        }
        let IndexPlane::Wide(v) = self else { unreachable!("just reset to wide") };
        v.clear();
        v
    }

    /// Refills the plane with `len` entries produced by `f`, picking the
    /// lane width from `index_bound` (the exclusive upper bound of every
    /// `Some` index `f` may return).
    ///
    /// # Panics
    ///
    /// Panics if `f` returns an index at or above `index_bound`.
    pub fn fill_with(
        &mut self,
        len: usize,
        index_bound: usize,
        mut f: impl FnMut(usize) -> Option<usize>,
    ) {
        if Self::narrow_fits(index_bound) {
            let v = self.reset_narrow();
            v.reserve(len);
            for i in 0..len {
                v.push(match f(i) {
                    Some(x) => {
                        assert!(x < index_bound, "index {x} at or above bound {index_bound}");
                        u16::compact(x)
                    }
                    None => u16::SENTINEL,
                });
            }
        } else {
            assert!(
                index_bound < u32::SENTINEL.expand(),
                "index bound {index_bound} exceeds the wide plane"
            );
            let v = self.reset_wide();
            v.reserve(len);
            for i in 0..len {
                v.push(match f(i) {
                    Some(x) => {
                        assert!(x < index_bound, "index {x} at or above bound {index_bound}");
                        u32::compact(x)
                    }
                    None => u32::SENTINEL,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_roundtrip_with_sentinels() {
        let mut plane = IndexPlane::new();
        plane.fill_with(5, 1_000, |i| (i % 2 == 0).then_some(i * 7));
        assert!(!plane.is_wide());
        assert_eq!(plane.len(), 5);
        assert_eq!(plane.get(0), Some(0));
        assert_eq!(plane.get(1), None);
        assert_eq!(plane.get(4), Some(28));
        assert_eq!(plane.get(5), None);
        assert_eq!(plane.narrow().unwrap()[1], u16::MAX);
        assert!(plane.wide().is_none());
    }

    #[test]
    fn wide_fallback_holds_indices_past_u16() {
        // A node space larger than u16::MAX: only the *bound* is large —
        // the plane itself stays small, which is exactly why the wide
        // fallback is testable without a 65k-node system.
        let mut plane = IndexPlane::new();
        plane.fill_with(4, 70_000, |i| (i != 2).then_some(65_534 + i));
        assert!(plane.is_wide());
        assert_eq!(plane.get(0), Some(65_534));
        assert_eq!(plane.get(1), Some(65_535));
        assert_eq!(plane.get(2), None);
        assert_eq!(plane.get(3), Some(65_537));
        assert_eq!(plane.wide().unwrap()[2], u32::MAX);
        assert!(plane.narrow().is_none());
    }

    #[test]
    fn narrow_bound_is_exact() {
        // 65535 indices (0..=65534) still fit narrow; one more forces
        // the wide plane because u16::MAX is reserved as the sentinel.
        assert!(IndexPlane::narrow_fits(IndexPlane::NARROW_BOUND));
        assert!(!IndexPlane::narrow_fits(IndexPlane::NARROW_BOUND + 1));
        let mut plane = IndexPlane::new();
        plane.fill_with(1, IndexPlane::NARROW_BOUND, |_| Some(65_534));
        assert!(!plane.is_wide());
        assert_eq!(plane.get(0), Some(65_534));
        plane.fill_with(1, IndexPlane::NARROW_BOUND + 1, |_| Some(65_535));
        assert!(plane.is_wide());
        assert_eq!(plane.get(0), Some(65_535));
    }

    #[test]
    fn refill_reuses_width_and_replaces_content() {
        let mut plane = IndexPlane::new();
        plane.fill_with(3, 100, Some);
        plane.fill_with(2, 100, |i| Some(i + 10));
        assert_eq!(plane.len(), 2);
        assert_eq!(plane.get(0), Some(10));
        assert_eq!(plane.get(2), None);
        // Width regime changes swap the backing store both ways.
        plane.fill_with(2, 100_000, |_| Some(99_999));
        assert!(plane.is_wide());
        plane.fill_with(2, 100, |_| Some(9));
        assert!(!plane.is_wide());
        assert_eq!(plane.get(1), Some(9));
    }

    #[test]
    #[should_panic(expected = "at or above bound")]
    fn out_of_bound_index_panics() {
        let mut plane = IndexPlane::new();
        plane.fill_with(1, 10, |_| Some(10));
    }

    #[test]
    fn equality_tracks_data_and_width() {
        let mut a = IndexPlane::new();
        let mut b = IndexPlane::new();
        a.fill_with(3, 50, Some);
        b.fill_with(3, 50, Some);
        assert_eq!(a, b);
        b.fill_with(3, 70_000, Some);
        assert_ne!(a, b, "width is part of the representation");
    }
}
