//! The [`DiGraph`] directed graph with physical edge lengths.

use core::fmt;

use etx_units::Length;

use crate::{Matrix, NodeId};

/// A directed edge carrying the physical length of its transmission line.
///
/// E-textile links are *directed* in the paper's formulation (the edge
/// weight matrices `W` are not required to be symmetric), although mesh
/// builders create both directions with equal lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Physical length of the textile transmission line.
    pub length: Length,
}

/// Errors raised by [`DiGraph`] mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was not a node of this graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop was requested; the platform has no loopback lines.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop(node) => write!(f, "self-loop on {node} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Source of globally unique [`DiGraph::version_stamp`] values: every
/// graph construction and every mutation draws a fresh value, so two
/// graphs that ever diverged can never share a stamp.
static NEXT_VERSION_STAMP: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(1);

fn fresh_version_stamp() -> u64 {
    NEXT_VERSION_STAMP.fetch_add(1, core::sync::atomic::Ordering::Relaxed)
}

/// A directed graph over dense node ids, with [`Length`]-weighted edges.
///
/// Stored as a dense adjacency matrix of `Option<Length>` — the paper's
/// algorithms are `O(n^3)` over the full matrix anyway, and e-textile
/// networks are "tens to a few hundreds of nodes".
///
/// # Examples
///
/// ```
/// use etx_graph::{DiGraph, NodeId};
/// use etx_units::Length;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Length::from_centimetres(10.0))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2), Length::from_centimetres(10.0))?;
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
/// # Ok::<(), etx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiGraph {
    node_count: usize,
    adjacency: Matrix<Option<Length>>,
    edge_count: usize,
    version_stamp: u64,
}

/// Equality compares the graph *content* (nodes and edges); the version
/// stamp is an identity aid for caches and is excluded.
impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_count == other.node_count
            && self.edge_count == other.edge_count
            && self.adjacency == other.adjacency
    }
}

impl DiGraph {
    /// Creates a graph with `node_count` nodes and no edges.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        DiGraph {
            node_count,
            adjacency: Matrix::filled(node_count, node_count, None),
            edge_count: 0,
            version_stamp: fresh_version_stamp(),
        }
    }

    /// An opaque value identifying this graph's exact edge content:
    /// refreshed (globally uniquely) on every mutation and copied by
    /// `Clone`, so equal stamps imply identical edges. Routing caches key
    /// on it to detect graph changes in `O(1)` instead of re-hashing the
    /// edge list. (Stamps are conservative: independently built graphs
    /// with identical edges get different stamps.)
    #[must_use]
    pub fn version_stamp(&self) -> u64 {
        self.version_stamp
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId::new)
    }

    /// Checks whether `node` belongs to this graph.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.node_count
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { node, node_count: self.node_count })
        }
    }

    /// Adds (or replaces) the directed edge `from -> to`.
    ///
    /// Returns the previous length if the edge already existed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for unknown endpoints and
    /// [`GraphError::SelfLoop`] when `from == to`.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        length: Length,
    ) -> Result<Option<Length>, GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        let prev = self.adjacency[(from, to)].replace(length);
        if prev.is_none() {
            self.edge_count += 1;
        }
        self.version_stamp = fresh_version_stamp();
        Ok(prev)
    }

    /// Adds both `a -> b` and `b -> a` with the same length.
    ///
    /// # Errors
    ///
    /// Same as [`DiGraph::add_edge`].
    pub fn add_edge_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: Length,
    ) -> Result<(), GraphError> {
        self.add_edge(a, b, length)?;
        self.add_edge(b, a, length)?;
        Ok(())
    }

    /// Removes the directed edge `from -> to`, returning its length.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Option<Length> {
        if !self.contains(from) || !self.contains(to) {
            return None;
        }
        let prev = self.adjacency[(from, to)].take();
        if prev.is_some() {
            self.edge_count -= 1;
            self.version_stamp = fresh_version_stamp();
        }
        prev
    }

    /// `true` if the directed edge `from -> to` exists.
    #[must_use]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_length(from, to).is_some()
    }

    /// The length of edge `from -> to`, if present.
    #[must_use]
    pub fn edge_length(&self, from: NodeId, to: NodeId) -> Option<Length> {
        if self.contains(from) && self.contains(to) {
            self.adjacency[(from, to)]
        } else {
            None
        }
    }

    /// Iterates over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.entries().filter_map(|(r, c, len)| {
            len.map(|length| Edge { from: NodeId::new(r), to: NodeId::new(c), length })
        })
    }

    /// Iterates over the out-neighbours of `node` (with edge lengths).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Length)> + '_ {
        let row = node.index();
        (0..self.node_count).filter_map(move |c| {
            self.adjacency.get(row, c).and_then(|len| len.map(|l| (NodeId::new(c), l)))
        })
    }

    /// Out-degree of `node`.
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.neighbors(node).count()
    }

    /// Builds a cost matrix from the adjacency structure.
    ///
    /// Entry `(i, i)` is `0`, entry `(i, j)` is `cost(edge)` when the edge
    /// exists and [`INFINITE_DISTANCE`](crate::INFINITE_DISTANCE)
    /// otherwise — exactly the `W` matrix construction of the paper's
    /// phase 1 (for both SDR and EAR, which differ only in `cost`).
    #[must_use]
    pub fn weight_matrix<F: FnMut(Edge) -> f64>(&self, mut cost: F) -> Matrix<f64> {
        let n = self.node_count;
        let mut w = Matrix::filled(n, n, crate::INFINITE_DISTANCE);
        for i in 0..n {
            w[(i, i)] = 0.0;
        }
        for edge in self.edges() {
            w[(edge.from, edge.to)] = cost(edge);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 4);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn add_remove_edges() {
        let mut g = DiGraph::new(3);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(g.add_edge(a, b, cm(5.0)).unwrap(), None);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_length(a, b), Some(cm(5.0)));
        // replacing returns the old value and keeps the count
        assert_eq!(g.add_edge(a, b, cm(7.0)).unwrap(), Some(cm(5.0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.remove_edge(a, b), Some(cm(7.0)));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.remove_edge(a, b), None);
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn rejects_self_loop_and_bad_nodes() {
        let mut g = DiGraph::new(2);
        let err = g.add_edge(NodeId::new(0), NodeId::new(0), cm(1.0)).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(NodeId::new(0)));
        let err = g.add_edge(NodeId::new(0), NodeId::new(5), cm(1.0)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn neighbors_and_degree() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2), cm(2.0)).unwrap();
        let ns: Vec<_> = g.neighbors(NodeId::new(0)).collect();
        assert_eq!(ns, vec![(NodeId::new(1), cm(1.0)), (NodeId::new(2), cm(2.0))]);
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.out_degree(NodeId::new(3)), 0);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let mut g = DiGraph::new(3);
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(0), cm(3.0)).unwrap();
        assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn weight_matrix_structure() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(4.0)).unwrap();
        let w = g.weight_matrix(|e| e.length.centimetres());
        assert_eq!(w[(0, 0)], 0.0);
        assert_eq!(w[(0, 1)], 4.0);
        assert_eq!(w[(1, 0)], crate::INFINITE_DISTANCE);
        assert_eq!(w[(2, 2)], 0.0);
    }
}
