//! The [`NodeId`] index type.

use core::fmt;

/// Identifier of a node in a [`DiGraph`](crate::DiGraph).
///
/// Node ids are dense indices `0..node_count`, which keeps the
/// adjacency/distance/successor matrices flat and cache-friendly — the same
/// representation the paper assumes ("our algorithms use an
/// adjacency-matrix representation").
///
/// # Examples
///
/// ```
/// use etx_graph::NodeId;
///
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), n);
        assert_eq!(usize::from(n), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
    }
}
