//! Floyd–Warshall all-pairs shortest paths with successor matrices.
//!
//! This is phase 2 of both SDR and EAR (Fig 5 in the paper): given a weight
//! matrix `W`, compute the distance matrix `D` and the successor matrix `S`
//! where `S[i][j]` is the next hop out of `i` on a shortest `i -> j` path.

use core::fmt;

use crate::{Matrix, NodeId};

/// The weight used for "no edge" entries; any path through it loses.
pub const INFINITE_DISTANCE: f64 = f64::INFINITY;

/// Result of [`floyd_warshall`]: distances plus successors for path
/// reconstruction.
///
/// # Examples
///
/// ```
/// use etx_graph::{DiGraph, NodeId, floyd_warshall};
/// use etx_units::Length;
///
/// let mut g = DiGraph::new(3);
/// let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
/// g.add_edge(a, b, Length::from_centimetres(1.0))?;
/// g.add_edge(b, c, Length::from_centimetres(1.0))?;
/// g.add_edge(a, c, Length::from_centimetres(5.0))?;
///
/// let paths = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
/// assert_eq!(paths.distance(a, c), Some(2.0)); // via b, not the direct 5.0 edge
/// assert_eq!(paths.successor(a, c), Some(b));
/// assert_eq!(paths.path(a, c).unwrap(), vec![a, b, c]);
/// # Ok::<(), etx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    dist: Matrix<f64>,
    succ: Matrix<Option<NodeId>>,
}

/// Errors raised during path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// No path exists between the endpoints.
    Unreachable {
        /// Path source.
        from: NodeId,
        /// Path target.
        to: NodeId,
    },
    /// Successor chain did not terminate (only possible with negative
    /// cycles or a corrupted successor matrix).
    CycleDetected {
        /// Path source.
        from: NodeId,
        /// Path target.
        to: NodeId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Unreachable { from, to } => {
                write!(f, "no path from {from} to {to}")
            }
            PathError::CycleDetected { from, to } => {
                write!(f, "successor cycle while walking from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

impl ShortestPaths {
    /// Number of nodes covered by this result.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dist.rows()
    }

    /// Shortest distance `from -> to`; `None` if unreachable.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let d = self.dist[(from, to)];
        d.is_finite().then_some(d)
    }

    /// The next hop out of `from` on a shortest path to `to`.
    ///
    /// `None` when `from == to` or `to` is unreachable.
    #[must_use]
    pub fn successor(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        self.succ[(from, to)]
    }

    /// `true` if a path `from -> to` exists (trivially true for `from == to`).
    #[must_use]
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.dist[(from, to)].is_finite()
    }

    /// Reconstructs the full node sequence of a shortest path.
    ///
    /// The result includes both endpoints; `path(a, a)` is `[a]`.
    ///
    /// # Errors
    ///
    /// [`PathError::Unreachable`] when no path exists, and
    /// [`PathError::CycleDetected`] if the successor chain exceeds the node
    /// count (defensive guard; cannot happen with non-negative weights).
    pub fn path(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, PathError> {
        if !self.is_reachable(from, to) {
            return Err(PathError::Unreachable { from, to });
        }
        let mut nodes = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self.successor(cur, to).ok_or(PathError::Unreachable { from, to })?;
            nodes.push(cur);
            if nodes.len() > self.node_count() {
                return Err(PathError::CycleDetected { from, to });
            }
        }
        Ok(nodes)
    }

    /// Number of hops (edges) on the shortest path, if reachable.
    ///
    /// Walks the successor matrix directly without materializing the path
    /// vector, so it performs no allocation. Returns `None` when `to` is
    /// unreachable or the successor chain is corrupt (the conditions
    /// [`ShortestPaths::path`] reports as errors).
    #[must_use]
    pub fn hop_count(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if !self.is_reachable(from, to) {
            return None;
        }
        let mut hops = 0usize;
        let mut cur = from;
        while cur != to {
            cur = self.successor(cur, to)?;
            hops += 1;
            if hops >= self.node_count() {
                return None; // defensive: cycle in a corrupt matrix
            }
        }
        Some(hops)
    }

    /// Read-only view of the distance matrix.
    #[must_use]
    pub fn distances(&self) -> &Matrix<f64> {
        &self.dist
    }

    /// Read-only view of the successor matrix.
    #[must_use]
    pub fn successors(&self) -> &Matrix<Option<NodeId>> {
        &self.succ
    }

    /// An empty (0-node) result, for preallocated workspaces that are
    /// filled by the `*_into` backends before first use.
    #[must_use]
    pub fn empty() -> Self {
        ShortestPaths { dist: Matrix::filled(0, 0, 0.0), succ: Matrix::filled(0, 0, None) }
    }

    /// Resizes to `n` nodes and resets every pair to "unreachable"
    /// (`dist = ∞`, diagonal `0`, successors `None`), reusing the
    /// existing allocations whenever they are large enough.
    pub fn reset(&mut self, n: usize) {
        self.dist.reset(n, n, INFINITE_DISTANCE);
        self.succ.reset(n, n, None);
        for i in 0..n {
            self.dist[(i, i)] = 0.0;
        }
    }

    /// Ensures the matrices are `n x n` without touching existing
    /// entries when the dimensions already match — for callers about to
    /// overwrite every row anyway ([`dijkstra_all_pairs_into`]), skipping
    /// the `2·n²` fill a full [`ShortestPaths::reset`] would pay.
    fn ensure_dims(&mut self, n: usize) {
        if self.dist.rows() != n || self.dist.cols() != n {
            self.reset(n);
        }
    }

    /// Mutably borrows the distance and successor rows of one source —
    /// the write target of a single-source recompute
    /// ([`dijkstra_source_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn source_rows_mut(&mut self, source: NodeId) -> (&mut [f64], &mut [Option<NodeId>]) {
        (self.dist.row_slice_mut(source.index()), self.succ.row_slice_mut(source.index()))
    }
}

/// Runs the Floyd–Warshall variant of the paper (Fig 5) on a weight matrix.
///
/// `weights[(i, j)]` must be `0` on the diagonal, the edge cost for
/// existing edges and [`INFINITE_DISTANCE`] otherwise — exactly what
/// [`DiGraph::weight_matrix`](crate::DiGraph::weight_matrix) produces.
/// Costs must be non-negative (battery-scaled lengths always are).
///
/// Complexity is `O(n^3)` time, `O(n^2)` space, matching the paper's
/// analysis ("practical for graphs consisting of tens to a few hundreds of
/// nodes").
///
/// Tie-breaking follows Fig 5 exactly: an intermediate node `n` replaces
/// the current successor only on a *strict* improvement, so earlier
/// intermediates win ties deterministically.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
#[must_use]
pub fn floyd_warshall(weights: &Matrix<f64>) -> ShortestPaths {
    let mut out = ShortestPaths::empty();
    floyd_warshall_into(weights, &mut out);
    out
}

fn validate_weights(weights: &Matrix<f64>) {
    assert_eq!(weights.rows(), weights.cols(), "weight matrix must be square");
    for (r, c, w) in weights.entries() {
        assert!(!w.is_nan(), "weight ({r},{c}) is NaN");
        assert!(*w >= 0.0, "weight ({r},{c}) is negative: {w}");
    }
}

/// [`floyd_warshall`] into a preallocated result: no heap allocation once
/// `out` has seen the current node count.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
pub fn floyd_warshall_into(weights: &Matrix<f64>, out: &mut ShortestPaths) {
    validate_weights(weights);
    let n = weights.rows();

    out.dist.copy_from(weights);
    // S^(0): the successor of i toward a directly-connected j is j itself.
    out.succ.reset(n, n, None);
    let (dist, succ) = (&mut out.dist, &mut out.succ);
    for i in 0..n {
        for j in 0..n {
            if i != j && dist[(i, j)].is_finite() {
                succ[(i, j)] = Some(NodeId::new(j));
            }
        }
    }

    for k in 0..n {
        for i in 0..n {
            let d_ik = dist[(i, k)];
            if !d_ik.is_finite() {
                continue;
            }
            for j in 0..n {
                let via = d_ik + dist[(k, j)];
                if via < dist[(i, j)] {
                    dist[(i, j)] = via;
                    succ[(i, j)] = succ[(i, k)];
                }
            }
        }
    }
}

/// Sparse out-neighbour lists extracted from a weight matrix, kept sorted
/// by neighbour id so that incremental updates preserve the exact
/// iteration order a full rebuild would produce (Dijkstra's successor
/// tie-breaking depends on it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjacencyList {
    lists: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
}

impl AdjacencyList {
    /// An empty adjacency list; call [`AdjacencyList::rebuild`] before use.
    #[must_use]
    pub fn new() -> Self {
        AdjacencyList::default()
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// `true` when covering zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The out-neighbours of `u` as `(neighbour, weight)`, ascending by
    /// neighbour id.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.lists[u]
    }

    /// Total number of (finite, off-diagonal) edges currently held —
    /// an upper bound on a Dijkstra run's live heap entries, used to
    /// pre-size the heap so steady-state runs never reallocate it.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Re-extracts every list from `weights`, reusing per-node capacity.
    pub fn rebuild(&mut self, weights: &Matrix<f64>) {
        let n = weights.rows();
        self.lists.resize_with(n, Vec::new);
        self.edge_count = 0;
        for (r, list) in self.lists.iter_mut().enumerate() {
            list.clear();
            for (c, w) in weights.row_slice(r).iter().enumerate() {
                if r != c && w.is_finite() {
                    list.push((c, *w));
                }
            }
            self.edge_count += list.len();
        }
    }

    /// Re-extracts every list from the *transpose* of `weights`, so
    /// `neighbors(v)` yields the **in**-neighbours `(u, w(u, v))` of `v`,
    /// ascending by `u`. The incremental path repair uses this to find a
    /// node's shortest-path achievers in `O(indeg)` instead of an `O(K)`
    /// column scan.
    pub fn rebuild_transpose(&mut self, weights: &Matrix<f64>) {
        let n = weights.rows();
        self.lists.resize_with(n, Vec::new);
        self.edge_count = 0;
        for list in &mut self.lists {
            list.clear();
        }
        for (r, c, w) in weights.entries() {
            if r != c && w.is_finite() {
                self.lists[c].push((r, *w));
                self.edge_count += 1;
            }
        }
    }

    /// [`AdjacencyList::sync_node`] for a transposed list built by
    /// [`AdjacencyList::rebuild_transpose`]: re-synchronizes every edge
    /// touching node `j` (its in-list, and its entry in every other
    /// in-list) with `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or the list dimensions do not match `weights`.
    pub fn sync_node_transpose(&mut self, j: usize, weights: &Matrix<f64>) {
        let n = weights.rows();
        assert_eq!(self.lists.len(), n, "adjacency does not match weights");
        assert!(j < n, "node {j} out of range");
        // In-edges of j: rebuild its list from column j in one pass.
        self.edge_count -= self.lists[j].len();
        self.lists[j].clear();
        for r in 0..n {
            let w = weights[(r, j)];
            if r != j && w.is_finite() {
                self.lists[j].push((r, w));
            }
        }
        self.edge_count += self.lists[j].len();
        // Out-edges of j: fix the (sorted) position of j in every list.
        for (i, list) in self.lists.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            let w = weights[(j, i)];
            match list.binary_search_by_key(&j, |&(c, _)| c) {
                Ok(pos) if w.is_finite() => list[pos].1 = w,
                Ok(pos) => {
                    list.remove(pos);
                    self.edge_count -= 1;
                }
                Err(pos) if w.is_finite() => {
                    list.insert(pos, (j, w));
                    self.edge_count += 1;
                }
                Err(_) => {}
            }
        }
    }

    /// Re-synchronizes the edges touching node `j` with `weights`: its
    /// out-list is rebuilt and its entry in every other out-list is
    /// inserted, updated, or removed. Equivalent to a full
    /// [`AdjacencyList::rebuild`] when only edges incident to `j` changed,
    /// at `O(K + Σ deg)` instead of `O(K²)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or the list dimensions do not match `weights`.
    pub fn sync_node(&mut self, j: usize, weights: &Matrix<f64>) {
        let n = weights.rows();
        assert_eq!(self.lists.len(), n, "adjacency does not match weights");
        assert!(j < n, "node {j} out of range");
        // Out-edges of j: rebuild the list in one pass.
        self.edge_count -= self.lists[j].len();
        self.lists[j].clear();
        for (c, w) in weights.row_slice(j).iter().enumerate() {
            if j != c && w.is_finite() {
                self.lists[j].push((c, *w));
            }
        }
        self.edge_count += self.lists[j].len();
        // In-edges of j: fix the (sorted) position of j in every list.
        for (i, list) in self.lists.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            let w = weights[(i, j)];
            match list.binary_search_by_key(&j, |&(c, _)| c) {
                Ok(pos) if w.is_finite() => list[pos].1 = w,
                Ok(pos) => {
                    list.remove(pos);
                    self.edge_count -= 1;
                }
                Err(pos) if w.is_finite() => {
                    list.insert(pos, (j, w));
                    self.edge_count += 1;
                }
                Err(_) => {}
            }
        }
    }
}

/// Min-heap entry: `(distance, node)` packed into one `u128`, so every
/// heap comparison is a single integer compare.
///
/// Non-negative, non-NaN `f64`s (validated up front) compare identically
/// to their raw bit patterns, so the packed order is exactly "distance
/// ascending, then node id ascending" — the deterministic tie-break the
/// delta recompute depends on. Keys are unique (a node is only re-pushed
/// on a strict distance improvement), so pop order is a total order and
/// independent of the heap implementation.
#[inline]
pub(crate) fn pack_entry(distance: f64, node: usize) -> u128 {
    (u128::from(distance.to_bits()) << 64) | node as u128
}

#[inline]
pub(crate) fn unpack_entry(key: u128) -> (f64, usize) {
    (f64::from_bits((key >> 64) as u64), (key & u128::from(u64::MAX)) as usize)
}

/// Reusable per-thread working memory for single-source Dijkstra runs.
///
/// All buffers retain their capacity across calls, so a steady-state
/// recompute loop performs no heap allocation (the property the simulator
/// relies on; see `etx-routing`'s `RoutingScratch`).
///
/// The queue is `std`'s binary heap over `Reverse`-packed keys: a
/// hand-rolled 4-ary heap was tried and measured ~35% *slower* here —
/// `BinaryHeap`'s hole-based sift is hard to beat once comparisons are
/// single integers.
#[derive(Default)]
pub struct DijkstraScratch {
    pub(crate) heap: std::collections::BinaryHeap<core::cmp::Reverse<u128>>,
}

impl core::fmt::Debug for DijkstraScratch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DijkstraScratch").field("capacity", &self.heap.capacity()).finish()
    }
}

impl DijkstraScratch {
    /// A scratch with no capacity; grows on first use.
    #[must_use]
    pub fn new() -> Self {
        DijkstraScratch::default()
    }
}

/// Recomputes the all-pairs rows of `source` by binary-heap Dijkstra,
/// writing distances into `dist_row` and first hops into `succ_row`
/// (both of length `adjacency.len()`).
///
/// Successor tie-breaking is deterministic: the heap pops by
/// `(distance, node id)` and predecessors update only on strict
/// improvement, so re-running a source over an unchanged reachable
/// subgraph reproduces its rows bit-for-bit — the property the
/// delta-aware recompute in `etx-routing` relies on.
///
/// # Panics
///
/// Panics if `source` or the row lengths do not match `adjacency`.
pub fn dijkstra_source_into(
    adjacency: &AdjacencyList,
    source: NodeId,
    scratch: &mut DijkstraScratch,
    dist_row: &mut [f64],
    succ_row: &mut [Option<NodeId>],
) {
    let n = adjacency.len();
    assert!(source.index() < n, "source {source} out of range");
    assert_eq!(dist_row.len(), n, "distance row length mismatch");
    assert_eq!(succ_row.len(), n, "successor row length mismatch");
    let source = source.index();

    scratch.heap.clear();
    // At most one live heap entry per relaxed edge plus the source:
    // pre-sizing here means later runs never grow the heap mid-flight.
    let heap_bound = adjacency.edge_count() + 1;
    if scratch.heap.capacity() < heap_bound {
        scratch.heap.reserve(heap_bound);
    }

    // The output rows double as the tentative-distance / first-hop
    // arrays: a node's first hop is final when it settles (its
    // predecessor settled earlier), so no pred chain or second pass is
    // needed.
    dist_row.fill(INFINITE_DISTANCE);
    succ_row.fill(None);
    dist_row[source] = 0.0;
    scratch.heap.push(core::cmp::Reverse(pack_entry(0.0, source)));
    while let Some(core::cmp::Reverse(entry)) = scratch.heap.pop() {
        let (du, u) = unpack_entry(entry);
        if du > dist_row[u] {
            continue; // stale entry
        }
        let via_u = if u == source { None } else { succ_row[u] };
        for &(v, w) in adjacency.neighbors(u) {
            let nd = du + w;
            if nd < dist_row[v] {
                dist_row[v] = nd;
                // First hop toward v: v itself off the source, else the
                // settled first hop of u.
                succ_row[v] = via_u.or(Some(NodeId::new(v)));
                scratch.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
            }
        }
    }
}

/// Below this node count the scoped-thread fan-out of
/// [`dijkstra_all_pairs_into`] costs more than it saves.
const PARALLEL_MIN_NODES: usize = 128;

/// Minimum sources per worker thread for the parallel fan-out.
const PARALLEL_MIN_ROWS_PER_THREAD: usize = 32;

/// [`dijkstra_all_pairs`] into preallocated storage.
///
/// `adjacency` is rebuilt from `weights`; `out` is resized and every row
/// recomputed. With `parallel` set, sources are fanned out over scoped
/// threads in contiguous row blocks (each worker allocates its own
/// [`DijkstraScratch`]), producing bit-identical results to the serial
/// path since every row is an independent deterministic computation. The
/// serial path (`parallel = false`) reuses `scratch` and performs no
/// steady-state allocation.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
pub fn dijkstra_all_pairs_into(
    weights: &Matrix<f64>,
    adjacency: &mut AdjacencyList,
    scratch: &mut DijkstraScratch,
    out: &mut ShortestPaths,
    parallel: bool,
) {
    validate_weights(weights);
    let n = weights.rows();
    adjacency.rebuild(weights);
    // Every row is fully rewritten below, so only the dimensions need
    // fixing up front.
    out.ensure_dims(n);

    let threads = if parallel && n >= PARALLEL_MIN_NODES {
        etx_par::chunk_count(n, PARALLEL_MIN_ROWS_PER_THREAD)
    } else {
        1
    };
    if threads <= 1 {
        for source in 0..n {
            let (dist_row, succ_row) = out.source_rows_mut(NodeId::new(source));
            dijkstra_source_into(adjacency, NodeId::new(source), scratch, dist_row, succ_row);
        }
        return;
    }

    let rows_per_chunk = n.div_ceil(threads);
    let adjacency = &*adjacency;
    std::thread::scope(|scope| {
        for (chunk_idx, (dist_chunk, succ_chunk)) in out
            .dist
            .row_chunks_mut(rows_per_chunk)
            .zip(out.succ.row_chunks_mut(rows_per_chunk))
            .enumerate()
        {
            let first_source = chunk_idx * rows_per_chunk;
            scope.spawn(move || {
                let mut local = DijkstraScratch::new();
                for (offset, (dist_row, succ_row)) in
                    dist_chunk.chunks_mut(n).zip(succ_chunk.chunks_mut(n)).enumerate()
                {
                    dijkstra_source_into(
                        adjacency,
                        NodeId::new(first_source + offset),
                        &mut local,
                        dist_row,
                        succ_row,
                    );
                }
            });
        }
    });
}

/// Computes the same all-pairs result as [`floyd_warshall`] by running a
/// binary-heap Dijkstra from every source.
///
/// Complexity is `O(K · E log K)` — on sparse fabrics (meshes have
/// `E ≈ 4K`) that is `O(K² log K)`, asymptotically better than
/// Floyd–Warshall's `O(K³)`. The paper sizes its controller for "tens to
/// a few hundreds of nodes" with the `O(K³)` algorithm; this backend
/// shows how much headroom a smarter phase 2 would buy (see the
/// `routing_scaling` bench). Results are identical (verified by property
/// tests), including unreachability; tie-breaking may differ, so compare
/// distances, not successors.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
#[must_use]
pub fn dijkstra_all_pairs(weights: &Matrix<f64>) -> ShortestPaths {
    let mut adjacency = AdjacencyList::new();
    let mut scratch = DijkstraScratch::new();
    let mut out = ShortestPaths::empty();
    dijkstra_all_pairs_into(weights, &mut adjacency, &mut scratch, &mut out, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    fn line_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge_bidirectional(NodeId::new(i), NodeId::new(i + 1), cm(1.0)).unwrap();
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line_graph(5);
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(NodeId::new(0), NodeId::new(4)), Some(4.0));
        assert_eq!(p.distance(NodeId::new(4), NodeId::new(0)), Some(4.0));
        assert_eq!(p.distance(NodeId::new(2), NodeId::new(2)), Some(0.0));
        assert_eq!(p.hop_count(NodeId::new(0), NodeId::new(4)), Some(4));
    }

    #[test]
    fn prefers_cheaper_indirect_path() {
        let mut g = DiGraph::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        g.add_edge(a, c, cm(10.0)).unwrap();
        g.add_edge(a, b, cm(1.0)).unwrap();
        g.add_edge(b, c, cm(1.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(a, c), Some(2.0));
        assert_eq!(p.successor(a, c), Some(b));
        assert_eq!(p.path(a, c).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn unreachable_reported() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        let (a, c) = (NodeId::new(0), NodeId::new(2));
        assert_eq!(p.distance(a, c), None);
        assert!(!p.is_reachable(a, c));
        assert_eq!(p.path(a, c), Err(PathError::Unreachable { from: a, to: c }));
        assert!(p.path(a, c).unwrap_err().to_string().contains("no path"));
    }

    #[test]
    fn directed_asymmetry_respected() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(3.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(NodeId::new(0), NodeId::new(1)), Some(3.0));
        assert_eq!(p.distance(NodeId::new(1), NodeId::new(0)), None);
    }

    #[test]
    fn self_path_is_single_node() {
        let g = line_graph(3);
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.path(NodeId::new(1), NodeId::new(1)).unwrap(), vec![NodeId::new(1)]);
        assert_eq!(p.successor(NodeId::new(1), NodeId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weights_rejected() {
        let w = Matrix::from_vec(2, 2, vec![0.0, -1.0, 1.0, 0.0]);
        let _ = floyd_warshall(&w);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let w = Matrix::filled(2, 3, 0.0);
        let _ = floyd_warshall(&w);
    }

    #[test]
    fn dijkstra_matches_floyd_warshall_on_mesh() {
        let g = crate::topology::Mesh2D::square(5, cm(2.0)).to_graph();
        let w = g.weight_matrix(|e| e.length.centimetres());
        let fw = floyd_warshall(&w);
        let dj = dijkstra_all_pairs(&w);
        for i in 0..25 {
            for j in 0..25 {
                assert_eq!(fw.dist[(i, j)], dj.dist[(i, j)], "distance ({i},{j}) differs");
            }
        }
        // Paths reconstructed from Dijkstra successors are valid and
        // cost-matching.
        let (a, b) = (NodeId::new(0), NodeId::new(24));
        let path = dj.path(a, b).unwrap();
        assert_eq!(path.len() - 1, 8); // Manhattan hops on 5x5 corners
    }

    #[test]
    fn dijkstra_handles_unreachable() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        let dj = dijkstra_all_pairs(&g.weight_matrix(|e| e.length.centimetres()));
        assert!(!dj.is_reachable(NodeId::new(0), NodeId::new(2)));
        assert!(dj.is_reachable(NodeId::new(0), NodeId::new(1)));
        assert!(!dj.is_reachable(NodeId::new(1), NodeId::new(0)));
    }

    /// Reference single-source Bellman-Ford for cross-checking.
    fn bellman_ford(w: &Matrix<f64>, src: usize) -> Vec<f64> {
        let n = w.rows();
        let mut d = vec![INFINITE_DISTANCE; n];
        d[src] = 0.0;
        for _ in 0..n {
            for i in 0..n {
                if !d[i].is_finite() {
                    continue;
                }
                for j in 0..n {
                    if i != j && w[(i, j)].is_finite() && d[i] + w[(i, j)] < d[j] {
                        d[j] = d[i] + w[(i, j)];
                    }
                }
            }
        }
        d
    }

    proptest! {
        /// Distances agree with an independent Bellman-Ford implementation
        /// on random digraphs, and reconstructed path costs equal the
        /// reported distances.
        #[test]
        fn matches_bellman_ford_and_paths_consistent(
            n in 2usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 0..40),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let w = g.weight_matrix(|e| e.length.centimetres());
            let p = floyd_warshall(&w);
            for s in 0..n {
                let ref_d = bellman_ford(&w, s);
                for (t, &ref_dt) in ref_d.iter().enumerate() {
                    let fw = p.dist[(s, t)];
                    if ref_dt.is_finite() {
                        prop_assert!((fw - ref_dt).abs() < 1e-9,
                            "dist({s},{t}): fw={fw} ref={ref_dt}");
                        // Path cost must equal the distance.
                        let path = p.path(NodeId::new(s), NodeId::new(t)).unwrap();
                        let mut cost = 0.0;
                        for pair in path.windows(2) {
                            cost += w[(pair[0], pair[1])];
                        }
                        prop_assert!((cost - fw).abs() < 1e-9);
                    } else {
                        prop_assert!(!fw.is_finite());
                    }
                }
            }
        }

        /// Dijkstra and Floyd–Warshall agree on distances for random
        /// digraphs, and both yield cost-consistent paths.
        #[test]
        fn dijkstra_equals_floyd_warshall(
            n in 2usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 0..40),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let w = g.weight_matrix(|e| e.length.centimetres());
            let fw = floyd_warshall(&w);
            let dj = dijkstra_all_pairs(&w);
            for i in 0..n {
                for j in 0..n {
                    let (a, b) = (fw.dist[(i, j)], dj.dist[(i, j)]);
                    if a.is_finite() || b.is_finite() {
                        prop_assert!((a - b).abs() < 1e-9, "({i},{j}): fw={a} dj={b}");
                    }
                    // Dijkstra paths cost what they claim.
                    if b.is_finite() && i != j {
                        let path = dj.path(NodeId::new(i), NodeId::new(j)).unwrap();
                        let mut cost = 0.0;
                        for pair in path.windows(2) {
                            cost += w[(pair[0], pair[1])];
                        }
                        prop_assert!((cost - b).abs() < 1e-9);
                    }
                }
            }
        }

        /// The triangle inequality holds on the resulting distance matrix.
        #[test]
        fn triangle_inequality(
            n in 2usize..7,
            edges in proptest::collection::vec((0usize..7, 0usize..7, 0.1f64..10.0), 0..30),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let (ij, ik, kj) = (p.dist[(i, j)], p.dist[(i, k)], p.dist[(k, j)]);
                        if ik.is_finite() && kj.is_finite() {
                            prop_assert!(ij <= ik + kj + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
