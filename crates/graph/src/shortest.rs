//! Floyd–Warshall all-pairs shortest paths with successor matrices.
//!
//! This is phase 2 of both SDR and EAR (Fig 5 in the paper): given a weight
//! matrix `W`, compute the distance matrix `D` and the successor matrix `S`
//! where `S[i][j]` is the next hop out of `i` on a shortest `i -> j` path.

use core::fmt;

use crate::{Matrix, NodeId};

/// The weight used for "no edge" entries; any path through it loses.
pub const INFINITE_DISTANCE: f64 = f64::INFINITY;

/// Result of [`floyd_warshall`]: distances plus successors for path
/// reconstruction.
///
/// # Examples
///
/// ```
/// use etx_graph::{DiGraph, NodeId, floyd_warshall};
/// use etx_units::Length;
///
/// let mut g = DiGraph::new(3);
/// let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
/// g.add_edge(a, b, Length::from_centimetres(1.0))?;
/// g.add_edge(b, c, Length::from_centimetres(1.0))?;
/// g.add_edge(a, c, Length::from_centimetres(5.0))?;
///
/// let paths = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
/// assert_eq!(paths.distance(a, c), Some(2.0)); // via b, not the direct 5.0 edge
/// assert_eq!(paths.successor(a, c), Some(b));
/// assert_eq!(paths.path(a, c).unwrap(), vec![a, b, c]);
/// # Ok::<(), etx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    dist: Matrix<f64>,
    succ: Matrix<Option<NodeId>>,
}

/// Errors raised during path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// No path exists between the endpoints.
    Unreachable {
        /// Path source.
        from: NodeId,
        /// Path target.
        to: NodeId,
    },
    /// Successor chain did not terminate (only possible with negative
    /// cycles or a corrupted successor matrix).
    CycleDetected {
        /// Path source.
        from: NodeId,
        /// Path target.
        to: NodeId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Unreachable { from, to } => {
                write!(f, "no path from {from} to {to}")
            }
            PathError::CycleDetected { from, to } => {
                write!(f, "successor cycle while walking from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

impl ShortestPaths {
    /// Number of nodes covered by this result.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dist.rows()
    }

    /// Shortest distance `from -> to`; `None` if unreachable.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let d = self.dist[(from, to)];
        d.is_finite().then_some(d)
    }

    /// The next hop out of `from` on a shortest path to `to`.
    ///
    /// `None` when `from == to` or `to` is unreachable.
    #[must_use]
    pub fn successor(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        self.succ[(from, to)]
    }

    /// `true` if a path `from -> to` exists (trivially true for `from == to`).
    #[must_use]
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.dist[(from, to)].is_finite()
    }

    /// Reconstructs the full node sequence of a shortest path.
    ///
    /// The result includes both endpoints; `path(a, a)` is `[a]`.
    ///
    /// # Errors
    ///
    /// [`PathError::Unreachable`] when no path exists, and
    /// [`PathError::CycleDetected`] if the successor chain exceeds the node
    /// count (defensive guard; cannot happen with non-negative weights).
    pub fn path(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, PathError> {
        if !self.is_reachable(from, to) {
            return Err(PathError::Unreachable { from, to });
        }
        let mut nodes = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self
                .successor(cur, to)
                .ok_or(PathError::Unreachable { from, to })?;
            nodes.push(cur);
            if nodes.len() > self.node_count() {
                return Err(PathError::CycleDetected { from, to });
            }
        }
        Ok(nodes)
    }

    /// Number of hops (edges) on the shortest path, if reachable.
    #[must_use]
    pub fn hop_count(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.path(from, to).ok().map(|p| p.len() - 1)
    }

    /// Read-only view of the distance matrix.
    #[must_use]
    pub fn distances(&self) -> &Matrix<f64> {
        &self.dist
    }

    /// Read-only view of the successor matrix.
    #[must_use]
    pub fn successors(&self) -> &Matrix<Option<NodeId>> {
        &self.succ
    }
}

/// Runs the Floyd–Warshall variant of the paper (Fig 5) on a weight matrix.
///
/// `weights[(i, j)]` must be `0` on the diagonal, the edge cost for
/// existing edges and [`INFINITE_DISTANCE`] otherwise — exactly what
/// [`DiGraph::weight_matrix`](crate::DiGraph::weight_matrix) produces.
/// Costs must be non-negative (battery-scaled lengths always are).
///
/// Complexity is `O(n^3)` time, `O(n^2)` space, matching the paper's
/// analysis ("practical for graphs consisting of tens to a few hundreds of
/// nodes").
///
/// Tie-breaking follows Fig 5 exactly: an intermediate node `n` replaces
/// the current successor only on a *strict* improvement, so earlier
/// intermediates win ties deterministically.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
#[must_use]
pub fn floyd_warshall(weights: &Matrix<f64>) -> ShortestPaths {
    assert_eq!(weights.rows(), weights.cols(), "weight matrix must be square");
    let n = weights.rows();
    for (r, c, w) in weights.entries() {
        assert!(!w.is_nan(), "weight ({r},{c}) is NaN");
        assert!(*w >= 0.0, "weight ({r},{c}) is negative: {w}");
    }

    let mut dist = weights.clone();
    // S^(0): the successor of i toward a directly-connected j is j itself.
    let mut succ: Matrix<Option<NodeId>> = Matrix::filled(n, n, None);
    for i in 0..n {
        for j in 0..n {
            if i != j && dist[(i, j)].is_finite() {
                succ[(i, j)] = Some(NodeId::new(j));
            }
        }
    }

    for k in 0..n {
        for i in 0..n {
            let d_ik = dist[(i, k)];
            if !d_ik.is_finite() {
                continue;
            }
            for j in 0..n {
                let via = d_ik + dist[(k, j)];
                if via < dist[(i, j)] {
                    dist[(i, j)] = via;
                    succ[(i, j)] = succ[(i, k)];
                }
            }
        }
    }

    ShortestPaths { dist, succ }
}

/// Computes the same all-pairs result as [`floyd_warshall`] by running a
/// binary-heap Dijkstra from every source.
///
/// Complexity is `O(K · E log K)` — on sparse fabrics (meshes have
/// `E ≈ 4K`) that is `O(K² log K)`, asymptotically better than
/// Floyd–Warshall's `O(K³)`. The paper sizes its controller for "tens to
/// a few hundreds of nodes" with the `O(K³)` algorithm; this backend
/// shows how much headroom a smarter phase 2 would buy (see the
/// `routing_scaling` bench). Results are identical (verified by property
/// tests), including unreachability; tie-breaking may differ, so compare
/// distances, not successors.
///
/// # Panics
///
/// Panics if `weights` is not square or contains negative or NaN entries.
#[must_use]
pub fn dijkstra_all_pairs(weights: &Matrix<f64>) -> ShortestPaths {
    assert_eq!(weights.rows(), weights.cols(), "weight matrix must be square");
    let n = weights.rows();
    for (r, c, w) in weights.entries() {
        assert!(!w.is_nan(), "weight ({r},{c}) is NaN");
        assert!(*w >= 0.0, "weight ({r},{c}) is negative: {w}");
    }
    // Sparse adjacency extracted once.
    let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (r, c, w) in weights.entries() {
        if r != c && w.is_finite() {
            adjacency[r].push((c, *w));
        }
    }

    let mut dist = Matrix::filled(n, n, INFINITE_DISTANCE);
    let mut succ: Matrix<Option<NodeId>> = Matrix::filled(n, n, None);

    // Min-heap entry ordered by distance; f64 is totally ordered here
    // because NaN weights were rejected above.
    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            // Reversed for a min-heap on distance, then node id.
            other
                .0
                .partial_cmp(&self.0)
                .expect("distances are never NaN")
                .then(other.1.cmp(&self.1))
        }
    }

    let mut d = vec![0.0f64; n];
    let mut pred = vec![usize::MAX; n];
    let mut settled_order = Vec::with_capacity(n);
    for source in 0..n {
        d.fill(INFINITE_DISTANCE);
        pred.fill(usize::MAX);
        settled_order.clear();
        d[source] = 0.0;
        let mut heap = std::collections::BinaryHeap::with_capacity(n);
        heap.push(Entry(0.0, source));
        while let Some(Entry(du, u)) = heap.pop() {
            if du > d[u] {
                continue; // stale entry
            }
            settled_order.push(u);
            for &(v, w) in &adjacency[u] {
                let nd = du + w;
                if nd < d[v] {
                    d[v] = nd;
                    pred[v] = u;
                    heap.push(Entry(nd, v));
                }
            }
        }
        // First hops: settled order guarantees pred[j] is resolved before j.
        dist[(source, source)] = 0.0;
        for &j in settled_order.iter().skip(1) {
            dist[(source, j)] = d[j];
            succ[(source, j)] = if pred[j] == source {
                Some(NodeId::new(j))
            } else {
                succ[(source, pred[j])]
            };
        }
    }
    ShortestPaths { dist, succ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    fn line_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge_bidirectional(NodeId::new(i), NodeId::new(i + 1), cm(1.0)).unwrap();
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line_graph(5);
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(NodeId::new(0), NodeId::new(4)), Some(4.0));
        assert_eq!(p.distance(NodeId::new(4), NodeId::new(0)), Some(4.0));
        assert_eq!(p.distance(NodeId::new(2), NodeId::new(2)), Some(0.0));
        assert_eq!(p.hop_count(NodeId::new(0), NodeId::new(4)), Some(4));
    }

    #[test]
    fn prefers_cheaper_indirect_path() {
        let mut g = DiGraph::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        g.add_edge(a, c, cm(10.0)).unwrap();
        g.add_edge(a, b, cm(1.0)).unwrap();
        g.add_edge(b, c, cm(1.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(a, c), Some(2.0));
        assert_eq!(p.successor(a, c), Some(b));
        assert_eq!(p.path(a, c).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn unreachable_reported() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        let (a, c) = (NodeId::new(0), NodeId::new(2));
        assert_eq!(p.distance(a, c), None);
        assert!(!p.is_reachable(a, c));
        assert_eq!(p.path(a, c), Err(PathError::Unreachable { from: a, to: c }));
        assert!(p.path(a, c).unwrap_err().to_string().contains("no path"));
    }

    #[test]
    fn directed_asymmetry_respected() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(3.0)).unwrap();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.distance(NodeId::new(0), NodeId::new(1)), Some(3.0));
        assert_eq!(p.distance(NodeId::new(1), NodeId::new(0)), None);
    }

    #[test]
    fn self_path_is_single_node() {
        let g = line_graph(3);
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        assert_eq!(p.path(NodeId::new(1), NodeId::new(1)).unwrap(), vec![NodeId::new(1)]);
        assert_eq!(p.successor(NodeId::new(1), NodeId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weights_rejected() {
        let w = Matrix::from_vec(2, 2, vec![0.0, -1.0, 1.0, 0.0]);
        let _ = floyd_warshall(&w);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let w = Matrix::filled(2, 3, 0.0);
        let _ = floyd_warshall(&w);
    }

    #[test]
    fn dijkstra_matches_floyd_warshall_on_mesh() {
        let g = crate::topology::Mesh2D::square(5, cm(2.0)).to_graph();
        let w = g.weight_matrix(|e| e.length.centimetres());
        let fw = floyd_warshall(&w);
        let dj = dijkstra_all_pairs(&w);
        for i in 0..25 {
            for j in 0..25 {
                assert_eq!(
                    fw.dist[(i, j)],
                    dj.dist[(i, j)],
                    "distance ({i},{j}) differs"
                );
            }
        }
        // Paths reconstructed from Dijkstra successors are valid and
        // cost-matching.
        let (a, b) = (NodeId::new(0), NodeId::new(24));
        let path = dj.path(a, b).unwrap();
        assert_eq!(path.len() - 1, 8); // Manhattan hops on 5x5 corners
    }

    #[test]
    fn dijkstra_handles_unreachable() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        let dj = dijkstra_all_pairs(&g.weight_matrix(|e| e.length.centimetres()));
        assert!(!dj.is_reachable(NodeId::new(0), NodeId::new(2)));
        assert!(dj.is_reachable(NodeId::new(0), NodeId::new(1)));
        assert!(!dj.is_reachable(NodeId::new(1), NodeId::new(0)));
    }

    /// Reference single-source Bellman-Ford for cross-checking.
    fn bellman_ford(w: &Matrix<f64>, src: usize) -> Vec<f64> {
        let n = w.rows();
        let mut d = vec![INFINITE_DISTANCE; n];
        d[src] = 0.0;
        for _ in 0..n {
            for i in 0..n {
                if !d[i].is_finite() {
                    continue;
                }
                for j in 0..n {
                    if i != j && w[(i, j)].is_finite() && d[i] + w[(i, j)] < d[j] {
                        d[j] = d[i] + w[(i, j)];
                    }
                }
            }
        }
        d
    }

    proptest! {
        /// Distances agree with an independent Bellman-Ford implementation
        /// on random digraphs, and reconstructed path costs equal the
        /// reported distances.
        #[test]
        fn matches_bellman_ford_and_paths_consistent(
            n in 2usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 0..40),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let w = g.weight_matrix(|e| e.length.centimetres());
            let p = floyd_warshall(&w);
            for s in 0..n {
                let ref_d = bellman_ford(&w, s);
                for (t, &ref_dt) in ref_d.iter().enumerate() {
                    let fw = p.dist[(s, t)];
                    if ref_dt.is_finite() {
                        prop_assert!((fw - ref_dt).abs() < 1e-9,
                            "dist({s},{t}): fw={fw} ref={ref_dt}");
                        // Path cost must equal the distance.
                        let path = p.path(NodeId::new(s), NodeId::new(t)).unwrap();
                        let mut cost = 0.0;
                        for pair in path.windows(2) {
                            cost += w[(pair[0], pair[1])];
                        }
                        prop_assert!((cost - fw).abs() < 1e-9);
                    } else {
                        prop_assert!(!fw.is_finite());
                    }
                }
            }
        }

        /// Dijkstra and Floyd–Warshall agree on distances for random
        /// digraphs, and both yield cost-consistent paths.
        #[test]
        fn dijkstra_equals_floyd_warshall(
            n in 2usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 0..40),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let w = g.weight_matrix(|e| e.length.centimetres());
            let fw = floyd_warshall(&w);
            let dj = dijkstra_all_pairs(&w);
            for i in 0..n {
                for j in 0..n {
                    let (a, b) = (fw.dist[(i, j)], dj.dist[(i, j)]);
                    if a.is_finite() || b.is_finite() {
                        prop_assert!((a - b).abs() < 1e-9, "({i},{j}): fw={a} dj={b}");
                    }
                    // Dijkstra paths cost what they claim.
                    if b.is_finite() && i != j {
                        let path = dj.path(NodeId::new(i), NodeId::new(j)).unwrap();
                        let mut cost = 0.0;
                        for pair in path.windows(2) {
                            cost += w[(pair[0], pair[1])];
                        }
                        prop_assert!((cost - b).abs() < 1e-9);
                    }
                }
            }
        }

        /// The triangle inequality holds on the resulting distance matrix.
        #[test]
        fn triangle_inequality(
            n in 2usize..7,
            edges in proptest::collection::vec((0usize..7, 0usize..7, 0.1f64..10.0), 0..30),
        ) {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), cm(w)).unwrap();
                }
            }
            let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let (ij, ik, kj) = (p.dist[(i, j)], p.dist[(i, k)], p.dist[(k, j)]);
                        if ik.is_finite() && kj.is_finite() {
                            prop_assert!(ij <= ik + kj + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
