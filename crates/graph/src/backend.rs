//! Pluggable phase-2 all-pairs backend selection.

use crate::{
    dijkstra_all_pairs_into, floyd_warshall_into, AdjacencyList, DijkstraScratch, Matrix,
    ShortestPaths,
};

/// Which all-pairs shortest-path algorithm phase 2 runs.
///
/// The paper's Fig 5 is Floyd–Warshall, `O(K³)` — "practical for graphs
/// consisting of tens to a few hundreds of nodes". The Dijkstra backend
/// is `O(K·E log K)`, which on sparse fabrics (meshes have `E ≈ 4K`) is
/// `O(K² log K)` and overtakes Floyd–Warshall well before the fabric
/// sizes that conductive-textile bus networks target.
///
/// # The `Auto` crossover heuristic
///
/// `Auto` picks by node count and edge density, using crossovers measured
/// on square meshes with this workspace's release profile on a
/// single-core container (best-of-run phase-2 times via
/// `crates/bench/benches/routing_scaling.rs`; absolute numbers vary by
/// machine, the *ratios* are what the heuristic encodes):
///
/// | K (mesh)    | Floyd–Warshall | Dijkstra all-pairs | ratio |
/// |-------------|----------------|--------------------|-------|
/// | 16 (4×4)    | 4.0 µs         | 2.9 µs             | 1.4×  |
/// | 36 (6×6)    | 40 µs          | 17 µs              | 2.4×  |
/// | 64 (8×8)    | 213 µs         | 57 µs              | 3.7×  |
/// | 256 (16×16) | 10.4 ms        | 1.6 ms             | 6.3×  |
/// | 576 (24×24) | 124 ms         | 8.6 ms             | 14×   |
/// | 1024 (32×32)| 695 ms         | 26 ms              | 27×   |
///
/// (For the full three-phase EAR recompute the same machine measures
/// 5.8× at K = 256 and 17× at K = 1024; with multiple cores the Dijkstra
/// backend additionally fans sources out over threads.)
///
/// The backend choice also gates the *between-frame* fast paths: the
/// routing crate's `RecomputeStrategy` (affected-sources delta and
/// incremental shortest-path-tree repair) engages only when the resolved
/// backend is `DijkstraAllPairs`, because kept rows must reproduce the
/// deterministic Dijkstra successor tie-breaking bit-for-bit. Under
/// Floyd–Warshall every frame is a full recompute — which is the right
/// trade at the small sizes where `Auto` picks it.
///
/// Dijkstra's advantage requires sparsity: at average out-degree `d`, its
/// cost grows like `K²·d·log K` against Floyd–Warshall's `K³`, so the
/// heuristic demands `E·log₂K < K²`, plus a small-K floor:
///
/// * `K < 48` → Floyd–Warshall. Below the floor the absolute gap is a
///   few tens of microseconds, and Floyd–Warshall is the paper's Fig 5
///   algorithm with its exact successor tie-breaking — `Auto` keeps the
///   reproduction bit-faithful across the paper's own evaluation range
///   (4×4 … 6×6) where the backends' successor choices could differ.
/// * `K ≥ 48` and `E·log₂K < K²` → Dijkstra — sparse enough to pay off.
/// * otherwise → Floyd–Warshall — dense graphs keep the `O(K³)` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathBackend {
    /// Always run the paper's Floyd–Warshall (Fig 5), `O(K³)`.
    FloydWarshall,
    /// Always run all-sources binary-heap Dijkstra, `O(K·E log K)`.
    DijkstraAllPairs,
    /// Pick per graph: Floyd–Warshall for small or dense graphs,
    /// Dijkstra for large sparse ones (see the crossover table above).
    #[default]
    Auto,
}

/// Node-count floor below which `Auto` always picks Floyd–Warshall.
const AUTO_MIN_DIJKSTRA_NODES: usize = 48;

/// The concrete algorithm [`PathBackend::resolve`] settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedBackend {
    /// Phase 2 will run Floyd–Warshall.
    FloydWarshall,
    /// Phase 2 will run all-sources Dijkstra.
    DijkstraAllPairs,
}

impl PathBackend {
    /// Resolves `Auto` against a graph's node and (directed) edge count.
    #[must_use]
    pub fn resolve(self, node_count: usize, edge_count: usize) -> ResolvedBackend {
        match self {
            PathBackend::FloydWarshall => ResolvedBackend::FloydWarshall,
            PathBackend::DijkstraAllPairs => ResolvedBackend::DijkstraAllPairs,
            PathBackend::Auto => {
                let k = node_count;
                let log_k = usize::BITS - k.max(2).leading_zeros(); // ≈ ⌈log₂ k⌉
                let sparse_enough =
                    (edge_count as u128) * u128::from(log_k) < (k as u128) * (k as u128);
                if k >= AUTO_MIN_DIJKSTRA_NODES && sparse_enough {
                    ResolvedBackend::DijkstraAllPairs
                } else {
                    ResolvedBackend::FloydWarshall
                }
            }
        }
    }
}

impl ResolvedBackend {
    /// Runs this backend over `weights` into `out`, reusing `adjacency`
    /// and `scratch` (used by the Dijkstra arm only).
    ///
    /// `parallel` lets the Dijkstra arm fan sources out over scoped
    /// threads; pass `false` on paths that must not allocate.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not square or contains negative/NaN entries.
    pub fn compute_into(
        self,
        weights: &Matrix<f64>,
        adjacency: &mut AdjacencyList,
        scratch: &mut DijkstraScratch,
        out: &mut ShortestPaths,
        parallel: bool,
    ) {
        match self {
            ResolvedBackend::FloydWarshall => floyd_warshall_into(weights, out),
            ResolvedBackend::DijkstraAllPairs => {
                dijkstra_all_pairs_into(weights, adjacency, scratch, out, parallel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_backends_resolve_to_themselves() {
        assert_eq!(PathBackend::FloydWarshall.resolve(10_000, 1), ResolvedBackend::FloydWarshall);
        assert_eq!(PathBackend::DijkstraAllPairs.resolve(2, 1), ResolvedBackend::DijkstraAllPairs);
    }

    #[test]
    fn auto_keeps_floyd_warshall_for_small_graphs() {
        // The paper's whole evaluation range (4x4 .. 8x8 meshes).
        for side in 2..=6 {
            let k = side * side;
            let e = 4 * side * (side - 1); // bidirectional mesh edges
            assert_eq!(
                PathBackend::Auto.resolve(k, e),
                ResolvedBackend::FloydWarshall,
                "side {side}"
            );
        }
    }

    #[test]
    fn auto_switches_to_dijkstra_for_large_sparse_graphs() {
        for side in [8usize, 16, 32] {
            let k = side * side;
            let e = 4 * side * (side - 1);
            assert_eq!(
                PathBackend::Auto.resolve(k, e),
                ResolvedBackend::DijkstraAllPairs,
                "side {side}"
            );
        }
    }

    #[test]
    fn auto_keeps_floyd_warshall_for_dense_graphs() {
        // A complete digraph on 256 nodes: E = K(K-1), E·log K >> K².
        let k = 256;
        assert_eq!(PathBackend::Auto.resolve(k, k * (k - 1)), ResolvedBackend::FloydWarshall);
    }
}
