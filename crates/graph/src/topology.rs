//! Network topology builders for e-textile platforms.
//!
//! The paper evaluates 2-D meshes (4x4 … 8x8) with nodes addressed by
//! 1-indexed coordinates `(x, y)` as in its Fig 3(b). [`Mesh2D`] keeps that
//! coordinate bookkeeping; the remaining builders (torus, line, ring, star,
//! complete) exist because `et_sim` "supports, in default mode, any 2D mesh"
//! but the routing algorithms are general-purpose and deserve exercising on
//! other shapes.

use etx_units::Length;

use crate::{DiGraph, NodeId};

/// A 2-D mesh with 1-indexed coordinates matching the paper's Fig 3(b).
///
/// Nodes are laid out row-major: `(x, y)` with `1 <= x <= width` (column)
/// and `1 <= y <= height` (row). Every pair of 4-neighbours is connected by
/// a bidirectional transmission line of length `pitch`.
///
/// # Examples
///
/// ```
/// use etx_graph::topology::Mesh2D;
/// use etx_units::Length;
///
/// let mesh = Mesh2D::new(4, 4, Length::from_centimetres(2.0));
/// assert_eq!(mesh.node_count(), 16);
/// let corner = mesh.node_at(1, 1).unwrap();
/// assert_eq!(mesh.coords(corner), Some((1, 1)));
/// // Corner has two neighbours; 4x4 mesh has 2*2*4*3 = 48 directed edges.
/// assert_eq!(mesh.to_graph().out_degree(corner), 2);
/// assert_eq!(mesh.to_graph().edge_count(), 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh2D {
    width: usize,
    height: usize,
    pitch: Length,
}

impl Mesh2D {
    /// Creates a `width x height` mesh with link length `pitch`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn new(width: usize, height: usize, pitch: Length) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2D { width, height, pitch }
    }

    /// Creates the paper's square `n x n` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn square(n: usize, pitch: Length) -> Self {
        Self::new(n, n, pitch)
    }

    /// Mesh width (number of columns).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (number of rows).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Link length between adjacent nodes.
    #[must_use]
    pub fn pitch(&self) -> Length {
        self.pitch
    }

    /// Total number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// The node at 1-indexed coordinates `(x, y)`; `None` if out of range.
    #[must_use]
    pub fn node_at(&self, x: usize, y: usize) -> Option<NodeId> {
        if (1..=self.width).contains(&x) && (1..=self.height).contains(&y) {
            Some(NodeId::new((y - 1) * self.width + (x - 1)))
        } else {
            None
        }
    }

    /// The 1-indexed coordinates of `node`; `None` if out of range.
    #[must_use]
    pub fn coords(&self, node: NodeId) -> Option<(usize, usize)> {
        if node.index() < self.node_count() {
            Some((node.index() % self.width + 1, node.index() / self.width + 1))
        } else {
            None
        }
    }

    /// Iterates over all nodes with their coordinates, row-major.
    pub fn iter_coords(&self) -> impl Iterator<Item = (NodeId, (usize, usize))> + '_ {
        (0..self.node_count()).map(move |i| {
            let id = NodeId::new(i);
            (id, self.coords(id).expect("index in range"))
        })
    }

    /// Manhattan hop distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn manhattan_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a).expect("node a in range");
        let (bx, by) = self.coords(b).expect("node b in range");
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Builds the bidirectional mesh graph.
    #[must_use]
    pub fn to_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.node_count());
        for (node, (x, y)) in self.iter_coords() {
            if let Some(right) = self.node_at(x + 1, y) {
                g.add_edge_bidirectional(node, right, self.pitch).expect("mesh edges are valid");
            }
            if let Some(down) = self.node_at(x, y + 1) {
                g.add_edge_bidirectional(node, down, self.pitch).expect("mesh edges are valid");
            }
        }
        g
    }
}

/// Builds a 2-D torus (mesh with wrap-around links) of uniform link length.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
#[must_use]
pub fn torus(width: usize, height: usize, pitch: Length) -> DiGraph {
    assert!(width > 0 && height > 0, "torus dimensions must be positive");
    let mesh = Mesh2D::new(width, height, pitch);
    let mut g = mesh.to_graph();
    if width > 2 {
        for y in 1..=height {
            let a = mesh.node_at(width, y).expect("in range");
            let b = mesh.node_at(1, y).expect("in range");
            g.add_edge_bidirectional(a, b, pitch).expect("valid wrap edge");
        }
    }
    if height > 2 {
        for x in 1..=width {
            let a = mesh.node_at(x, height).expect("in range");
            let b = mesh.node_at(x, 1).expect("in range");
            g.add_edge_bidirectional(a, b, pitch).expect("valid wrap edge");
        }
    }
    g
}

/// Builds a line (path) of `n` nodes.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn line(n: usize, pitch: Length) -> DiGraph {
    assert!(n > 0, "line must have at least one node");
    let mut g = DiGraph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge_bidirectional(NodeId::new(i), NodeId::new(i + 1), pitch)
            .expect("valid line edge");
    }
    g
}

/// Builds a ring of `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (a ring needs at least three nodes).
#[must_use]
pub fn ring(n: usize, pitch: Length) -> DiGraph {
    assert!(n >= 3, "ring needs at least 3 nodes, got {n}");
    let mut g = line(n, pitch);
    g.add_edge_bidirectional(NodeId::new(n - 1), NodeId::new(0), pitch)
        .expect("valid ring closure");
    g
}

/// Builds a star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize, pitch: Length) -> DiGraph {
    assert!(n >= 2, "star needs at least 2 nodes, got {n}");
    let mut g = DiGraph::new(n);
    for i in 1..n {
        g.add_edge_bidirectional(NodeId::new(0), NodeId::new(i), pitch).expect("valid star edge");
    }
    g
}

/// Builds a complete graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn complete(n: usize, pitch: Length) -> DiGraph {
    assert!(n > 0, "complete graph needs at least one node");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge_bidirectional(NodeId::new(i), NodeId::new(j), pitch)
                .expect("valid complete edge");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_strongly_connected;
    use crate::floyd_warshall;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn mesh_coordinates_roundtrip() {
        let mesh = Mesh2D::new(4, 3, cm(1.0));
        assert_eq!(mesh.node_count(), 12);
        for (node, (x, y)) in mesh.iter_coords() {
            assert_eq!(mesh.node_at(x, y), Some(node));
        }
        assert_eq!(mesh.node_at(0, 1), None);
        assert_eq!(mesh.node_at(5, 1), None);
        assert_eq!(mesh.node_at(1, 4), None);
        assert_eq!(mesh.coords(NodeId::new(12)), None);
    }

    #[test]
    fn mesh_matches_paper_fig3_layout() {
        // Fig 3(b): a 4x4 mesh, (1,1) top-left .. (4,4) bottom-right.
        let mesh = Mesh2D::square(4, cm(1.0));
        assert_eq!(mesh.node_at(1, 1), Some(NodeId::new(0)));
        assert_eq!(mesh.node_at(4, 1), Some(NodeId::new(3)));
        assert_eq!(mesh.node_at(1, 2), Some(NodeId::new(4)));
        assert_eq!(mesh.node_at(4, 4), Some(NodeId::new(15)));
    }

    #[test]
    fn mesh_edge_count() {
        // n x m mesh has n(m-1) + m(n-1) undirected links, doubled for direction.
        for (w, h) in [(4, 4), (5, 5), (8, 8), (2, 7)] {
            let g = Mesh2D::new(w, h, cm(1.0)).to_graph();
            let undirected = w * (h - 1) + h * (w - 1);
            assert_eq!(g.edge_count(), 2 * undirected, "mesh {w}x{h}");
        }
    }

    #[test]
    fn mesh_degrees() {
        let mesh = Mesh2D::square(4, cm(1.0));
        let g = mesh.to_graph();
        // corners: 2, edges: 3, interior: 4.
        assert_eq!(g.out_degree(mesh.node_at(1, 1).unwrap()), 2);
        assert_eq!(g.out_degree(mesh.node_at(2, 1).unwrap()), 3);
        assert_eq!(g.out_degree(mesh.node_at(2, 2).unwrap()), 4);
    }

    #[test]
    fn mesh_shortest_paths_are_manhattan() {
        let mesh = Mesh2D::square(5, cm(2.0));
        let g = mesh.to_graph();
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        for (a, _) in mesh.iter_coords() {
            for (b, _) in mesh.iter_coords() {
                let hops = mesh.manhattan_hops(a, b);
                assert_eq!(p.distance(a, b), Some(2.0 * hops as f64));
            }
        }
    }

    #[test]
    fn torus_wraps() {
        let g = torus(4, 4, cm(1.0));
        let mesh = Mesh2D::new(4, 4, cm(1.0));
        let p = floyd_warshall(&g.weight_matrix(|e| e.length.centimetres()));
        let a = mesh.node_at(1, 1).unwrap();
        let b = mesh.node_at(4, 1).unwrap();
        // With wrap-around the corner pair is one hop apart.
        assert_eq!(p.distance(a, b), Some(1.0));
    }

    #[test]
    fn torus_small_dimensions_do_not_duplicate_links() {
        // 2-wide torus wrap would duplicate the existing mesh link.
        let g = torus(2, 3, cm(1.0));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn line_ring_star_complete_shapes() {
        let l = line(4, cm(1.0));
        assert_eq!(l.edge_count(), 6);
        let r = ring(4, cm(1.0));
        assert_eq!(r.edge_count(), 8);
        let s = star(5, cm(1.0));
        assert_eq!(s.edge_count(), 8);
        assert_eq!(s.out_degree(NodeId::new(0)), 4);
        let c = complete(4, cm(1.0));
        assert_eq!(c.edge_count(), 12);
        for g in [l, r, s, c] {
            assert!(is_strongly_connected(&g));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = ring(2, cm(1.0));
    }

    #[test]
    fn single_node_line() {
        let g = line(1, cm(1.0));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
