//! Dynamic (incremental) all-pairs shortest paths: per-source
//! shortest-path-tree storage plus Ramalingam–Reps-style batch repair.
//!
//! The simulator's steady state is a stream of *small, mostly monotone*
//! edge-weight changes: every TDMA frame a handful of batteries cross a
//! quantization bucket, which only *raises* the cost of the affected
//! node's in-edges (and a death raises every incident edge to `∞`). A
//! full delta recompute still re-runs single-source Dijkstra from every
//! source that can reach a changed edge — on a connected fabric that is
//! *all* of them. This module repairs each source's rows instead,
//! touching only the nodes whose shortest path actually used a changed
//! edge.
//!
//! # Exactness contract
//!
//! Repair is **bit-exact**: after [`repair_source`] returns
//! [`RepairOutcome::Repaired`] (or `Unchanged`), the source's distance
//! row, successor row, and stored tree are byte-identical to what a fresh
//! [`dijkstra_source_tree_into`] over the new weights would produce. The
//! proof hinges on the deterministic tie-breaking of the workspace's
//! Dijkstra: the final successor (and tree parent) of a node `v` is
//! always derived from `u* = min_(dist,id) { u : dist(u) + w(u,v) =
//! dist(v) }` — the first-popped *achiever* of `v`'s final distance. For
//! a batch of pure weight **increases**:
//!
//! * a node whose tree path avoids every increased edge keeps its
//!   distance (no alternative got cheaper) *and* its achiever `u*` (the
//!   achiever set can only shrink, and the tree parent — the previous
//!   minimum — stays in it), so its row entries are untouched;
//! * every other node is a tree descendant of an increased edge; those
//!   are recomputed by a heap pass restricted to the affected set, and a
//!   post-pass in pop order restores `u*`-derived successors/parents.
//!
//! Weight **decreases** (a node revived, a link restored, a battery
//! recharged) are handled by a second half that runs after the increase
//! phases: an *improvement propagation* Dijkstra seeded from every
//! decreased edge whose head could get cheaper, relaxing globally (an
//! improvement is not confined to any old subtree) and re-hanging each
//! improved node under its new achiever through the explicit child
//! links. Exact *ties* — `dist(u) + w_new = dist(v)` with `dist(v)`
//! unchanged — can still flip the deterministic achiever `u*`; tie
//! heads are enumerated from the changed edges and the improved tails
//! (achiever sets only gain members there), their achievers re-derived,
//! and every successor in the re-hung subtrees refreshed in `(dist,
//! id)` order. Irrelevant decreases remain proven no-ops and cost
//! `O(#deltas)`; [`RepairOutcome::Rerun`] is now reserved for the cost
//! gate (combined increase + decrease frontier past
//! `max_affected_fraction`) and cold trees, not for decreases per se.

use crate::shortest::{pack_entry, unpack_entry};
use crate::{AdjacencyList, DijkstraScratch, Matrix, NodeId, INFINITE_DISTANCE};

/// Sentinel for "no tree parent" (the source itself, or unreachable).
pub const NO_PARENT: u32 = u32::MAX;

/// One directed edge whose phase-1 weight changed between two recomputes
/// — the unit of the edge-delta stream the routing pipeline feeds the
/// repair with. `old`/`new` may be [`INFINITE_DISTANCE`] (edge absent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDelta {
    /// Edge tail.
    pub from: u32,
    /// Edge head.
    pub to: u32,
    /// Weight before the change.
    pub old: f64,
    /// Weight after the change.
    pub new: f64,
}

impl WeightDelta {
    /// `true` when the weight rose (battery drain, node death) — the
    /// monotone case repair handles incrementally.
    #[must_use]
    pub fn is_increase(&self) -> bool {
        self.new > self.old
    }
}

/// Per-source shortest-path trees: for every source `s`, the tree parent
/// of each node plus explicit child links (first-child / sibling lists),
/// so the descendants of any tree edge can be enumerated in time
/// proportional to the subtree — never by scanning all `K` nodes.
///
/// Rows are maintained by [`dijkstra_source_tree_into`] (full per-source
/// runs) and [`repair_source`] (incremental repair); both leave the same
/// parents behind, which is what lets repairs chain frame after frame.
/// Sibling-list *order* is an implementation detail (it depends on the
/// maintenance history) and carries no meaning: every derived quantity —
/// distances, successors, parents, settled counts — is history-free.
#[derive(Debug, Default)]
pub struct SpTreeStore {
    parent: Matrix<u32>,
    /// Head of each node's child list (`NO_PARENT` = childless).
    first_child: Matrix<u32>,
    /// Doubly-linked sibling lists, so a repaired node re-parents in
    /// `O(1)`.
    next_sibling: Matrix<u32>,
    prev_sibling: Matrix<u32>,
    settled: Vec<u32>,
}

/// Unlinks `v` from `parent`'s child list (row-level helper; all slices
/// belong to one source's tree).
fn unlink_child(
    first_child: &mut [u32],
    next_sibling: &mut [u32],
    prev_sibling: &mut [u32],
    parent: u32,
    v: u32,
) {
    let prev = prev_sibling[v as usize];
    let next = next_sibling[v as usize];
    if prev == NO_PARENT {
        first_child[parent as usize] = next;
    } else {
        next_sibling[prev as usize] = next;
    }
    if next != NO_PARENT {
        prev_sibling[next as usize] = prev;
    }
}

/// Links `v` at the head of `parent`'s child list.
fn link_child(
    first_child: &mut [u32],
    next_sibling: &mut [u32],
    prev_sibling: &mut [u32],
    parent: u32,
    v: u32,
) {
    let head = first_child[parent as usize];
    next_sibling[v as usize] = head;
    prev_sibling[v as usize] = NO_PARENT;
    if head != NO_PARENT {
        prev_sibling[head as usize] = v;
    }
    first_child[parent as usize] = v;
}

impl SpTreeStore {
    /// An empty store; size it with [`SpTreeStore::reset`].
    #[must_use]
    pub fn new() -> Self {
        SpTreeStore::default()
    }

    /// Number of sources (and nodes) covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.settled.len()
    }

    /// Resizes for `n` nodes and invalidates every tree, reusing the
    /// existing allocations whenever they are large enough.
    pub fn reset(&mut self, n: usize) {
        self.parent.reset(n, n, NO_PARENT);
        self.first_child.reset(n, n, NO_PARENT);
        self.next_sibling.reset(n, n, NO_PARENT);
        self.prev_sibling.reset(n, n, NO_PARENT);
        self.settled.clear();
        self.settled.resize(n, 0);
    }

    /// Mutably borrows source `s`'s `(parent, first_child, next_sibling,
    /// prev_sibling)` rows.
    pub(crate) fn link_rows_mut(
        &mut self,
        s: usize,
    ) -> (&mut [u32], &mut [u32], &mut [u32], &mut [u32]) {
        let SpTreeStore { parent, first_child, next_sibling, prev_sibling, .. } = self;
        (
            parent.row_slice_mut(s),
            first_child.row_slice_mut(s),
            next_sibling.row_slice_mut(s),
            prev_sibling.row_slice_mut(s),
        )
    }

    /// The tree parent of `node` in source `s`'s tree (`None` for the
    /// source itself and unreachable nodes).
    #[must_use]
    pub fn parent(&self, s: usize, node: usize) -> Option<NodeId> {
        let p = self.parent[(s, node)];
        (p != NO_PARENT).then(|| NodeId::new(p as usize))
    }

    /// How many nodes source `s` settles (reaches).
    #[must_use]
    pub fn settled(&self, s: usize) -> usize {
        self.settled[s] as usize
    }

    /// Records source `s`'s settled count (set by the tree-recording
    /// Dijkstra / repair drivers).
    pub(crate) fn set_settled(&mut self, s: usize, count: u32) {
        self.settled[s] = count;
    }
}

/// Reusable working memory for [`repair_source`] batches. All buffers
/// retain capacity across frames, so steady-state repairs perform no
/// heap allocation.
#[derive(Debug, Default)]
pub struct RepairScratch {
    /// Increased edges `(to, from)` of the current batch.
    increases: Vec<(u32, u32)>,
    /// Decreased edges of the current batch.
    decreases: Vec<WeightDelta>,
    /// Stamp-based affected marks: `affected[v] == stamp` means `v` is
    /// affected in the *current* [`repair_source`] call. Stamping makes
    /// clearing `O(1)` per call — no `O(K)` re-initialisation — which is
    /// what keeps a repair proportional to its subtree.
    affected: Vec<u32>,
    /// The stamp of the current call (see `affected`).
    stamp: u32,
    /// Affected nodes (DFS discovery order; order carries no meaning).
    touched: Vec<u32>,
    /// DFS work stack of the subtree walk.
    stack: Vec<u32>,
    /// Repaired nodes in `(dist, id)` pop order.
    pops: Vec<u32>,
    /// Decrease half: nodes whose distance improved (pop order), plus
    /// tie heads whose achiever flipped (appended after the pops).
    improved: Vec<u32>,
    /// Decrease half: heads of exact-tie relaxations whose achiever set
    /// may have gained a member (deduplicated lazily; false positives
    /// cost one achiever scan each).
    tie_heads: Vec<u32>,
    /// Decrease half: nodes whose successor entry must be re-derived
    /// (the improved/tie-flipped nodes and their whole subtrees).
    succ_dirty: Vec<u32>,
    /// Second stamp array for the decrease half (improvement-pop dedup,
    /// then the successor-dirty subtree walk) — kept separate from
    /// `affected` so the increase-phase marks survive for the final
    /// touched-set merge.
    marks2: Vec<u32>,
    /// The stamp of the current `marks2` generation.
    stamp2: u32,
}

impl RepairScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        RepairScratch::default()
    }

    /// Pre-sizes the batch buffers for up to `edges` deltas, so bursty
    /// frames (mass churn after a quiet warm-up) never grow them
    /// mid-flight — the zero-allocation guarantee is keyed to the
    /// graph's dimensions, not to the largest batch seen so far.
    pub fn reserve_batch(&mut self, edges: usize) {
        self.increases.reserve(edges);
        self.decreases.reserve(edges);
        // Tie candidates are recorded per relaxation: each node's
        // out-edges are scanned at most twice in the decrease half
        // (once when seeding from the increase-phase pops, once when
        // popped as an improvement), so `2 * edges` bounds the pushes.
        self.tie_heads.reserve(2 * edges);
    }

    /// Indexes one frame's delta batch into increase/decrease lists.
    /// Call once per batch, before the per-source [`repair_source`]
    /// loop.
    pub fn prepare(&mut self, deltas: &[WeightDelta], n: usize) {
        self.increases.clear();
        self.increases.reserve(deltas.len());
        self.decreases.clear();
        self.decreases.reserve(deltas.len());
        // Per-source buffers hold at most one entry per node; reserving
        // the bound here keeps burst batches free of mid-flight growth.
        self.touched.reserve(2 * n);
        self.stack.reserve(n);
        self.pops.reserve(n);
        self.improved.reserve(n);
        self.succ_dirty.reserve(n);
        for d in deltas {
            if d.is_increase() {
                self.increases.push((d.to, d.from));
            } else if d.new < d.old {
                self.decreases.push(*d);
            }
        }
    }

    /// `true` when the prepared batch contains no effective change.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.increases.is_empty() && self.decreases.is_empty()
    }

    /// The nodes the most recent [`repair_source`] call recomputed —
    /// valid after a [`RepairOutcome::Repaired`] return, until the next
    /// call. Every row entry *outside* this set is bit-identical to the
    /// pre-repair solution, which is what lets callers maintain
    /// downstream per-destination state (routing tables) incrementally.
    #[must_use]
    pub fn touched_nodes(&self) -> &[u32] {
        &self.touched
    }

    /// The nodes whose distance improved — or whose exact-tie achiever
    /// flipped — in the most recent [`repair_source`] call's decrease
    /// half, always a subset of [`RepairScratch::touched_nodes`]. Valid
    /// only when the last call returned [`RepairOutcome::Repaired`]
    /// with `improved > 0` (a repair with no relevant decrease skips
    /// the decrease half and leaves the buffer stale), until the next
    /// call. The significance for downstream per-destination state:
    /// between two frames, these are the **only** nodes whose key in a
    /// min-distance competition can have gotten *better*, so a cached
    /// competition winner that did not worsen can only be displaced by
    /// one of them.
    #[must_use]
    pub fn improved_nodes(&self) -> &[u32] {
        &self.improved
    }

    /// Starts a fresh affected-mark generation covering `n` nodes.
    fn bump_stamp(&mut self, n: usize) {
        if self.affected.len() != n {
            self.affected.clear();
            self.affected.resize(n, 0);
            self.stamp = 0;
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Wrapped: old marks could alias the new generation.
            self.affected.fill(0);
            self.stamp = 1;
        }
    }

    /// Marks `v` affected. Returns `true` when the mark is new.
    fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.affected[v as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }

    /// `true` when `v` was marked affected in the current call.
    fn is_affected(&self, v: usize) -> bool {
        self.affected[v] == self.stamp
    }

    /// Starts a fresh generation of the decrease-half marks (`marks2`).
    fn bump_stamp2(&mut self, n: usize) {
        if self.marks2.len() != n {
            self.marks2.clear();
            self.marks2.resize(n, 0);
            self.stamp2 = 0;
        }
        self.stamp2 = self.stamp2.wrapping_add(1);
        if self.stamp2 == 0 {
            self.marks2.fill(0);
            self.stamp2 = 1;
        }
    }

    /// Marks `v` in the current `marks2` generation. Returns `true`
    /// when the mark is new.
    fn mark2(&mut self, v: u32) -> bool {
        let slot = &mut self.marks2[v as usize];
        if *slot == self.stamp2 {
            false
        } else {
            *slot = self.stamp2;
            true
        }
    }

    /// `true` when `v` carries the current `marks2` generation.
    fn is_marked2(&self, v: usize) -> bool {
        self.marks2[v] == self.stamp2
    }
}

/// What [`repair_source`] did with one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// No changed edge can affect this source's rows; nothing was
    /// touched.
    Unchanged,
    /// The rows were repaired in place; `touched` nodes were recomputed.
    Repaired {
        /// Number of nodes whose entries were recomputed (increase
        /// subtrees plus the decrease half's improved/re-hung nodes).
        touched: usize,
        /// Of those, entries updated by the decrease half: distance
        /// improvements plus achiever tie flips. Zero for pure-increase
        /// batches.
        improved: usize,
    },
    /// The repair declined: the combined increase + decrease frontier
    /// exceeded `max_affected_fraction`, or the batch predates the
    /// stored trees. The caller must re-run the source in full via
    /// [`dijkstra_source_tree_into`]. The increase gate fires before
    /// any mutation; the decrease gate may abort mid-improvement and
    /// leave the rows partially updated — the mandatory full re-run
    /// overwrites every entry either way.
    Rerun,
}

/// Runs the tree-recording variant of the workspace's single-source
/// Dijkstra: identical `dist_row`/`succ_row` to
/// [`dijkstra_source_into`](crate::dijkstra_source_into), and
/// additionally records each node's tree parent (the deterministic
/// achiever `u*`) and the child links into `trees`.
///
/// # Panics
///
/// Panics if `source` or the row lengths do not match `adjacency`.
pub fn dijkstra_source_tree_into(
    adjacency: &AdjacencyList,
    source: NodeId,
    scratch: &mut DijkstraScratch,
    dist_row: &mut [f64],
    succ_row: &mut [Option<NodeId>],
    trees: &mut SpTreeStore,
) {
    let n = adjacency.len();
    assert!(source.index() < n, "source {source} out of range");
    assert_eq!(dist_row.len(), n, "distance row length mismatch");
    assert_eq!(succ_row.len(), n, "successor row length mismatch");
    assert_eq!(trees.node_count(), n, "tree store does not cover the adjacency");
    let s = source.index();
    let (parent_row, first_child_row, next_row, prev_row) = trees.link_rows_mut(s);

    scratch.heap.clear();
    let heap_bound = adjacency.edge_count() + 1;
    if scratch.heap.capacity() < heap_bound {
        scratch.heap.reserve(heap_bound);
    }

    dist_row.fill(INFINITE_DISTANCE);
    succ_row.fill(None);
    parent_row.fill(NO_PARENT);
    dist_row[s] = 0.0;
    let mut settled: u32 = 0;
    scratch.heap.push(core::cmp::Reverse(pack_entry(0.0, s)));
    while let Some(core::cmp::Reverse(entry)) = scratch.heap.pop() {
        let (du, u) = unpack_entry(entry);
        if du > dist_row[u] {
            continue; // stale entry
        }
        settled += 1;
        let via_u = if u == s { None } else { succ_row[u] };
        for &(v, w) in adjacency.neighbors(u) {
            let nd = du + w;
            if nd < dist_row[v] {
                dist_row[v] = nd;
                succ_row[v] = via_u.or(Some(NodeId::new(v)));
                parent_row[v] = u as u32;
                scratch.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
            }
        }
    }
    // Rebuild the child lists from the final parents (a full re-run
    // replaces the whole tree, so incremental link maintenance would buy
    // nothing here).
    first_child_row.fill(NO_PARENT);
    for v in 0..n as u32 {
        let p = parent_row[v as usize];
        if p != NO_PARENT {
            link_child(first_child_row, next_row, prev_row, p, v);
        }
    }
    trees.set_settled(s, settled);
}

/// Repairs one source's all-pairs rows against a prepared batch of
/// weight deltas (see [`RepairScratch::prepare`]), or reports that the
/// source must be re-run.
///
/// Inputs describe the **new** graph: `adjacency` (out-lists) and
/// `in_adjacency` (in-lists, [`AdjacencyList::rebuild_transpose`]) must
/// already reflect the post-delta weights, while `dist_row`/`succ_row`
/// and `trees` still hold the pre-delta solution this repair advances.
///
/// `max_affected_fraction` is the repair-vs-rerun cost gate, applied to
/// the *combined* increase + decrease frontier: when more than that
/// fraction of the source's settled nodes is affected by the increase
/// subtrees plus the improvement propagation, the bookkeeping stops
/// paying for itself and [`RepairOutcome::Rerun`] is returned (the
/// increase gate declines before mutating; the decrease gate may abort
/// mid-improvement — see [`RepairOutcome::Rerun`]).
///
/// # Panics
///
/// Panics if the row lengths or tree store do not match `adjacency`.
#[allow(clippy::too_many_arguments)] // mirrors the per-source solver rows + workspace
pub fn repair_source(
    adjacency: &AdjacencyList,
    in_adjacency: &AdjacencyList,
    source: NodeId,
    heap: &mut DijkstraScratch,
    repair: &mut RepairScratch,
    trees: &mut SpTreeStore,
    dist_row: &mut [f64],
    succ_row: &mut [Option<NodeId>],
    max_affected_fraction: f64,
) -> RepairOutcome {
    let n = adjacency.len();
    assert_eq!(dist_row.len(), n, "distance row length mismatch");
    assert_eq!(succ_row.len(), n, "successor row length mismatch");
    assert_eq!(trees.node_count(), n, "tree store does not cover the adjacency");
    let s = source.index();

    // A decrease is relevant when it could improve — or *tie* — the
    // path to any settled node. Irrelevant decreases are proven no-ops
    // against the (still exact) pre-repair rows; relevant ones engage
    // the decrease half below the increase phases.
    let any_relevant_decrease = repair.decreases.iter().any(|d| {
        let du = dist_row[d.from as usize];
        du.is_finite() && du + d.new <= dist_row[d.to as usize]
    });

    let settled = trees.settled(s);
    let (parent_row, first_child_row, next_row, prev_row) = trees.link_rows_mut(s);

    // Phase A — affected set, in time proportional to the *subtree*:
    // the heads are the tree edges that increased (non-tree alternatives
    // were already ≥ and only got worse); their descendants are exactly
    // the nodes whose tree path uses an increased edge, enumerated
    // through the child links. No settle-order scan, no `O(K)` walk —
    // an unaffected source pays `O(#increases)` and nothing else.
    repair.bump_stamp(n);
    repair.touched.clear();
    repair.stack.clear();
    for i in 0..repair.increases.len() {
        let (to, from) = repair.increases[i];
        if parent_row[to as usize] == from && dist_row[to as usize].is_finite() && repair.mark(to) {
            repair.touched.push(to);
            repair.stack.push(to);
        }
    }
    if repair.touched.is_empty() && !any_relevant_decrease {
        return RepairOutcome::Unchanged;
    }
    while let Some(v) = repair.stack.pop() {
        let mut child = first_child_row[v as usize];
        while child != NO_PARENT {
            if repair.mark(child) {
                repair.touched.push(child);
                repair.stack.push(child);
            }
            child = next_row[child as usize];
        }
    }

    // Cost gate: past this frontier size a fresh Dijkstra is cheaper
    // than the repair bookkeeping (measured; see the routing crate's
    // REPAIR_MAX_AFFECTED_FRACTION).
    #[allow(clippy::cast_precision_loss)]
    if repair.touched.len() as f64 > max_affected_fraction * settled as f64 {
        return RepairOutcome::Rerun;
    }

    // Phase B — invalidate and seed: affected entries unlink from their
    // old parent and drop to "unreachable", then each gets its best
    // boundary candidate (an unaffected in-neighbour; positive weights
    // mean every achiever settles strictly earlier, so these are final
    // values).
    for i in 0..repair.touched.len() {
        let v = repair.touched[i];
        unlink_child(first_child_row, next_row, prev_row, parent_row[v as usize], v);
        let v = v as usize;
        dist_row[v] = INFINITE_DISTANCE;
        succ_row[v] = None;
        parent_row[v] = NO_PARENT;
    }
    heap.heap.clear();
    let heap_bound = adjacency.edge_count() + 1;
    if heap.heap.capacity() < heap_bound {
        heap.heap.reserve(heap_bound);
    }
    for i in 0..repair.touched.len() {
        let v = repair.touched[i] as usize;
        let mut best = INFINITE_DISTANCE;
        for &(u, w) in in_adjacency.neighbors(v) {
            if !repair.is_affected(u) && dist_row[u].is_finite() {
                let cand = dist_row[u] + w;
                if cand < best {
                    best = cand;
                }
            }
        }
        if best.is_finite() {
            dist_row[v] = best;
            heap.heap.push(core::cmp::Reverse(pack_entry(best, v)));
        }
    }

    // Phase C — Dijkstra restricted to the affected set. Pop order is
    // `(dist, id)` ascending, exactly the full run's settle order.
    repair.pops.clear();
    while let Some(core::cmp::Reverse(entry)) = heap.heap.pop() {
        let (du, u) = unpack_entry(entry);
        if du > dist_row[u] {
            continue; // stale entry
        }
        repair.pops.push(u as u32);
        for &(v, w) in adjacency.neighbors(u) {
            if !repair.is_affected(v) {
                continue;
            }
            let nd = du + w;
            if nd < dist_row[v] {
                dist_row[v] = nd;
                heap.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
            }
        }
    }

    // Phase D — successors/parents from the achiever rule, in pop order
    // so an affected achiever's own entries are already final when a
    // later node reads them. Each repaired node relinks under its new
    // parent; nodes that ended up unreachable stay unlinked, which is
    // exactly the tree a fresh run would leave behind.
    for i in 0..repair.pops.len() {
        let v = repair.pops[i] as usize;
        let dv = dist_row[v];
        let mut best: Option<(u64, usize)> = None;
        for &(u, w) in in_adjacency.neighbors(v) {
            let du = dist_row[u];
            if du.is_finite() && du + w == dv && (du < dv || (du == dv && u < v)) {
                let key = (du.to_bits(), u);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        // A finite repaired distance always has an achiever that settles
        // strictly before `v` (weights are positive in this workspace;
        // the zero-weight corner would need the unfiltered minimum).
        let u = best.expect("finite repaired distance has an earlier achiever").1;
        parent_row[v] = u as u32;
        succ_row[v] = if u == s { Some(NodeId::new(v)) } else { succ_row[u] };
        link_child(first_child_row, next_row, prev_row, u as u32, v as u32);
    }

    // Settled accounting: the unaffected nodes keep their reachability;
    // of the touched ones, exactly the repaired pops remain reachable.
    let mut new_settled = settled - repair.touched.len() + repair.pops.len();

    // ===== Decrease half =====
    let mut improved_total = 0usize;
    if any_relevant_decrease {
        // Phase E — seed the improvement heap. Improvements enter the
        // row through (a) decreased edges whose head gets cheaper and
        // (b) increase-phase pops whose distance *dropped* (Phase C
        // relaxes post-delta weights, so a repaired node can come back
        // cheaper through a decreased edge); their out-edges may now
        // undercut neighbours outside the affected set, which the
        // restricted Phase C never relaxed. Exact-tie relaxations are
        // recorded as tie heads: achiever sets can only *gain* members
        // at the heads of changed edges or cheaper tails, and a false
        // positive costs one no-op achiever scan.
        repair.improved.clear();
        repair.tie_heads.clear();
        repair.bump_stamp2(n);
        heap.heap.clear();
        for i in 0..repair.decreases.len() {
            let d = repair.decreases[i];
            let du = dist_row[d.from as usize];
            if !du.is_finite() {
                continue;
            }
            let nd = du + d.new;
            let v = d.to as usize;
            if nd < dist_row[v] {
                if !dist_row[v].is_finite() {
                    new_settled += 1;
                }
                dist_row[v] = nd;
                heap.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
            } else if nd == dist_row[v] && v != s {
                repair.tie_heads.push(d.to);
            }
        }
        for i in 0..repair.pops.len() {
            let u = repair.pops[i] as usize;
            let du = dist_row[u];
            for &(v, w) in adjacency.neighbors(u) {
                let nd = du + w;
                if nd < dist_row[v] {
                    if !dist_row[v].is_finite() {
                        new_settled += 1;
                    }
                    dist_row[v] = nd;
                    heap.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
                } else if nd == dist_row[v] && v != s {
                    repair.tie_heads.push(v as u32);
                }
            }
        }

        // Phase F — improvement Dijkstra with *global* relaxation: an
        // improvement is not confined to any old subtree, so any node
        // that gets cheaper joins the frontier. Pop order is `(dist,
        // id)` ascending on final values, making every valid pop final.
        while let Some(core::cmp::Reverse(entry)) = heap.heap.pop() {
            let (du, u) = unpack_entry(entry);
            if du > dist_row[u] || !repair.mark2(u as u32) {
                continue; // stale or duplicate-key entry
            }
            repair.improved.push(u as u32);
            // Combined-frontier cost gate. Unlike the increase gate
            // this fires mid-repair: the rows are dirty, and the
            // caller's mandatory full re-run rewrites them (see
            // [`RepairOutcome::Rerun`]).
            #[allow(clippy::cast_precision_loss)]
            if (repair.touched.len() + repair.improved.len()) as f64
                > max_affected_fraction * new_settled as f64
            {
                return RepairOutcome::Rerun;
            }
            for &(v, w) in adjacency.neighbors(u) {
                let nd = du + w;
                if nd < dist_row[v] {
                    if !dist_row[v].is_finite() {
                        new_settled += 1;
                    }
                    dist_row[v] = nd;
                    heap.heap.push(core::cmp::Reverse(pack_entry(nd, v)));
                } else if nd == dist_row[v] && v != s {
                    // `u` got cheaper, so it may be a *new* achiever.
                    repair.tie_heads.push(v as u32);
                }
            }
        }

        // Phase G — re-hang each improved node under its achiever
        // (parents only; successors are derived in Phase I, once every
        // parent is final).
        for i in 0..repair.improved.len() {
            let v = repair.improved[i] as usize;
            let dv = dist_row[v];
            let mut best: Option<(u64, usize)> = None;
            for &(u, w) in in_adjacency.neighbors(v) {
                let du = dist_row[u];
                if du.is_finite() && du + w == dv && (du < dv || (du == dv && u < v)) {
                    let key = (du.to_bits(), u);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let u = best.expect("finite improved distance has an earlier achiever").1;
            let old = parent_row[v];
            if old != u as u32 {
                if old != NO_PARENT {
                    unlink_child(first_child_row, next_row, prev_row, old, v as u32);
                }
                parent_row[v] = u as u32;
                link_child(first_child_row, next_row, prev_row, u as u32, v as u32);
            }
        }

        // Phase H — exact-tie achiever flips. A tie head's distance is
        // unchanged, but a changed edge or a cheaper tail may now be
        // its min-(dist, id) achiever; re-derive and re-hang on a flip.
        // Improved nodes are skipped (already exact); duplicate heads
        // self-dedupe (the second scan finds the updated parent).
        for i in 0..repair.tie_heads.len() {
            let v = repair.tie_heads[i] as usize;
            if repair.is_marked2(v) {
                continue;
            }
            let dv = dist_row[v];
            let mut best: Option<(u64, usize)> = None;
            for &(u, w) in in_adjacency.neighbors(v) {
                let du = dist_row[u];
                if du.is_finite() && du + w == dv && (du < dv || (du == dv && u < v)) {
                    let key = (du.to_bits(), u);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let u = best.expect("a tie head keeps a finite distance and an achiever").1;
            if parent_row[v] != u as u32 {
                unlink_child(first_child_row, next_row, prev_row, parent_row[v], v as u32);
                parent_row[v] = u as u32;
                link_child(first_child_row, next_row, prev_row, u as u32, v as u32);
                repair.improved.push(v as u32); // successor seed
            }
        }
        improved_total = repair.improved.len();

        // Phase I — successor refresh. A re-hung node changes the
        // successor of its whole subtree (descendants keep parents but
        // inherit the source-adjacent hop), so collect the subtree
        // closure of every improved/flipped node and assign successors
        // in `(dist, id)` order: a tree parent settles strictly before
        // its child, so each node reads a final value from its parent.
        repair.bump_stamp2(n);
        repair.succ_dirty.clear();
        repair.stack.clear();
        for i in 0..repair.improved.len() {
            let v = repair.improved[i];
            if repair.mark2(v) {
                repair.succ_dirty.push(v);
                repair.stack.push(v);
            }
        }
        while let Some(v) = repair.stack.pop() {
            let mut child = first_child_row[v as usize];
            while child != NO_PARENT {
                if repair.mark2(child) {
                    repair.succ_dirty.push(child);
                    repair.stack.push(child);
                }
                child = next_row[child as usize];
            }
        }
        repair.succ_dirty.sort_unstable_by_key(|&v| pack_entry(dist_row[v as usize], v as usize));
        for i in 0..repair.succ_dirty.len() {
            let v = repair.succ_dirty[i] as usize;
            let p = parent_row[v] as usize;
            succ_row[v] = if p == s { Some(NodeId::new(v)) } else { succ_row[p] };
        }
        // Merge into the touched set; the increase-phase marks in
        // `affected` are still live, so the merge stays duplicate-free.
        for i in 0..repair.succ_dirty.len() {
            let v = repair.succ_dirty[i];
            if repair.mark(v) {
                repair.touched.push(v);
            }
        }
    }

    trees.set_settled(s, new_settled as u32);

    RepairOutcome::Repaired { touched: repair.touched.len(), improved: improved_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_source_into, DiGraph};
    use etx_units::Length;
    use proptest::prelude::*;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    /// A weighted digraph from an edge list over `n` nodes.
    fn graph_from(n: usize, edges: &[(usize, usize, f64)]) -> Matrix<f64> {
        let mut g = DiGraph::new(n);
        for &(a, b, w) in edges {
            if a != b {
                let _ = g.add_edge(NodeId::new(a), NodeId::new(b), cm(w));
            }
        }
        g.weight_matrix(|e| e.length.centimetres())
    }

    struct Solved {
        adjacency: AdjacencyList,
        in_adjacency: AdjacencyList,
        trees: SpTreeStore,
        dist: Matrix<f64>,
        succ: Matrix<Option<NodeId>>,
    }

    fn solve(weights: &Matrix<f64>) -> Solved {
        let n = weights.rows();
        let mut adjacency = AdjacencyList::new();
        adjacency.rebuild(weights);
        let mut in_adjacency = AdjacencyList::new();
        in_adjacency.rebuild_transpose(weights);
        let mut trees = SpTreeStore::new();
        trees.reset(n);
        let mut dist = Matrix::filled(n, n, 0.0);
        let mut succ = Matrix::filled(n, n, None);
        let mut scratch = DijkstraScratch::new();
        for s in 0..n {
            dijkstra_source_tree_into(
                &adjacency,
                NodeId::new(s),
                &mut scratch,
                dist.row_slice_mut(s),
                succ.row_slice_mut(s),
                &mut trees,
            );
        }
        Solved { adjacency, in_adjacency, trees, dist, succ }
    }

    /// Applies `deltas` to `weights` and repairs every source of
    /// `solved`, falling back to a recorded re-run when asked — then
    /// asserts bit-equality (dist, succ, parent, order) with a from-
    /// scratch solve over the new weights.
    fn repair_all_and_check(
        weights: &mut Matrix<f64>,
        solved: &mut Solved,
        deltas: &[WeightDelta],
    ) {
        let n = weights.rows();
        for d in deltas {
            weights[(d.from as usize, d.to as usize)] = d.new;
        }
        for d in deltas {
            solved.adjacency.sync_node(d.to as usize, weights);
            solved.adjacency.sync_node(d.from as usize, weights);
            solved.in_adjacency.sync_node_transpose(d.to as usize, weights);
            solved.in_adjacency.sync_node_transpose(d.from as usize, weights);
        }
        let mut repair = RepairScratch::new();
        repair.prepare(deltas, n);
        let mut heap = DijkstraScratch::new();
        for s in 0..n {
            let outcome = repair_source(
                &solved.adjacency,
                &solved.in_adjacency,
                NodeId::new(s),
                &mut heap,
                &mut repair,
                &mut solved.trees,
                solved.dist.row_slice_mut(s),
                solved.succ.row_slice_mut(s),
                0.75,
            );
            if outcome == RepairOutcome::Rerun {
                dijkstra_source_tree_into(
                    &solved.adjacency,
                    NodeId::new(s),
                    &mut heap,
                    solved.dist.row_slice_mut(s),
                    solved.succ.row_slice_mut(s),
                    &mut solved.trees,
                );
            }
        }
        let fresh = solve(weights);
        assert_eq!(solved.dist, fresh.dist, "distances diverged");
        assert_eq!(solved.succ, fresh.succ, "successors diverged");
        for s in 0..n {
            assert_eq!(solved.trees.settled(s), fresh.trees.settled(s), "settled count s={s}");
            for v in 0..n {
                assert_eq!(solved.trees.parent(s, v), fresh.trees.parent(s, v), "parent {s}->{v}");
            }
        }
    }

    #[test]
    fn tree_dijkstra_matches_plain_dijkstra() {
        let w = graph_from(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0), (0, 3, 5.0), (3, 4, 1.0)]);
        let solved = solve(&w);
        let mut adjacency = AdjacencyList::new();
        adjacency.rebuild(&w);
        let mut scratch = DijkstraScratch::new();
        let mut dist = vec![0.0; 5];
        let mut succ = vec![None; 5];
        for s in 0..5 {
            dijkstra_source_into(&adjacency, NodeId::new(s), &mut scratch, &mut dist, &mut succ);
            assert_eq!(dist, solved.dist.row_slice(s), "dist row {s}");
            assert_eq!(succ, solved.succ.row_slice(s), "succ row {s}");
        }
        // Parents form a tree rooted at the source.
        assert_eq!(solved.trees.parent(0, 0), None);
        assert_eq!(solved.trees.parent(0, 2), Some(NodeId::new(1)));
        // Settle order starts at the source.
        assert_eq!(solved.trees.settled(0), 5);
    }

    #[test]
    fn single_increase_repair_is_exact() {
        let mut w =
            graph_from(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.5), (2, 3, 1.5), (3, 0, 1.0)]);
        let mut solved = solve(&w);
        // Raise the 0->1 shortcut past the detour.
        let deltas = [WeightDelta { from: 0, to: 1, old: 1.0, new: 4.0 }];
        repair_all_and_check(&mut w, &mut solved, &deltas);
    }

    #[test]
    fn edge_removal_repair_is_exact() {
        let mut w = graph_from(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 9.0)]);
        let mut solved = solve(&w);
        let deltas = [WeightDelta { from: 1, to: 2, old: 1.0, new: INFINITE_DISTANCE }];
        repair_all_and_check(&mut w, &mut solved, &deltas);
    }

    #[test]
    fn irrelevant_decrease_is_unchanged_and_exact_tie_repairs_in_place() {
        let mut w = graph_from(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let mut solved = solve(&w);
        let mut heap = DijkstraScratch::new();
        let mut repair = RepairScratch::new();
        // 5.0 -> 4.0 still loses to the 2.0 path: provably untouchable.
        repair.prepare(&[WeightDelta { from: 0, to: 2, old: 5.0, new: 4.0 }], 3);
        let outcome = repair_source(
            &solved.adjacency,
            &solved.in_adjacency,
            NodeId::new(0),
            &mut heap,
            &mut repair,
            &mut solved.trees,
            solved.dist.row_slice_mut(0),
            solved.succ.row_slice_mut(0),
            0.75,
        );
        assert_eq!(outcome, RepairOutcome::Unchanged);
        // 5.0 -> 2.0 ties the detour. The direct edge 0->2 becomes the
        // min-(dist, id) achiever of node 2 (tail 0 settles first), so
        // the successor must flip from "via 1" to "direct" — exactly
        // the tie case that used to force a rerun.
        let deltas = [WeightDelta { from: 0, to: 2, old: 5.0, new: 2.0 }];
        repair_all_and_check(&mut w, &mut solved, &deltas);
        assert_eq!(solved.succ[(0, 2)], Some(NodeId::new(2)), "achiever tie must flip to direct");
    }

    #[test]
    fn decrease_repair_reroutes_outside_the_old_subtree() {
        // 0 -> 1 -> 2 -> 3 costs 6; dropping the spur 0 -> 4 -> 3 to
        // cost 3 improves node 3 (and nothing else) — an improvement
        // that no increase-subtree walk would ever find.
        let mut w =
            graph_from(5, &[(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0), (0, 4, 9.0), (4, 3, 1.0)]);
        let mut solved = solve(&w);
        let deltas = [WeightDelta { from: 0, to: 4, old: 9.0, new: 2.0 }];
        repair_all_and_check(&mut w, &mut solved, &deltas);
        assert_eq!(solved.dist[(0, 3)], 3.0);
        assert_eq!(solved.succ[(0, 3)], Some(NodeId::new(4)), "3 now routes via the spur");
    }

    #[test]
    fn revival_decrease_restores_reachability() {
        // Node 2 starts cut off (both incident edges absent); restoring
        // them makes it reachable again purely through the decrease
        // half, which must also grow the settled count.
        let mut w = graph_from(4, &[(0, 1, 1.0), (1, 3, 4.0)]);
        let mut solved = solve(&w);
        assert_eq!(solved.trees.settled(0), 3);
        let deltas = [
            WeightDelta { from: 1, to: 2, old: INFINITE_DISTANCE, new: 1.0 },
            WeightDelta { from: 2, to: 3, old: INFINITE_DISTANCE, new: 1.0 },
        ];
        repair_all_and_check(&mut w, &mut solved, &deltas);
        assert_eq!(solved.trees.settled(0), 4);
        assert_eq!(solved.dist[(0, 2)], 2.0);
        assert_eq!(solved.dist[(0, 3)], 3.0, "3 reroutes through the revived node");
    }

    #[test]
    fn mixed_increase_and_decrease_batch_is_exact() {
        // The increase invalidates 1's subtree while the decrease opens
        // a cheaper detour through 3 — the combined batch exercises the
        // phase-C/decrease interaction (a repaired node coming back
        // cheaper through a decreased edge).
        let mut w =
            graph_from(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 3, 5.0), (3, 2, 1.0), (3, 1, 1.0)]);
        let mut solved = solve(&w);
        let deltas = [
            WeightDelta { from: 0, to: 1, old: 1.0, new: 6.0 },
            WeightDelta { from: 0, to: 3, old: 5.0, new: 1.0 },
        ];
        repair_all_and_check(&mut w, &mut solved, &deltas);
        assert_eq!(solved.dist[(0, 2)], 2.0);
        assert_eq!(solved.dist[(0, 1)], 2.0, "1 reroutes through the cheaper spur");
    }

    #[test]
    fn frontier_gate_demands_rerun() {
        // Increasing the source's only out-edge affects every settled
        // node: with a tiny gate the repair must decline untouched.
        let w = graph_from(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let mut solved = solve(&w);
        let before = solved.dist.clone();
        let mut heap = DijkstraScratch::new();
        let mut repair = RepairScratch::new();
        repair.prepare(&[WeightDelta { from: 0, to: 1, old: 1.0, new: 2.0 }], 4);
        let outcome = repair_source(
            &solved.adjacency,
            &solved.in_adjacency,
            NodeId::new(0),
            &mut heap,
            &mut repair,
            &mut solved.trees,
            solved.dist.row_slice_mut(0),
            solved.succ.row_slice_mut(0),
            0.1,
        );
        assert_eq!(outcome, RepairOutcome::Rerun);
        assert_eq!(solved.dist, before, "a declined repair must not touch the rows");
    }

    #[test]
    fn transpose_adjacency_mirrors_rows() {
        let mut w = graph_from(4, &[(0, 1, 1.0), (2, 1, 3.0), (1, 3, 2.0), (3, 0, 1.0)]);
        let mut t = AdjacencyList::new();
        t.rebuild_transpose(&w);
        assert_eq!(t.neighbors(1), &[(0, 1.0), (2, 3.0)]);
        assert_eq!(t.neighbors(0), &[(3, 1.0)]);
        assert_eq!(t.edge_count(), 4);
        // Incremental sync equals a fresh transpose rebuild.
        w[(2, 1)] = INFINITE_DISTANCE;
        w[(1, 0)] = 2.5;
        t.sync_node_transpose(1, &w);
        let mut fresh = AdjacencyList::new();
        fresh.rebuild_transpose(&w);
        assert_eq!(t, fresh);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Chains of random mixed delta batches (increases, removals,
        /// decreases, insertions) repaired per source — with re-run
        /// fallback — stay bit-identical to from-scratch solves.
        #[test]
        fn chained_repairs_equal_fresh_solves(
            n in 2usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.5f64..8.0), 1..30),
            batches in proptest::collection::vec(
                proptest::collection::vec((0usize..8, 0usize..8, 0u8..4, 0.5f64..8.0), 1..4),
                1..5
            ),
        ) {
            let edges: Vec<(usize, usize, f64)> =
                edges.into_iter().map(|(a, b, w)| (a % n, b % n, w)).collect();
            let mut weights = graph_from(n, &edges);
            let mut solved = solve(&weights);
            for batch in &batches {
                let mut deltas = Vec::new();
                for &(a, b, kind, w) in batch {
                    let (a, b) = (a % n, b % n);
                    if a == b {
                        continue;
                    }
                    let old = weights[(a, b)];
                    let new = match kind {
                        0 => old * 3.0,              // increase (∞ stays ∞)
                        1 => INFINITE_DISTANCE,      // removal
                        2 if old.is_finite() => old * 0.5, // decrease
                        _ => w,                      // set (insert or move)
                    };
                    if new != old && !(new.is_nan()) {
                        // Dedup within the batch: keep the last write.
                        deltas.retain(|d: &WeightDelta| !(d.from as usize == a && d.to as usize == b));
                        deltas.push(WeightDelta { from: a as u32, to: b as u32, old, new });
                    }
                }
                if deltas.is_empty() {
                    continue;
                }
                repair_all_and_check(&mut weights, &mut solved, &deltas);
            }
        }
    }
}
