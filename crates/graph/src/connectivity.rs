//! Reachability helpers.
//!
//! `et_sim` needs these for its system-death checks: once batteries start
//! dying, jobs can only continue while every live module duplicate remains
//! reachable through live relays.

use crate::{DiGraph, NodeId};

/// Returns the set of nodes reachable from `start` (including `start`),
/// walking only edges whose *endpoints* both satisfy `alive`.
///
/// Dead nodes cannot relay packets, so reachability in a partially-dead
/// network must skip them entirely; a dead `start` reaches nothing.
#[must_use]
pub fn reachable_from<F: Fn(NodeId) -> bool>(
    graph: &DiGraph,
    start: NodeId,
    alive: F,
) -> Vec<NodeId> {
    if !graph.contains(start) || !alive(start) {
        return Vec::new();
    }
    let mut visited = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    let mut out = vec![start];
    while let Some(cur) = queue.pop_front() {
        for (next, _) in graph.neighbors(cur) {
            if !visited[next.index()] && alive(next) {
                visited[next.index()] = true;
                out.push(next);
                queue.push_back(next);
            }
        }
    }
    out
}

/// `true` if every node can reach every other node.
///
/// Uses forward BFS from node 0 plus a BFS on the transposed graph, which
/// suffices for strong connectivity.
#[must_use]
pub fn is_strongly_connected(graph: &DiGraph) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    let start = NodeId::new(0);
    if reachable_from(graph, start, |_| true).len() != n {
        return false;
    }
    // BFS on the reverse graph.
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(start);
    let mut count = 1;
    while let Some(cur) = queue.pop_front() {
        for from in graph.nodes() {
            if !visited[from.index()] && graph.has_edge(from, cur) {
                visited[from.index()] = true;
                count += 1;
                queue.push_back(from);
            }
        }
    }
    count == n
}

/// `true` if `to` is reachable from `from` through nodes satisfying `alive`.
#[must_use]
pub fn is_reachable_via<F: Fn(NodeId) -> bool>(
    graph: &DiGraph,
    from: NodeId,
    to: NodeId,
    alive: F,
) -> bool {
    if from == to {
        return alive(from);
    }
    reachable_from(graph, from, alive).contains(&to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use etx_units::Length;

    fn cm(v: f64) -> Length {
        Length::from_centimetres(v)
    }

    #[test]
    fn full_mesh_is_strongly_connected() {
        let g = topology::Mesh2D::square(4, cm(1.0)).to_graph();
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn one_way_edge_is_not_strongly_connected() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), cm(1.0)).unwrap();
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn empty_and_singleton_are_trivially_connected() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert!(!is_strongly_connected(&DiGraph::new(2)));
    }

    #[test]
    fn dead_nodes_partition_a_line() {
        // 0 - 1 - 2 - 3 with node 1 dead: 0 is isolated from {2, 3}.
        let g = topology::line(4, cm(1.0));
        let alive = |n: NodeId| n.index() != 1;
        let from0 = reachable_from(&g, NodeId::new(0), alive);
        assert_eq!(from0, vec![NodeId::new(0)]);
        assert!(!is_reachable_via(&g, NodeId::new(0), NodeId::new(3), alive));
        assert!(is_reachable_via(&g, NodeId::new(2), NodeId::new(3), alive));
    }

    #[test]
    fn dead_start_reaches_nothing() {
        let g = topology::line(3, cm(1.0));
        assert!(reachable_from(&g, NodeId::new(0), |_| false).is_empty());
        assert!(!is_reachable_via(&g, NodeId::new(0), NodeId::new(0), |_| false));
    }

    #[test]
    fn reachable_from_unknown_node_is_empty() {
        let g = topology::line(3, cm(1.0));
        assert!(reachable_from(&g, NodeId::new(9), |_| true).is_empty());
    }

    #[test]
    fn mesh_survives_single_interior_death() {
        let mesh = topology::Mesh2D::square(4, cm(1.0));
        let g = mesh.to_graph();
        let dead = mesh.node_at(2, 2).unwrap();
        let alive = |n: NodeId| n != dead;
        let start = mesh.node_at(1, 1).unwrap();
        let reach = reachable_from(&g, start, alive);
        assert_eq!(reach.len(), 15); // everyone else still reachable
    }
}
