//! Event tracing for `et_sim` runs.
//!
//! The paper debugs its simulator by watching when nodes die, when the
//! controller recomputes routes, and when jobs stall; [`SimTrace`]
//! captures exactly those events, cheaply enough to leave on during
//! experiments (events are plain enums in a `Vec`).

use core::fmt;

use etx_app::ModuleId;
use etx_graph::NodeId;

/// One timestamped event in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node's battery died.
    NodeDied {
        /// The dead node.
        node: NodeId,
        /// The module it hosted.
        module: ModuleId,
    },
    /// A scripted revival reconnected a node to the fabric.
    NodeRevived {
        /// The reconnected node.
        node: NodeId,
        /// The module it hosts.
        module: ModuleId,
    },
    /// A job completed its final operation.
    JobCompleted {
        /// Job id.
        job: u64,
    },
    /// A job was lost to a node death.
    JobLost {
        /// Job id.
        job: u64,
        /// Where it was lost.
        at: NodeId,
    },
    /// The controller recomputed the routing tables.
    RoutingRecomputed {
        /// Monotonic routing version after the recompute.
        version: u64,
    },
    /// A node reported a deadlock during the upload phase.
    DeadlockReported {
        /// The reporting node.
        node: NodeId,
    },
    /// The controller reprogrammed a node to host a different module.
    Remapped {
        /// The reprogrammed node.
        node: NodeId,
        /// The module it now hosts.
        to: ModuleId,
    },
    /// The active controller failed over (or all controllers died).
    ControllerFailover {
        /// Controllers still alive after the failover.
        remaining: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::NodeDied { node, module } => write!(f, "{node} ({module}) died"),
            TraceEvent::NodeRevived { node, module } => write!(f, "{node} ({module}) revived"),
            TraceEvent::JobCompleted { job } => write!(f, "job {job} completed"),
            TraceEvent::JobLost { job, at } => write!(f, "job {job} lost at {at}"),
            TraceEvent::RoutingRecomputed { version } => {
                write!(f, "routing recomputed (v{version})")
            }
            TraceEvent::DeadlockReported { node } => write!(f, "{node} reported deadlock"),
            TraceEvent::Remapped { node, to } => write!(f, "{node} remapped to {to}"),
            TraceEvent::ControllerFailover { remaining } => {
                write!(f, "controller failover ({remaining} remaining)")
            }
        }
    }
}

/// What a full [`SimTrace`] does with further events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceOverflow {
    /// Keep the *first* `capacity` events and count the rest (the
    /// original behaviour, and still the default).
    #[default]
    KeepFirst,
    /// Treat the storage as a ring buffer: keep the *latest* `capacity`
    /// events, overwriting the oldest. Long fleet runs use this so a
    /// traced instance's memory stays bounded at `capacity` events no
    /// matter how long it lives, while the tail — where deaths, stalls
    /// and failovers cluster — is preserved.
    Ring,
}

/// One contiguous run of stored trace entries (see [`SimTrace::runs`]).
pub type TraceRun<'a> = &'a [(u64, TraceEvent)];

/// A bounded, timestamped event log.
///
/// Disabled by default (zero cost); enable it with
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]
/// or any non-zero capacity. Once full, the [`TraceOverflow`] policy
/// decides whether further events are counted-but-ignored
/// ([`TraceOverflow::KeepFirst`]) or overwrite the oldest entries
/// ([`TraceOverflow::Ring`]).
///
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]:
///     crate::SimConfig
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    capacity: usize,
    overflow: TraceOverflow,
    events: Vec<(u64, TraceEvent)>,
    /// Ring mode: index of the *oldest* stored event once the buffer has
    /// wrapped (equivalently, where the next overwrite lands).
    head: usize,
    dropped: u64,
}

impl SimTrace {
    /// Creates a trace holding at most `capacity` events, keeping the
    /// first ones on overflow.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SimTrace { capacity, ..SimTrace::default() }
    }

    /// Creates a ring trace holding the *latest* `capacity` events.
    #[must_use]
    pub fn ring(capacity: usize) -> Self {
        SimTrace { capacity, overflow: TraceOverflow::Ring, ..SimTrace::default() }
    }

    /// `true` if this trace stores nothing (capacity 0).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// The overflow policy.
    #[must_use]
    pub fn overflow(&self) -> TraceOverflow {
        self.overflow
    }

    /// Records an event at cycle `now`.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push((now, event));
        } else if self.capacity == 0 {
            // Disabled: drop silently and cheaply.
        } else if self.overflow == TraceOverflow::Ring {
            self.events[self.head] = (now, event);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The stored `(cycle, event)` pairs in chronological order, as the
    /// two contiguous runs of the underlying storage: `(older, newer)`.
    /// For a [`TraceOverflow::KeepFirst`] trace (or an unwrapped ring)
    /// everything is in the first run and the second is empty.
    #[must_use]
    pub fn runs(&self) -> (TraceRun<'_>, TraceRun<'_>) {
        let (newer, older) = self.events.split_at(self.head);
        if older.is_empty() {
            // head == len: degenerate wrap right at the boundary.
            (newer, older)
        } else {
            (older, newer)
        }
    }

    /// Iterates over the stored events in chronological order (works in
    /// both overflow modes, wrapped or not).
    pub fn iter(&self) -> impl Iterator<Item = &(u64, TraceEvent)> + '_ {
        let (older, newer) = self.runs();
        older.iter().chain(newer.iter())
    }

    /// The stored `(cycle, event)` pairs, in order.
    ///
    /// A wrapped [`TraceOverflow::Ring`] trace stores its events
    /// rotated; use [`SimTrace::iter`] or [`SimTrace::runs`] there —
    /// this accessor keeps its borrow-as-slice shape for the
    /// `KeepFirst` traces the seed tests drive.
    #[must_use]
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Events that arrived after the log filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over events of one kind, in chronological order.
    pub fn filter<'a, F: Fn(&TraceEvent) -> bool + 'a>(
        &'a self,
        predicate: F,
    ) -> impl Iterator<Item = &'a (u64, TraceEvent)> + 'a {
        self.iter().filter(move |(_, e)| predicate(e))
    }

    /// Renders the log as one line per event, oldest first.
    #[must_use]
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        if self.overflow == TraceOverflow::Ring && self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events overwritten", self.dropped);
        }
        for (cycle, event) in self.iter() {
            let _ = writeln!(out, "[{cycle:>8}] {event}");
        }
        if self.overflow == TraceOverflow::KeepFirst && self.dropped > 0 {
            let _ = writeln!(out, "... {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_stores_nothing() {
        let mut t = SimTrace::default();
        assert!(t.is_disabled());
        t.record(5, TraceEvent::JobCompleted { job: 1 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_capacity_counts_overflow() {
        let mut t = SimTrace::with_capacity(2);
        for i in 0..5 {
            t.record(i, TraceEvent::JobCompleted { job: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let s = t.render();
        assert!(s.contains("job 0 completed"));
        assert!(s.contains("3 further events dropped"));
    }

    #[test]
    fn filter_by_kind() {
        let mut t = SimTrace::with_capacity(10);
        t.record(1, TraceEvent::JobCompleted { job: 1 });
        t.record(2, TraceEvent::NodeDied { node: NodeId::new(3), module: ModuleId::new(0) });
        t.record(3, TraceEvent::JobCompleted { job: 2 });
        let completions: Vec<_> =
            t.filter(|e| matches!(e, TraceEvent::JobCompleted { .. })).collect();
        assert_eq!(completions.len(), 2);
    }

    #[test]
    fn ring_keeps_latest_events() {
        let mut t = SimTrace::ring(3);
        assert_eq!(t.overflow(), TraceOverflow::Ring);
        for i in 0..10 {
            t.record(i, TraceEvent::JobCompleted { job: i });
        }
        // Memory stays bounded at capacity; the latest 3 survive.
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let ids: Vec<u64> = t
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::JobCompleted { job } => *job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
        // Chronological iteration holds across the wrap point.
        let cycles: Vec<u64> = t.iter().map(|(c, _)| *c).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        let s = t.render();
        assert!(s.contains("job 9 completed"));
        assert!(s.contains("7 earlier events overwritten"));
        assert!(!s.contains("job 6 completed"));
    }

    #[test]
    fn ring_below_capacity_matches_keep_first() {
        let mut ring = SimTrace::ring(8);
        let mut keep = SimTrace::with_capacity(8);
        for i in 0..5 {
            ring.record(i, TraceEvent::JobCompleted { job: i });
            keep.record(i, TraceEvent::JobCompleted { job: i });
        }
        assert_eq!(ring.events(), keep.events());
        assert_eq!(ring.dropped(), 0);
        let (older, newer) = ring.runs();
        assert_eq!(older.len(), 5);
        assert!(newer.is_empty());
    }

    #[test]
    fn event_display() {
        assert_eq!(
            TraceEvent::NodeDied { node: NodeId::new(1), module: ModuleId::new(2) }.to_string(),
            "n1 (M3) died"
        );
        assert_eq!(
            TraceEvent::Remapped { node: NodeId::new(4), to: ModuleId::new(0) }.to_string(),
            "n4 remapped to M1"
        );
        assert!(TraceEvent::ControllerFailover { remaining: 2 }
            .to_string()
            .contains("2 remaining"));
    }
}
