//! Event tracing for `et_sim` runs.
//!
//! The paper debugs its simulator by watching when nodes die, when the
//! controller recomputes routes, and when jobs stall; [`SimTrace`]
//! captures exactly those events, cheaply enough to leave on during
//! experiments (events are plain enums in a `Vec`).

use core::fmt;

use etx_app::ModuleId;
use etx_graph::NodeId;

/// One timestamped event in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node's battery died.
    NodeDied {
        /// The dead node.
        node: NodeId,
        /// The module it hosted.
        module: ModuleId,
    },
    /// A scripted revival reconnected a node to the fabric.
    NodeRevived {
        /// The reconnected node.
        node: NodeId,
        /// The module it hosts.
        module: ModuleId,
    },
    /// A job completed its final operation.
    JobCompleted {
        /// Job id.
        job: u64,
    },
    /// A job was lost to a node death.
    JobLost {
        /// Job id.
        job: u64,
        /// Where it was lost.
        at: NodeId,
    },
    /// The controller recomputed the routing tables.
    RoutingRecomputed {
        /// Monotonic routing version after the recompute.
        version: u64,
    },
    /// A node reported a deadlock during the upload phase.
    DeadlockReported {
        /// The reporting node.
        node: NodeId,
    },
    /// The controller reprogrammed a node to host a different module.
    Remapped {
        /// The reprogrammed node.
        node: NodeId,
        /// The module it now hosts.
        to: ModuleId,
    },
    /// The active controller failed over (or all controllers died).
    ControllerFailover {
        /// Controllers still alive after the failover.
        remaining: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::NodeDied { node, module } => write!(f, "{node} ({module}) died"),
            TraceEvent::NodeRevived { node, module } => write!(f, "{node} ({module}) revived"),
            TraceEvent::JobCompleted { job } => write!(f, "job {job} completed"),
            TraceEvent::JobLost { job, at } => write!(f, "job {job} lost at {at}"),
            TraceEvent::RoutingRecomputed { version } => {
                write!(f, "routing recomputed (v{version})")
            }
            TraceEvent::DeadlockReported { node } => write!(f, "{node} reported deadlock"),
            TraceEvent::Remapped { node, to } => write!(f, "{node} remapped to {to}"),
            TraceEvent::ControllerFailover { remaining } => {
                write!(f, "controller failover ({remaining} remaining)")
            }
        }
    }
}

/// What a full [`SimTrace`] does with further events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceOverflow {
    /// Keep the *first* `capacity` events and count the rest (the
    /// original behaviour, and still the default).
    #[default]
    KeepFirst,
    /// Treat the storage as a ring buffer: keep the *latest* `capacity`
    /// events, overwriting the oldest. Long fleet runs use this so a
    /// traced instance's memory stays bounded at `capacity` events no
    /// matter how long it lives, while the tail — where deaths, stalls
    /// and failovers cluster — is preserved.
    Ring,
}

/// One stored trace entry: the event plus when it happened.
///
/// Entries carry both the raw simulation cycle and the TDMA frame the
/// event occurred in, so frame-granular consumers (the `etx-trace`
/// recorder, timeline emitters) can bucket events per frame without
/// re-deriving the frame boundary from the cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// TDMA frame the event occurred in (0 = before the first frame).
    pub frame: u64,
    /// Simulation cycle the event occurred at.
    pub cycle: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceEntry {
    /// Builds an entry.
    #[must_use]
    pub fn new(frame: u64, cycle: u64, event: TraceEvent) -> Self {
        TraceEntry { frame, cycle, event }
    }
}

/// One contiguous run of stored trace entries (see [`SimTrace::runs`]).
pub type TraceRun<'a> = &'a [TraceEntry];

/// A bounded, timestamped event log.
///
/// Disabled by default (zero cost); enable it with
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]
/// or any non-zero capacity. Once full, the [`TraceOverflow`] policy
/// decides whether further events are counted-but-ignored
/// ([`TraceOverflow::KeepFirst`]) or overwrite the oldest entries
/// ([`TraceOverflow::Ring`]).
///
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]:
///     crate::SimConfig
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    capacity: usize,
    overflow: TraceOverflow,
    events: Vec<TraceEntry>,
    /// Ring mode: index of the *oldest* stored event once the buffer has
    /// wrapped (equivalently, where the next overwrite lands).
    head: usize,
    dropped: u64,
    /// TDMA frame stamped onto recorded entries (the engine advances it
    /// at every frame boundary).
    current_frame: u64,
    /// Per-frame side buffer: when enabled, *every* event is also pushed
    /// here regardless of `capacity`, and the engine drains it after each
    /// frame for the [`FrameRecorder`](crate::FrameRecorder) hook. The
    /// buffer's capacity is retained across frames (zero steady-state
    /// allocation once warm).
    tap: Vec<TraceEntry>,
    tap_enabled: bool,
}

impl SimTrace {
    /// Creates a trace holding at most `capacity` events, keeping the
    /// first ones on overflow.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SimTrace { capacity, ..SimTrace::default() }
    }

    /// Creates a ring trace holding the *latest* `capacity` events.
    #[must_use]
    pub fn ring(capacity: usize) -> Self {
        SimTrace { capacity, overflow: TraceOverflow::Ring, ..SimTrace::default() }
    }

    /// `true` if this trace stores nothing (capacity 0).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// The overflow policy.
    #[must_use]
    pub fn overflow(&self) -> TraceOverflow {
        self.overflow
    }

    /// Sets the TDMA frame stamped onto subsequently recorded events.
    pub fn set_frame(&mut self, frame: u64) {
        self.current_frame = frame;
    }

    /// Enables the per-frame tap: every subsequent event is also pushed
    /// to the tap buffer (even when `capacity` is 0), until the next
    /// [`SimTrace::clear_tap`].
    pub fn enable_tap(&mut self) {
        self.tap_enabled = true;
    }

    /// The tapped events since the last [`SimTrace::clear_tap`].
    #[must_use]
    pub fn tap(&self) -> &[TraceEntry] {
        &self.tap
    }

    /// Empties the tap buffer, retaining its capacity.
    pub fn clear_tap(&mut self) {
        self.tap.clear();
    }

    /// Records an event at cycle `now`.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        let entry = TraceEntry::new(self.current_frame, now, event);
        if self.tap_enabled {
            self.tap.push(entry);
        }
        if self.events.len() < self.capacity {
            self.events.push(entry);
        } else if self.capacity == 0 {
            // Disabled: drop silently and cheaply (the tap above still
            // sees the event — a frame recorder needs no retained log).
        } else if self.overflow == TraceOverflow::Ring {
            self.events[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The stored entries in chronological order, as the
    /// two contiguous runs of the underlying storage: `(older, newer)`.
    /// For a [`TraceOverflow::KeepFirst`] trace (or an unwrapped ring)
    /// everything is in the first run and the second is empty.
    #[must_use]
    pub fn runs(&self) -> (TraceRun<'_>, TraceRun<'_>) {
        let (newer, older) = self.events.split_at(self.head);
        if older.is_empty() {
            // head == len: degenerate wrap right at the boundary.
            (newer, older)
        } else {
            (older, newer)
        }
    }

    /// Iterates over the stored events in chronological order (works in
    /// both overflow modes, wrapped or not).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        let (older, newer) = self.runs();
        older.iter().chain(newer.iter())
    }

    /// The stored entries, in order.
    ///
    /// A wrapped [`TraceOverflow::Ring`] trace stores its events
    /// rotated; use [`SimTrace::iter`] or [`SimTrace::runs`] there —
    /// this accessor keeps its borrow-as-slice shape for the
    /// `KeepFirst` traces the seed tests drive.
    #[must_use]
    pub fn events(&self) -> &[TraceEntry] {
        &self.events
    }

    /// Events that arrived after the log filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over events of one kind, in chronological order.
    pub fn filter<'a, F: Fn(&TraceEvent) -> bool + 'a>(
        &'a self,
        predicate: F,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.iter().filter(move |entry| predicate(&entry.event))
    }

    /// Renders the log as one line per event, oldest first.
    #[must_use]
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        if self.overflow == TraceOverflow::Ring && self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events overwritten", self.dropped);
        }
        for entry in self.iter() {
            let TraceEntry { frame, cycle, event } = entry;
            let _ = writeln!(out, "[f{frame:>5} @{cycle:>8}] {event}");
        }
        if self.overflow == TraceOverflow::KeepFirst && self.dropped > 0 {
            let _ = writeln!(out, "... {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_stores_nothing() {
        let mut t = SimTrace::default();
        assert!(t.is_disabled());
        t.record(5, TraceEvent::JobCompleted { job: 1 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_capacity_counts_overflow() {
        let mut t = SimTrace::with_capacity(2);
        for i in 0..5 {
            t.record(i, TraceEvent::JobCompleted { job: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let s = t.render();
        assert!(s.contains("job 0 completed"));
        assert!(s.contains("3 further events dropped"));
    }

    #[test]
    fn filter_by_kind() {
        let mut t = SimTrace::with_capacity(10);
        t.record(1, TraceEvent::JobCompleted { job: 1 });
        t.record(2, TraceEvent::NodeDied { node: NodeId::new(3), module: ModuleId::new(0) });
        t.record(3, TraceEvent::JobCompleted { job: 2 });
        let completions: Vec<_> =
            t.filter(|e| matches!(e, TraceEvent::JobCompleted { .. })).collect();
        assert_eq!(completions.len(), 2);
    }

    #[test]
    fn ring_keeps_latest_events() {
        let mut t = SimTrace::ring(3);
        assert_eq!(t.overflow(), TraceOverflow::Ring);
        for i in 0..10 {
            t.record(i, TraceEvent::JobCompleted { job: i });
        }
        // Memory stays bounded at capacity; the latest 3 survive.
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let ids: Vec<u64> = t
            .iter()
            .map(|entry| match entry.event {
                TraceEvent::JobCompleted { job } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
        // Chronological iteration holds across the wrap point.
        let cycles: Vec<u64> = t.iter().map(|entry| entry.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        let s = t.render();
        assert!(s.contains("job 9 completed"));
        assert!(s.contains("7 earlier events overwritten"));
        assert!(!s.contains("job 6 completed"));
    }

    #[test]
    fn ring_below_capacity_matches_keep_first() {
        let mut ring = SimTrace::ring(8);
        let mut keep = SimTrace::with_capacity(8);
        for i in 0..5 {
            ring.record(i, TraceEvent::JobCompleted { job: i });
            keep.record(i, TraceEvent::JobCompleted { job: i });
        }
        assert_eq!(ring.events(), keep.events());
        assert_eq!(ring.dropped(), 0);
        let (older, newer) = ring.runs();
        assert_eq!(older.len(), 5);
        assert!(newer.is_empty());
    }

    #[test]
    fn entries_carry_the_current_frame() {
        let mut t = SimTrace::with_capacity(8);
        t.record(3, TraceEvent::JobCompleted { job: 0 });
        t.set_frame(1);
        t.record(10, TraceEvent::JobCompleted { job: 1 });
        t.record(12, TraceEvent::JobCompleted { job: 2 });
        t.set_frame(2);
        t.record(20, TraceEvent::JobCompleted { job: 3 });
        let frames: Vec<u64> = t.iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![0, 1, 1, 2]);
        assert_eq!(t.events()[1], TraceEntry::new(1, 10, TraceEvent::JobCompleted { job: 1 }));
    }

    #[test]
    fn tap_sees_events_past_capacity_and_clears() {
        let mut t = SimTrace::default();
        assert!(t.is_disabled());
        t.enable_tap();
        t.set_frame(4);
        t.record(7, TraceEvent::JobCompleted { job: 9 });
        // Disabled log stores nothing, but the tap still saw the event.
        assert!(t.events().is_empty());
        assert_eq!(t.tap(), &[TraceEntry::new(4, 7, TraceEvent::JobCompleted { job: 9 })]);
        t.clear_tap();
        assert!(t.tap().is_empty());
        t.record(8, TraceEvent::JobCompleted { job: 10 });
        assert_eq!(t.tap().len(), 1);
    }

    #[test]
    fn event_display() {
        assert_eq!(
            TraceEvent::NodeDied { node: NodeId::new(1), module: ModuleId::new(2) }.to_string(),
            "n1 (M3) died"
        );
        assert_eq!(
            TraceEvent::Remapped { node: NodeId::new(4), to: ModuleId::new(0) }.to_string(),
            "n4 remapped to M1"
        );
        assert!(TraceEvent::ControllerFailover { remaining: 2 }
            .to_string()
            .contains("2 remaining"));
    }
}
