//! Event tracing for `et_sim` runs.
//!
//! The paper debugs its simulator by watching when nodes die, when the
//! controller recomputes routes, and when jobs stall; [`SimTrace`]
//! captures exactly those events, cheaply enough to leave on during
//! experiments (events are plain enums in a `Vec`).

use core::fmt;

use etx_app::ModuleId;
use etx_graph::NodeId;

/// One timestamped event in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node's battery died.
    NodeDied {
        /// The dead node.
        node: NodeId,
        /// The module it hosted.
        module: ModuleId,
    },
    /// A job completed its final operation.
    JobCompleted {
        /// Job id.
        job: u64,
    },
    /// A job was lost to a node death.
    JobLost {
        /// Job id.
        job: u64,
        /// Where it was lost.
        at: NodeId,
    },
    /// The controller recomputed the routing tables.
    RoutingRecomputed {
        /// Monotonic routing version after the recompute.
        version: u64,
    },
    /// A node reported a deadlock during the upload phase.
    DeadlockReported {
        /// The reporting node.
        node: NodeId,
    },
    /// The controller reprogrammed a node to host a different module.
    Remapped {
        /// The reprogrammed node.
        node: NodeId,
        /// The module it now hosts.
        to: ModuleId,
    },
    /// The active controller failed over (or all controllers died).
    ControllerFailover {
        /// Controllers still alive after the failover.
        remaining: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::NodeDied { node, module } => write!(f, "{node} ({module}) died"),
            TraceEvent::JobCompleted { job } => write!(f, "job {job} completed"),
            TraceEvent::JobLost { job, at } => write!(f, "job {job} lost at {at}"),
            TraceEvent::RoutingRecomputed { version } => {
                write!(f, "routing recomputed (v{version})")
            }
            TraceEvent::DeadlockReported { node } => write!(f, "{node} reported deadlock"),
            TraceEvent::Remapped { node, to } => write!(f, "{node} remapped to {to}"),
            TraceEvent::ControllerFailover { remaining } => {
                write!(f, "controller failover ({remaining} remaining)")
            }
        }
    }
}

/// A bounded, timestamped event log.
///
/// Disabled by default (zero cost); enable it with
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]
/// or any non-zero capacity. Once full, further events are counted but
/// not stored.
///
/// [`SimConfig::builder().tweak(|c| c.trace_capacity = 10_000)`]:
///     crate::SimConfig
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    capacity: usize,
    events: Vec<(u64, TraceEvent)>,
    dropped: u64,
}

impl SimTrace {
    /// Creates a trace holding at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SimTrace { capacity, events: Vec::new(), dropped: 0 }
    }

    /// `true` if this trace stores nothing (capacity 0).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Records an event at cycle `now`.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push((now, event));
        } else if self.capacity > 0 {
            self.dropped += 1;
        } else {
            // Disabled: drop silently and cheaply.
        }
    }

    /// The stored `(cycle, event)` pairs, in order.
    #[must_use]
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Events that arrived after the log filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over events of one kind.
    pub fn filter<'a, F: Fn(&TraceEvent) -> bool + 'a>(
        &'a self,
        predicate: F,
    ) -> impl Iterator<Item = &'a (u64, TraceEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| predicate(e))
    }

    /// Renders the log as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for (cycle, event) in &self.events {
            let _ = writeln!(out, "[{cycle:>8}] {event}");
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_stores_nothing() {
        let mut t = SimTrace::default();
        assert!(t.is_disabled());
        t.record(5, TraceEvent::JobCompleted { job: 1 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_capacity_counts_overflow() {
        let mut t = SimTrace::with_capacity(2);
        for i in 0..5 {
            t.record(i, TraceEvent::JobCompleted { job: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let s = t.render();
        assert!(s.contains("job 0 completed"));
        assert!(s.contains("3 further events dropped"));
    }

    #[test]
    fn filter_by_kind() {
        let mut t = SimTrace::with_capacity(10);
        t.record(1, TraceEvent::JobCompleted { job: 1 });
        t.record(2, TraceEvent::NodeDied { node: NodeId::new(3), module: ModuleId::new(0) });
        t.record(3, TraceEvent::JobCompleted { job: 2 });
        let completions: Vec<_> =
            t.filter(|e| matches!(e, TraceEvent::JobCompleted { .. })).collect();
        assert_eq!(completions.len(), 2);
    }

    #[test]
    fn event_display() {
        assert_eq!(
            TraceEvent::NodeDied { node: NodeId::new(1), module: ModuleId::new(2) }.to_string(),
            "n1 (M3) died"
        );
        assert_eq!(
            TraceEvent::Remapped { node: NodeId::new(4), to: ModuleId::new(0) }.to_string(),
            "n4 remapped to M1"
        );
        assert!(TraceEvent::ControllerFailover { remaining: 2 }
            .to_string()
            .contains("2 remaining"));
    }
}
