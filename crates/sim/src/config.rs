//! [`SimConfig`]: everything `et_sim` needs to reproduce a paper run.

use core::fmt;

use etx_app::AppSpec;
use etx_battery::{
    Battery, DischargeCurve, IdealBattery, LinearBattery, ThinFilmBattery, ThinFilmConfig,
};
use etx_control::{ControllerEnergyModel, TdmaConfig};
use etx_energy::{PacketFormat, TransmissionLineModel};
use etx_graph::topology::Mesh2D;
use etx_mapping::{
    CheckerboardMapping, CustomMapping, MappingError, MappingStrategy, Placement,
    ProportionalMapping, RoundRobinMapping,
};
use etx_routing::{Algorithm, BatteryWeighting, RecomputeStrategy};
use etx_units::{Cycles, Energy, Length, Voltage};

use crate::Simulation;

/// Which battery model powers the computation nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryModel {
    /// Constant voltage, 100 % efficiency until depletion (Table 2).
    Ideal,
    /// The Li-free thin-film cell with its discharge curve and
    /// discrete-time effects (Fig 7, Fig 8). Uses the default
    /// [`ThinFilmConfig`] coefficients.
    ThinFilm,
    /// Thin-film with explicit discrete-time coefficients (for ablations).
    ThinFilmCustom {
        /// Rate-capacity coefficient (see [`ThinFilmConfig`]).
        rate_capacity_coeff: f64,
        /// Recovery fraction per 1000 idle cycles.
        recovery_per_kilocycle: f64,
    },
    /// Linear voltage decline between two rails with a death cutoff.
    Linear {
        /// Full-charge voltage.
        v_full: Voltage,
        /// Empty voltage.
        v_empty: Voltage,
        /// Death cutoff.
        cutoff: Voltage,
    },
}

impl BatteryModel {
    /// Instantiates one battery of this model with the given capacity.
    #[must_use]
    pub fn build(&self, capacity: Energy) -> Box<dyn Battery> {
        match self {
            BatteryModel::Ideal => Box::new(IdealBattery::new(capacity)),
            BatteryModel::ThinFilm => Box::new(ThinFilmBattery::new(capacity)),
            BatteryModel::ThinFilmCustom { rate_capacity_coeff, recovery_per_kilocycle } => {
                Box::new(ThinFilmBattery::with_config(ThinFilmConfig {
                    nominal: capacity,
                    curve: DischargeCurve::li_free_thin_film(),
                    rate_capacity_coeff: *rate_capacity_coeff,
                    recovery_per_kilocycle: *recovery_per_kilocycle,
                    ..ThinFilmConfig::default()
                }))
            }
            BatteryModel::Linear { v_full, v_empty, cutoff } => {
                Box::new(LinearBattery::new(capacity, *v_full, *v_empty, *cutoff))
            }
        }
    }
}

/// How the engine derives each TDMA frame's change set for the router.
///
/// Both feeds land in **identical** simulation results (the recompute
/// decisions and router inputs are equal by construction, and the
/// property suite pins it); they differ only in what each frame costs:
///
/// * [`FrameFeed::Bitset`] (the default) — the engine maintains its
///   frame state *incrementally*: liveness and deadlock transitions are
///   recorded at the death/buffer sites where they happen,
///   battery-bucket transitions are absorbed by the TDMA upload pass
///   (which must drain every live node anyway — the bucket sample rides
///   along for free, and job-site drains pay nothing), the persistent
///   [`SystemReport`](etx_routing::SystemReport) is patched in place,
///   and the router is fed a changed-node bitset plus cached aggregates
///   (live count, any-deadlock flag) through
///   `Router::recompute_frame_into` — everything past the physical
///   upload pass is `O(changed)`, not `O(K)`.
/// * [`FrameFeed::ReportDiff`] — the pre-bitset path: rebuild the whole
///   report every frame and diff it against the last published one.
///   Kept as the reference implementation (CI diffs the two) and as the
///   fallback the engine picks automatically when a remapping policy is
///   configured (remapping drains a donor *after* the frame snapshot,
///   which only the rebuild path represents faithfully).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameFeed {
    /// Engine-maintained changed-bitset frame state (`O(changed)`).
    #[default]
    Bitset,
    /// Full per-frame report rebuild + diff (`O(K)`; the reference).
    ReportDiff,
}

impl FrameFeed {
    /// CLI/spec-file name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameFeed::Bitset => "bitset",
            FrameFeed::ReportDiff => "report-diff",
        }
    }

    /// Parses a CLI/spec-file name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "bitset" => Some(FrameFeed::Bitset),
            "report-diff" | "reportdiff" | "diff" => Some(FrameFeed::ReportDiff),
            _ => None,
        }
    }
}

impl core::fmt::Display for FrameFeed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the platform's central controllers are provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerSetup {
    /// One controller with infinite energy (Sec 7.1–7.2).
    Infinite,
    /// `count` battery-powered controllers with failover (Sec 7.3 /
    /// Fig 8); each gets the same battery capacity as the nodes.
    Finite {
        /// Number of provisioned controllers.
        count: usize,
    },
}

/// Where new jobs enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Jobs enter the mesh at a fixed gateway node — the sensor/actuator
    /// attach point of the paper's Fig 3(a) smart shirt (1-indexed mesh
    /// coordinates). The gateway relays every job's first packet; if it
    /// dies or is cut off, no further jobs can be injected.
    Gateway {
        /// Gateway x coordinate (1-indexed).
        x: usize,
        /// Gateway y coordinate (1-indexed).
        y: usize,
    },
    /// Jobs enter at a fixed gateway addressed by node id — the only
    /// gateway form available on coordinate-free topologies.
    GatewayNode {
        /// Dense node index of the gateway.
        node: usize,
    },
    /// Jobs materialize directly at a duplicate of their first module —
    /// chosen by highest reported battery (ties toward lower node id).
    /// Models sensors attached across the whole fabric.
    Broadcast,
}

/// Which mapping strategy assigns modules to mesh nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingKind {
    /// The paper's parity checkerboard (3-module apps only).
    Checkerboard,
    /// Theorem-1 proportional mapping (any app); uses the platform's
    /// calibrated per-act communication energy.
    Proportional,
    /// `node mod p` striping.
    RoundRobin,
    /// An explicit per-node module assignment (row-major).
    Custom(Vec<etx_app::ModuleId>),
}

/// The physical interconnect shape of the platform.
///
/// `et_sim` "supports, in default mode, any 2D mesh"; the routing
/// algorithms themselves are general-purpose, so the simulator also
/// accepts wrap-around tori, rings and fully custom fabrics. Non-mesh
/// topologies have no `(x, y)` coordinates: use a coordinate-free
/// mapping ([`MappingKind::Proportional`], [`MappingKind::RoundRobin`] or
/// [`MappingKind::Custom`]) and a node-id job source
/// ([`JobSource::GatewayNode`] or [`JobSource::Broadcast`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyKind {
    /// The default `width x height` mesh (the paper's platform).
    Mesh,
    /// A mesh with wrap-around links.
    Torus,
    /// A ring of `width * height` nodes.
    Ring,
    /// An arbitrary fabric; edge lengths come from the graph itself.
    Custom(etx_graph::DiGraph),
}

/// Opt-in module-remapping policy — the *code migration* lifetime lever
/// of Stanley-Marbell et al. that the paper explicitly leaves out of its
/// fixed-mapping formulation (Sec 3). When enabled, the central
/// controller watches each module's live duplicate count during TDMA
/// frames; when a module drops below `min_live_duplicates`, an idle,
/// well-charged node from an over-provisioned module is reprogrammed to
/// host the endangered module, paying `migration_energy` and staying
/// busy for `migration_cycles`.
#[derive(Debug, Clone, PartialEq)]
pub struct RemappingPolicy {
    /// Reprogram once a module's live duplicates fall below this.
    pub min_live_duplicates: usize,
    /// Energy the donor pays to be reprogrammed (bitstream transfer +
    /// reconfiguration).
    pub migration_energy: Energy,
    /// Cycles the donor is unavailable while reprogramming.
    pub migration_cycles: Cycles,
}

impl Default for RemappingPolicy {
    fn default() -> Self {
        RemappingPolicy {
            min_live_duplicates: 2,
            migration_energy: Energy::from_picojoules(500.0),
            migration_cycles: Cycles::new(64),
        }
    }
}

/// One scripted node failure: at cycle `at_cycle`, node `node` is ripped
/// out of the fabric (cut trace, torn connector, washing-machine event),
/// whatever its remaining charge — which is then accounted as stranded
/// energy. This is the churn-injection lever fleet scenarios sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFailure {
    /// Simulation cycle at which the node fails.
    pub at_cycle: u64,
    /// Dense node index of the failing node.
    pub node: usize,
}

/// One scripted node revival: at cycle `at_cycle`, node `node` is
/// reconnected to the fabric (re-seated connector, re-stitched trace) if a
/// scripted failure had ripped it out. The battery rode along untouched
/// while disconnected, so the node reports back in with whatever charge it
/// still holds; reviving a node that is live, or whose *battery* died, is
/// a no-op. This is the reconnect lever fleet churn scenarios sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedRevival {
    /// Simulation cycle at which the node reconnects.
    pub at_cycle: u64,
    /// Dense node index of the reconnecting node.
    pub node: usize,
}

/// Errors raised while assembling a [`Simulation`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The mapping strategy could not place the application.
    Mapping(MappingError),
    /// The gateway coordinates fall outside the mesh.
    GatewayOutOfRange {
        /// Requested x.
        x: usize,
        /// Requested y.
        y: usize,
    },
    /// A config field failed validation.
    InvalidConfig(&'static str),
    /// The chosen job source or mapping needs mesh coordinates that this
    /// topology does not have.
    TopologyMismatch(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mapping(e) => write!(f, "mapping failed: {e}"),
            SimError::GatewayOutOfRange { x, y } => {
                write!(f, "gateway ({x},{y}) is outside the mesh")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::TopologyMismatch(msg) => write!(f, "topology mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mapping(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MappingError> for SimError {
    fn from(e: MappingError) -> Self {
        SimError::Mapping(e)
    }
}

/// The complete, validated configuration of one `et_sim` run.
///
/// Defaults reproduce the paper's main setup: AES on a 4x4 mesh with
/// 2.05 cm links (calibrated to Table 2's implied per-hop energy),
/// checkerboard mapping, EAR with `N_B = 16`/`Q = 2`, thin-film 60 000 pJ
/// batteries, an infinite controller, single-job operation, and the
/// default TDMA frame schedule.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Mesh width (columns).
    pub mesh_width: usize,
    /// Mesh height (rows).
    pub mesh_height: usize,
    /// Physical link length between mesh neighbours.
    pub link_pitch: Length,
    /// Interconnect shape.
    pub topology: TopologyKind,
    /// Transmission-line energy model.
    pub line_model: TransmissionLineModel,
    /// Data-packet format.
    pub packet: PacketFormat,
    /// Switching activity on data lines.
    pub switching_activity: f64,
    /// The application to run.
    pub app: AppSpec,
    /// Module-to-node mapping strategy.
    pub mapping: MappingKind,
    /// Node battery model.
    pub battery: BatteryModel,
    /// Battery budget `B` per node.
    pub battery_capacity: Energy,
    /// Per-node battery-capacity multipliers (battery heterogeneity).
    /// Node `i` gets `battery_capacity * capacity_profile[i % len]`;
    /// empty (the default) means a uniform fleet. Entries must be
    /// positive and finite.
    pub capacity_profile: Vec<f64>,
    /// Scripted node failures (churn injection), applied when the
    /// simulation clock reaches each entry's cycle. Order is irrelevant;
    /// the engine sorts a copy. Empty by default.
    pub scripted_failures: Vec<ScriptedFailure>,
    /// Scripted node revivals (reconnect injection), applied when the
    /// simulation clock reaches each entry's cycle. Order is irrelevant;
    /// the engine sorts a copy. Empty by default.
    pub scripted_revivals: Vec<ScriptedRevival>,
    /// Routing algorithm (EAR or SDR).
    pub algorithm: Algorithm,
    /// How the controller recomputes routes between TDMA frames. Every
    /// strategy produces identical routing (and therefore identical
    /// simulation results); they differ only in controller-side cost.
    pub recompute_strategy: RecomputeStrategy,
    /// How the engine derives each TDMA frame's change set for the
    /// router. Both feeds produce identical simulation results
    /// (property-tested); they differ only in per-frame bookkeeping
    /// cost.
    pub frame_feed: FrameFeed,
    /// EAR battery weighting (`N_B`, `Q`).
    pub weighting: BatteryWeighting,
    /// TDMA schedule.
    pub tdma: TdmaConfig,
    /// When `true` (default), the shared control medium's length is
    /// derived from the fabric size — `(width + height) * pitch`, the
    /// half-perimeter a bus spanning the mesh must cover — overriding
    /// `tdma.medium_length`. A bigger shirt needs a longer control bus,
    /// which is what makes the paper's overhead percentages grow with
    /// mesh size (2.8 % at 4x4 up to 11.6 % at 8x8).
    pub auto_medium_length: bool,
    /// Controller provisioning.
    pub controllers: ControllerSetup,
    /// Where jobs enter.
    pub source: JobSource,
    /// Jobs kept in flight concurrently.
    pub concurrent_jobs: usize,
    /// Optional module-remapping (code-migration) policy.
    pub remapping: Option<RemappingPolicy>,
    /// Cycles one act of computation takes.
    pub compute_cycles: Cycles,
    /// Cycles one hop takes.
    pub hop_cycles: Cycles,
    /// Packet slots per node buffer (relevant with concurrent jobs).
    pub buffer_capacity: usize,
    /// Job stuck longer than this reports a deadlock.
    pub deadlock_threshold: Cycles,
    /// All jobs stuck longer than this kills the system (irrecoverable
    /// stall).
    pub stall_giveup: Cycles,
    /// Hard safety stop.
    pub max_cycles: u64,
    /// Event-trace capacity; 0 (default) disables tracing.
    pub trace_capacity: usize,
    /// When `true`, a full trace overwrites its *oldest* events (ring
    /// buffer) instead of dropping new ones — long fleet runs keep the
    /// interesting tail with bounded memory. Default `false` (the seed's
    /// keep-first behaviour).
    pub trace_ring: bool,
}

impl SimConfig {
    /// Starts a builder pre-loaded with the paper's defaults.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder { config: SimConfig::default() }
    }

    /// Wraps an already-assembled config in a builder, so programmatic
    /// producers (fleet scenario sampling) can go through the same
    /// validation and pooled-construction paths as hand-written specs.
    #[must_use]
    pub fn into_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { config: self }
    }

    /// The mesh geometry.
    #[must_use]
    pub fn mesh(&self) -> Mesh2D {
        Mesh2D::new(self.mesh_width, self.mesh_height, self.link_pitch)
    }

    /// Number of nodes `K` (for [`TopologyKind::Custom`], the graph's
    /// node count; otherwise `width * height`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match &self.topology {
            TopologyKind::Custom(graph) => graph.node_count(),
            _ => self.mesh_width * self.mesh_height,
        }
    }

    /// Builds the interconnect graph for this configuration.
    #[must_use]
    pub fn build_graph(&self) -> etx_graph::DiGraph {
        match &self.topology {
            TopologyKind::Mesh => self.mesh().to_graph(),
            TopologyKind::Torus => {
                etx_graph::topology::torus(self.mesh_width, self.mesh_height, self.link_pitch)
            }
            TopologyKind::Ring => {
                etx_graph::topology::ring(self.mesh_width * self.mesh_height, self.link_pitch)
            }
            TopologyKind::Custom(graph) => graph.clone(),
        }
    }

    /// `true` when the topology carries mesh coordinates.
    #[must_use]
    pub fn has_mesh_coordinates(&self) -> bool {
        matches!(self.topology, TopologyKind::Mesh | TopologyKind::Torus)
    }

    /// The calibrated per-act communication energy: one packet over one
    /// default-pitch hop. This is the `c_i` the analytical bound uses.
    #[must_use]
    pub fn comm_energy_per_act(&self) -> Energy {
        self.line_model.packet_energy(self.link_pitch, &self.packet, self.switching_activity)
    }

    /// The controller energy model scaled for this mesh.
    #[must_use]
    pub fn controller_model(&self) -> ControllerEnergyModel {
        ControllerEnergyModel::for_mesh_nodes(self.node_count())
    }

    /// Resolves the mapping strategy into a placement.
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`] from the strategy.
    pub fn placement(&self) -> Result<Placement, MappingError> {
        if self.has_mesh_coordinates() {
            let mesh = self.mesh();
            match &self.mapping {
                MappingKind::Checkerboard => CheckerboardMapping.place(&mesh, &self.app),
                MappingKind::Proportional => {
                    ProportionalMapping::new(self.comm_energy_per_act()).place(&mesh, &self.app)
                }
                MappingKind::RoundRobin => RoundRobinMapping.place(&mesh, &self.app),
                MappingKind::Custom(assignment) => {
                    CustomMapping::new(assignment.clone()).place(&mesh, &self.app)
                }
            }
        } else {
            let nodes = self.node_count();
            match &self.mapping {
                MappingKind::Checkerboard => CheckerboardMapping.place_nodes(nodes, &self.app),
                MappingKind::Proportional => ProportionalMapping::new(self.comm_energy_per_act())
                    .place_nodes(nodes, &self.app),
                MappingKind::RoundRobin => RoundRobinMapping.place_nodes(nodes, &self.app),
                MappingKind::Custom(assignment) => {
                    CustomMapping::new(assignment.clone()).place_nodes(nodes, &self.app)
                }
            }
        }
    }

    /// The battery budget of node `i` after applying the heterogeneity
    /// profile (the uniform `battery_capacity` when the profile is
    /// empty).
    #[must_use]
    pub fn effective_capacity(&self, node: usize) -> Energy {
        if self.capacity_profile.is_empty() {
            self.battery_capacity
        } else {
            self.battery_capacity * self.capacity_profile[node % self.capacity_profile.len()]
        }
    }

    /// Resolves the configured job source to a gateway node id, if the
    /// source is gateway-based.
    #[must_use]
    pub fn gateway_node(&self) -> Option<etx_graph::NodeId> {
        match self.source {
            JobSource::Gateway { x, y } => self.mesh().node_at(x, y),
            JobSource::GatewayNode { node } => Some(etx_graph::NodeId::new(node)),
            JobSource::Broadcast => None,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mesh_width: 4,
            mesh_height: 4,
            link_pitch: Length::from_centimetres(2.05),
            topology: TopologyKind::Mesh,
            line_model: TransmissionLineModel::textile(),
            packet: PacketFormat::default(),
            switching_activity: 1.0,
            app: AppSpec::aes(),
            mapping: MappingKind::Checkerboard,
            battery: BatteryModel::ThinFilm,
            battery_capacity: Energy::from_picojoules(60_000.0),
            capacity_profile: Vec::new(),
            scripted_failures: Vec::new(),
            scripted_revivals: Vec::new(),
            algorithm: Algorithm::Ear,
            recompute_strategy: RecomputeStrategy::Auto,
            frame_feed: FrameFeed::Bitset,
            weighting: BatteryWeighting::default(),
            tdma: TdmaConfig::default(),
            auto_medium_length: true,
            controllers: ControllerSetup::Infinite,
            source: JobSource::Gateway { x: 1, y: 1 },
            concurrent_jobs: 1,
            remapping: None,
            compute_cycles: Cycles::new(4),
            hop_cycles: Cycles::new(2),
            buffer_capacity: 2,
            deadlock_threshold: Cycles::new(256),
            stall_giveup: Cycles::new(16_384),
            max_cycles: 20_000_000,
            trace_capacity: 0,
            trace_ring: false,
        }
    }
}

/// Builder for [`SimConfig`] (see [`SimConfig::builder`]).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets a `width x height` mesh.
    #[must_use]
    pub fn mesh(mut self, width: usize, height: usize) -> Self {
        self.config.mesh_width = width;
        self.config.mesh_height = height;
        self
    }

    /// Sets a square `n x n` mesh (the paper's shapes).
    #[must_use]
    pub fn mesh_square(self, n: usize) -> Self {
        self.mesh(n, n)
    }

    /// Sets the routing algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the routing recompute strategy (default
    /// [`RecomputeStrategy::Auto`]).
    #[must_use]
    pub fn recompute_strategy(mut self, strategy: RecomputeStrategy) -> Self {
        self.config.recompute_strategy = strategy;
        self
    }

    /// Sets the engine's frame feed (default [`FrameFeed::Bitset`]).
    /// Results are identical either way; only per-frame cost differs.
    #[must_use]
    pub fn frame_feed(mut self, feed: FrameFeed) -> Self {
        self.config.frame_feed = feed;
        self
    }

    /// Sets the EAR battery weighting.
    #[must_use]
    pub fn weighting(mut self, weighting: BatteryWeighting) -> Self {
        self.config.weighting = weighting;
        self
    }

    /// Sets the node battery model.
    #[must_use]
    pub fn battery(mut self, battery: BatteryModel) -> Self {
        self.config.battery = battery;
        self
    }

    /// Sets the per-node battery budget `B` in picojoules.
    #[must_use]
    pub fn battery_capacity_picojoules(mut self, pj: f64) -> Self {
        self.config.battery_capacity = Energy::from_picojoules(pj);
        self
    }

    /// Sets the application.
    #[must_use]
    pub fn app(mut self, app: AppSpec) -> Self {
        self.config.app = app;
        self
    }

    /// Sets the mapping strategy.
    #[must_use]
    pub fn mapping(mut self, mapping: MappingKind) -> Self {
        self.config.mapping = mapping;
        self
    }

    /// Sets the controller provisioning.
    #[must_use]
    pub fn controllers(mut self, controllers: ControllerSetup) -> Self {
        self.config.controllers = controllers;
        self
    }

    /// Sets the job source.
    #[must_use]
    pub fn source(mut self, source: JobSource) -> Self {
        self.config.source = source;
        self
    }

    /// Sets the number of concurrent jobs.
    #[must_use]
    pub fn concurrent_jobs(mut self, jobs: usize) -> Self {
        self.config.concurrent_jobs = jobs;
        self
    }

    /// Enables module remapping (code migration) with the given policy.
    #[must_use]
    pub fn remapping(mut self, policy: RemappingPolicy) -> Self {
        self.config.remapping = Some(policy);
        self
    }

    /// Sets the TDMA schedule.
    #[must_use]
    pub fn tdma(mut self, tdma: TdmaConfig) -> Self {
        self.config.tdma = tdma;
        self
    }

    /// Sets the physical link pitch.
    #[must_use]
    pub fn link_pitch(mut self, pitch: Length) -> Self {
        self.config.link_pitch = pitch;
        self
    }

    /// Sets the interconnect topology.
    #[must_use]
    pub fn topology(mut self, topology: TopologyKind) -> Self {
        self.config.topology = topology;
        self
    }

    /// Sets the per-node buffer capacity.
    #[must_use]
    pub fn buffer_capacity(mut self, slots: usize) -> Self {
        self.config.buffer_capacity = slots;
        self
    }

    /// Sets the deadlock-report threshold.
    #[must_use]
    pub fn deadlock_threshold(mut self, cycles: Cycles) -> Self {
        self.config.deadlock_threshold = cycles;
        self
    }

    /// Sets the hard cycle limit.
    #[must_use]
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Enables event tracing with the given capacity.
    #[must_use]
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.config.trace_capacity = events;
        self
    }

    /// Makes a full trace overwrite its oldest events (ring buffer)
    /// instead of dropping new ones.
    #[must_use]
    pub fn trace_ring(mut self, ring: bool) -> Self {
        self.config.trace_ring = ring;
        self
    }

    /// Sets per-node battery-capacity multipliers (battery
    /// heterogeneity); node `i` gets `battery_capacity * profile[i % len]`.
    #[must_use]
    pub fn capacity_profile(mut self, profile: Vec<f64>) -> Self {
        self.config.capacity_profile = profile;
        self
    }

    /// Schedules scripted node failures (churn injection).
    #[must_use]
    pub fn scripted_failures(mut self, failures: Vec<ScriptedFailure>) -> Self {
        self.config.scripted_failures = failures;
        self
    }

    /// Schedules scripted node revivals (reconnect injection).
    #[must_use]
    pub fn scripted_revivals(mut self, revivals: Vec<ScriptedRevival>) -> Self {
        self.config.scripted_revivals = revivals;
        self
    }

    /// Grants direct access for fields without a dedicated setter.
    #[must_use]
    pub fn tweak(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validates the configuration and assembles the [`Simulation`].
    ///
    /// Validation is descriptive and non-fatal: every bad spec —
    /// including the TDMA schedule, the heterogeneity profile and
    /// scripted failures — comes back as an `Err`, never a panic, so
    /// fleet scenario sampling can reject and move on.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for out-of-range scalar fields,
    /// [`SimError::GatewayOutOfRange`] for a bad gateway, and
    /// [`SimError::Mapping`] when the application cannot be placed.
    pub fn build(self) -> Result<Simulation, SimError> {
        Simulation::new(self.validate()?)
    }

    /// Like [`SimConfigBuilder::build`], but drawing the routing
    /// scratch, table and report buffers from `pool` instead of
    /// allocating fresh ones — the fleet controller's per-shard reuse
    /// path. [`Simulation::run_pooled`] returns them when the run ends.
    ///
    /// # Errors
    ///
    /// Same as [`SimConfigBuilder::build`].
    pub fn build_pooled(self, pool: &mut crate::SimPool) -> Result<Simulation, SimError> {
        Simulation::new_pooled(self.validate()?, pool)
    }

    /// Runs every validation check and returns the finalized
    /// [`SimConfig`] (with the auto-derived medium length applied).
    ///
    /// # Errors
    ///
    /// Same as [`SimConfigBuilder::build`].
    pub fn validate(self) -> Result<SimConfig, SimError> {
        let c = &self.config;
        if c.mesh_width == 0 || c.mesh_height == 0 {
            return Err(SimError::InvalidConfig("mesh dimensions must be positive"));
        }
        if c.concurrent_jobs == 0 {
            return Err(SimError::InvalidConfig("need at least one concurrent job"));
        }
        if c.buffer_capacity == 0 {
            return Err(SimError::InvalidConfig("buffer capacity must be positive"));
        }
        if !(0.0..=1.0).contains(&c.switching_activity) {
            return Err(SimError::InvalidConfig("switching activity must be in [0, 1]"));
        }
        if c.compute_cycles.is_zero() || c.hop_cycles.is_zero() {
            return Err(SimError::InvalidConfig("compute/hop latencies must be positive"));
        }
        if c.battery_capacity.picojoules() <= 0.0 {
            return Err(SimError::InvalidConfig("battery capacity must be positive"));
        }
        if !c.capacity_profile.iter().all(|m| m.is_finite() && *m > 0.0) {
            return Err(SimError::InvalidConfig(
                "capacity profile multipliers must be positive and finite",
            ));
        }
        if let ControllerSetup::Finite { count: 0 } = c.controllers {
            return Err(SimError::InvalidConfig("finite controller bank needs at least one"));
        }
        c.tdma.check().map_err(SimError::InvalidConfig)?;
        match c.source {
            JobSource::Gateway { x, y } => {
                if !c.has_mesh_coordinates() {
                    return Err(SimError::TopologyMismatch(
                        "coordinate gateways need a mesh or torus; use GatewayNode",
                    ));
                }
                if c.mesh().node_at(x, y).is_none() {
                    return Err(SimError::GatewayOutOfRange { x, y });
                }
            }
            JobSource::GatewayNode { node } => {
                if node >= c.node_count() {
                    return Err(SimError::GatewayOutOfRange { x: node, y: 0 });
                }
            }
            JobSource::Broadcast => {}
        }
        if matches!(c.topology, TopologyKind::Ring) && c.mesh_width * c.mesh_height < 3 {
            return Err(SimError::InvalidConfig("ring topology needs at least 3 nodes"));
        }
        if c.scripted_failures.iter().any(|f| f.node >= c.node_count()) {
            return Err(SimError::InvalidConfig(
                "scripted failure names a node outside the fabric",
            ));
        }
        if c.scripted_revivals.iter().any(|r| r.node >= c.node_count()) {
            return Err(SimError::InvalidConfig(
                "scripted revival names a node outside the fabric",
            ));
        }
        let mut config = self.config;
        if config.auto_medium_length {
            config.tdma.medium_length =
                config.link_pitch * (config.mesh_width + config.mesh_height) as f64;
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.node_count(), 16);
        assert_eq!(c.battery_capacity.picojoules(), 60_000.0);
        assert_eq!(c.algorithm, Algorithm::Ear);
        // Calibration: per-act communication energy ~116.7 pJ (DESIGN.md).
        assert!((c.comm_energy_per_act().picojoules() - 116.7).abs() < 1.0);
    }

    #[test]
    fn battery_model_builds_each_kind() {
        let cap = Energy::from_picojoules(100.0);
        assert!(!BatteryModel::Ideal.build(cap).is_dead());
        assert!(!BatteryModel::ThinFilm.build(cap).is_dead());
        assert!(!BatteryModel::ThinFilmCustom {
            rate_capacity_coeff: 0.1,
            recovery_per_kilocycle: 0.1
        }
        .build(cap)
        .is_dead());
        assert!(!BatteryModel::Linear {
            v_full: Voltage::from_volts(4.0),
            v_empty: Voltage::from_volts(2.0),
            cutoff: Voltage::from_volts(3.0),
        }
        .build(cap)
        .is_dead());
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(SimConfig::builder().mesh(0, 4).build(), Err(SimError::InvalidConfig(_))));
        assert!(matches!(
            SimConfig::builder().concurrent_jobs(0).build(),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(matches!(
            SimConfig::builder().source(JobSource::Gateway { x: 9, y: 1 }).build(),
            Err(SimError::GatewayOutOfRange { x: 9, y: 1 })
        ));
        assert!(matches!(
            SimConfig::builder().controllers(ControllerSetup::Finite { count: 0 }).build(),
            Err(SimError::InvalidConfig(_))
        ));
        let err = SimConfig::builder().mesh(0, 4).build().unwrap_err();
        assert!(err.to_string().contains("mesh"));
    }

    #[test]
    fn mapping_error_propagates() {
        // Checkerboard needs 3 modules; a 2x2 round-robin works instead.
        let app = AppSpec::aes();
        let result = SimConfig::builder()
            .app(app)
            .mapping(MappingKind::Custom(vec![etx_app::ModuleId::new(0); 16]))
            .build();
        assert!(matches!(result, Err(SimError::Mapping(_))));
    }

    #[test]
    fn tweak_reaches_all_fields() {
        let sim =
            SimConfig::builder().tweak(|c| c.max_cycles = 123).max_cycles(456).build().unwrap();
        assert_eq!(sim.config().max_cycles, 456);
    }
}
