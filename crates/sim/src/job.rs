//! Job state tracking inside the simulator.

use etx_graph::NodeId;

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobPhase {
    /// The job needs its next operation's destination resolved from the
    /// current routing tables.
    AwaitingRoute,
    /// The job's packet is moving hop-by-hop toward `dest`.
    Traveling {
        /// The chosen duplicate for the next operation.
        dest: NodeId,
    },
    /// One hop is on the wire.
    HopInFlight {
        /// Final destination (re-checked on arrival).
        dest: NodeId,
        /// The node this hop lands on.
        to: NodeId,
        /// Arrival cycle.
        arrive: u64,
    },
    /// The job is being computed at its holder.
    Computing {
        /// Completion cycle.
        until: u64,
    },
}

/// One application job walking the operation sequence.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Job {
    pub id: u64,
    /// Index of the *next* (or currently executing) operation.
    pub op_index: usize,
    /// Node currently holding the job's packet.
    pub location: NodeId,
    pub phase: JobPhase,
    /// First cycle at which the job found itself unable to progress.
    pub stuck_since: Option<u64>,
    /// Routing-table version the job's current destination was resolved
    /// against; stuck jobs re-resolve when fresher tables arrive.
    pub seen_routing_version: u64,
}

impl Job {
    pub fn new(id: u64, location: NodeId) -> Self {
        Job {
            id,
            op_index: 0,
            location,
            phase: JobPhase::AwaitingRoute,
            stuck_since: None,
            seen_routing_version: 0,
        }
    }

    /// Fraction of the job's operations already completed.
    pub fn progress(&self, total_ops: usize) -> f64 {
        if total_ops == 0 {
            0.0
        } else {
            self.op_index as f64 / total_ops as f64
        }
    }

    /// Marks the job as making progress (clears the stall clock).
    pub fn mark_progress(&mut self) {
        self.stuck_since = None;
    }

    /// Marks the job as stalled at `now` (keeps the earliest stall time).
    pub fn mark_stuck(&mut self, now: u64) {
        if self.stuck_since.is_none() {
            self.stuck_since = Some(now);
        }
    }

    /// How long the job has been stalled, as of `now`.
    pub fn stuck_for(&self, now: u64) -> u64 {
        self.stuck_since.map_or(0, |s| now.saturating_sub(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_fraction() {
        let mut j = Job::new(1, NodeId::new(0));
        assert_eq!(j.progress(30), 0.0);
        j.op_index = 15;
        assert_eq!(j.progress(30), 0.5);
        assert_eq!(j.progress(0), 0.0);
    }

    #[test]
    fn stall_clock() {
        let mut j = Job::new(1, NodeId::new(0));
        assert_eq!(j.stuck_for(100), 0);
        j.mark_stuck(100);
        j.mark_stuck(150); // keeps the earliest
        assert_eq!(j.stuck_for(160), 60);
        j.mark_progress();
        assert_eq!(j.stuck_for(200), 0);
    }
}
