//! Per-node runtime state inside the simulator.

use etx_app::ModuleId;
use etx_battery::{Battery, DrawOutcome};
use etx_units::{Cycles, Energy};

/// What a battery drain was for — used for the energy breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainKind {
    /// An act of computation (`E_i`).
    Compute,
    /// Driving a data packet onto a transmission line (origin or relay).
    Communication,
    /// Driving the shared TDMA medium during an upload slot.
    Control,
}

/// Runtime state of one mesh node.
pub(crate) struct NodeState {
    pub module: ModuleId,
    pub battery: Box<dyn Battery>,
    /// Scripted failure: the node was ripped out of the fabric (churn
    /// injection), regardless of how much charge its battery holds.
    pub forced_dead: bool,
    /// Cycle of the last battery interaction, for idle-recovery credit.
    pub last_activity: u64,
    /// The node's compute unit is busy until this cycle.
    pub busy_until: u64,
    /// Packets currently held or reserved (buffer occupancy).
    pub buffered: usize,
    /// Deadlock flag as it will be reported at the next upload slot.
    pub deadlock_flag: bool,
    // --- statistics ---
    pub compute_energy: Energy,
    pub comm_energy: Energy,
    pub control_energy: Energy,
    pub ops_done: u64,
    pub packets_sent: u64,
}

impl NodeState {
    pub fn new(module: ModuleId, battery: Box<dyn Battery>) -> Self {
        NodeState {
            module,
            battery,
            forced_dead: false,
            last_activity: 0,
            busy_until: 0,
            buffered: 0,
            deadlock_flag: false,
            compute_energy: Energy::ZERO,
            comm_energy: Energy::ZERO,
            control_energy: Energy::ZERO,
            ops_done: 0,
            packets_sent: 0,
        }
    }

    pub fn is_dead(&self) -> bool {
        self.forced_dead || self.battery.is_dead()
    }

    /// Rests the battery for the idle time since the last interaction,
    /// then draws `energy`. Returns `true` only if the full energy was
    /// delivered (otherwise the node just died).
    pub fn drain(&mut self, now: u64, energy: Energy, kind: DrainKind) -> bool {
        if self.is_dead() {
            return false;
        }
        let idle = now.saturating_sub(self.last_activity);
        if idle > 0 {
            self.battery.rest(Cycles::new(idle));
        }
        self.last_activity = now;
        let outcome = self.battery.draw(energy);
        let supplied = match outcome {
            DrawOutcome::Delivered => energy,
            DrawOutcome::Depleted { delivered } => delivered,
            DrawOutcome::AlreadyDead => Energy::ZERO,
        };
        match kind {
            DrainKind::Compute => self.compute_energy += supplied,
            DrainKind::Communication => self.comm_energy += supplied,
            DrainKind::Control => self.control_energy += supplied,
        }
        outcome.is_delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_battery::IdealBattery;

    fn node(capacity: f64) -> NodeState {
        NodeState::new(
            ModuleId::new(0),
            Box::new(IdealBattery::new(Energy::from_picojoules(capacity))),
        )
    }

    #[test]
    fn drain_accounts_by_kind() {
        let mut n = node(100.0);
        assert!(n.drain(10, Energy::from_picojoules(30.0), DrainKind::Compute));
        assert!(n.drain(20, Energy::from_picojoules(20.0), DrainKind::Communication));
        assert!(n.drain(30, Energy::from_picojoules(10.0), DrainKind::Control));
        assert_eq!(n.compute_energy.picojoules(), 30.0);
        assert_eq!(n.comm_energy.picojoules(), 20.0);
        assert_eq!(n.control_energy.picojoules(), 10.0);
        assert_eq!(n.last_activity, 30);
        assert!(!n.is_dead());
    }

    #[test]
    fn drain_reports_death_and_partial_energy() {
        let mut n = node(50.0);
        assert!(!n.drain(0, Energy::from_picojoules(80.0), DrainKind::Compute));
        assert!(n.is_dead());
        // Only the supplied 50 pJ are accounted.
        assert_eq!(n.compute_energy.picojoules(), 50.0);
        // Further drains are no-ops.
        assert!(!n.drain(1, Energy::from_picojoules(1.0), DrainKind::Compute));
        assert_eq!(n.compute_energy.picojoules(), 50.0);
    }
}
