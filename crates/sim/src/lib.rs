//! `et_sim` — the cycle-accurate e-textile network simulator of the
//! DATE'05 paper, rebuilt in Rust.
//!
//! The simulator advances in clock cycles and models, with the energy
//! values of Sec 5:
//!
//! * a 2-D mesh of computation nodes (any [`Mesh2D`] size; the paper uses
//!   4x4 … 8x8), each hosting one application-module instance with its own
//!   battery ([`BatteryModel`]: ideal for Table 2, thin-film for Fig 7/8);
//! * store-and-forward packet transport over textile transmission lines,
//!   with the *sending* node paying each hop's energy (the paper's `C_j`);
//! * the TDMA control mechanism: periodic status uploads (which drain node
//!   batteries), controller-side routing recomputation whenever the
//!   reported information changes, and downloads of fresh next hops;
//! * online EAR or SDR routing with deadlock detection and recovery;
//! * battery-powered controller banks with failover (Sec 7.3) or the
//!   idealized infinite controller (Sec 7.1–7.2);
//! * single-job operation ("a new job is launched when the previous one is
//!   completed") or multiple concurrent jobs with finite node buffers.
//!
//! The simulation ends when the *system dies*: some module loses its last
//! live duplicate, all controllers die, the job source is cut off, or all
//! in-flight jobs are irrecoverably stalled. [`SimReport`] then carries
//! the numbers every figure of the paper is built from: jobs completed
//! (fractional, as in Table 2's 62.8), lifetime, the full energy
//! breakdown, and the control-overhead percentage.
//!
//! # Examples
//!
//! ```
//! use etx_routing::Algorithm;
//! use etx_sim::{BatteryModel, SimConfig};
//!
//! // A quick 4x4 run with tiny batteries to keep the doc-test fast.
//! let report = SimConfig::builder()
//!     .mesh_square(4)
//!     .algorithm(Algorithm::Ear)
//!     .battery(BatteryModel::Ideal)
//!     .battery_capacity_picojoules(6_000.0)
//!     .build()?
//!     .run();
//! assert!(report.jobs_completed > 0);
//! # Ok::<(), etx_sim::SimError>(())
//! ```
//!
//! [`Mesh2D`]: etx_graph::topology::Mesh2D

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod job;
mod node;
mod pool;
mod stats;
mod trace;

pub use config::{
    BatteryModel, ControllerSetup, FrameFeed, JobSource, MappingKind, RemappingPolicy,
    ScriptedFailure, ScriptedRevival, SimConfig, SimConfigBuilder, SimError, TopologyKind,
};
pub use engine::{FrameRecorder, FrameSnapshot, Simulation, TableObserver};
pub use etx_routing::{RecomputeStats, RecomputeStrategy};
pub use pool::SimPool;
pub use stats::{DeathCause, EnergyBreakdown, NodeStats, SimReport};
pub use trace::{SimTrace, TraceEntry, TraceEvent, TraceOverflow, TraceRun};
