//! [`SimPool`]: recycled simulation buffers for fleet-scale runs.
//!
//! One `Simulation` owns a [`RoutingScratch`], a [`RoutingState`] and two
//! [`SystemReport`] buffers — several megabytes on the largest fabrics,
//! and the dominant allocation cost of spinning a fresh instance up. A
//! fleet shard that runs thousands of instances *sequentially* needs only
//! one set: build each instance with
//! [`SimConfigBuilder::build_pooled`][crate::SimConfigBuilder::build_pooled],
//! finish it with [`Simulation::run_pooled`][crate::Simulation::run_pooled],
//! and the buffers flow back here for the next instance. Capacity is
//! retained across instances (and across *different* fabric sizes — the
//! routing scratch resizes lazily and keeps the high-water mark), so a
//! shard's steady-state allocation per instance is bounded and small.

use etx_routing::{RoutingScratch, RoutingState, SystemReport};

/// Recycled buffers shared by the sequential simulations of one shard.
///
/// Not thread-safe by design: each shard owns its own pool, which is what
/// keeps the fleet controller deterministic and lock-free.
#[derive(Debug, Default)]
pub struct SimPool {
    scratch: Option<RoutingScratch>,
    routing: Option<RoutingState>,
    reports: Vec<SystemReport>,
    /// Instances served since creation (for diagnostics/tests).
    served: u64,
}

impl SimPool {
    /// An empty pool; buffers are created on first use and recycled
    /// thereafter.
    #[must_use]
    pub fn new() -> Self {
        SimPool::default()
    }

    /// Instances that have drawn buffers from this pool so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Draws a full buffer set: `(scratch, routing, report, report_buf)`.
    pub(crate) fn take(&mut self) -> (RoutingScratch, RoutingState, SystemReport, SystemReport) {
        self.served += 1;
        let scratch = self.scratch.take().unwrap_or_default();
        let routing = self.routing.take().unwrap_or_else(RoutingState::empty);
        let report = self.reports.pop().unwrap_or_else(|| SystemReport::fresh(0, 1));
        let report_buf = self.reports.pop().unwrap_or_else(|| SystemReport::fresh(0, 1));
        (scratch, routing, report, report_buf)
    }

    /// Returns a buffer set drawn with [`SimPool::take`]. The scratch is
    /// [recycled][RoutingScratch::recycle] (cached fingerprint dropped,
    /// counters zeroed) so the next instance starts clean.
    pub(crate) fn put(
        &mut self,
        mut scratch: RoutingScratch,
        routing: RoutingState,
        report: SystemReport,
        report_buf: SystemReport,
    ) {
        scratch.recycle();
        self.scratch = Some(scratch);
        self.routing = Some(routing);
        // Keep at most the two buffers one instance needs (`report` on
        // top, so it is the first drawn again).
        self.reports.clear();
        self.reports.push(report_buf);
        self.reports.push(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_reuses_buffers() {
        let mut pool = SimPool::new();
        let (scratch, routing, mut report, report_buf) = pool.take();
        assert_eq!(pool.served(), 1);
        report.reset_fresh(64, 16);
        pool.put(scratch, routing, report, report_buf);
        let (_, _, report, _) = pool.take();
        // The recycled report kept its 64-node allocation.
        assert_eq!(report.node_count(), 64);
        assert_eq!(pool.served(), 2);
    }
}
