//! Simulation results: [`SimReport`] and friends.

use core::fmt;

use etx_app::ModuleId;
use etx_graph::NodeId;
use etx_routing::RecomputeStats;
use etx_units::Energy;

/// Why the target system died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// Some module lost its last live duplicate — jobs can never complete
    /// again (the paper's "critical nodes become dead").
    ModuleExtinct(ModuleId),
    /// Every provisioned controller battery died (Sec 7.3).
    ControllersDead,
    /// The job gateway died or was cut off from the fabric.
    GatewayDead,
    /// Every in-flight job was stalled beyond recovery (module duplicates
    /// alive but unreachable).
    Stalled,
    /// The safety cycle limit was hit before the system died.
    MaxCycles,
}

impl fmt::Display for DeathCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeathCause::ModuleExtinct(m) => write!(f, "module {m} extinct"),
            DeathCause::ControllersDead => write!(f, "all controllers dead"),
            DeathCause::GatewayDead => write!(f, "job gateway dead or isolated"),
            DeathCause::Stalled => write!(f, "all jobs irrecoverably stalled"),
            DeathCause::MaxCycles => write!(f, "cycle limit reached"),
        }
    }
}

/// Where the platform's energy went over the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Acts of computation on application modules.
    pub compute: Energy,
    /// Data packets on textile transmission lines.
    pub data_communication: Energy,
    /// The shared TDMA control medium (uploads + downloads) — the paper's
    /// overhead numerator.
    pub control_medium: Energy,
    /// Controller computation and leakage.
    pub controller: Energy,
    /// Energy stranded in batteries at system death: wasted below the
    /// voltage cutoff in dead cells plus everything left in live cells.
    pub stranded: Energy,
}

impl EnergyBreakdown {
    /// Total energy actually consumed (excludes stranded energy).
    #[must_use]
    pub fn total_consumed(&self) -> Energy {
        self.compute + self.data_communication + self.control_medium + self.controller
    }

    /// The paper's control-overhead metric: control-medium energy over
    /// total consumed energy.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total_consumed();
        if total.is_positive() {
            self.control_medium / total
        } else {
            0.0
        }
    }
}

/// Per-node statistics at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// The node.
    pub node: NodeId,
    /// The module it hosted.
    pub module: ModuleId,
    /// Acts of computation it performed.
    pub ops_done: u64,
    /// Packets it drove onto data lines (origin + relay).
    pub packets_sent: u64,
    /// Energy it spent computing.
    pub compute_energy: Energy,
    /// Energy it spent on data lines.
    pub comm_energy: Energy,
    /// Energy it spent on control uploads.
    pub control_energy: Energy,
    /// Whether it was still alive at system death.
    pub alive_at_end: bool,
    /// Energy delivered by its battery overall.
    pub delivered: Energy,
    /// Energy stranded in its battery (wasted + undrawn).
    pub stranded: Energy,
}

/// The complete result of one `et_sim` run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Jobs fully completed.
    pub jobs_completed: u64,
    /// Jobs completed plus the fractional progress of in-flight jobs at
    /// system death — the quantity Table 2 reports (e.g. 62.8).
    pub jobs_fractional: f64,
    /// Jobs lost to mid-flight node deaths.
    pub jobs_lost: u64,
    /// System lifetime in cycles.
    pub lifetime_cycles: u64,
    /// Why the system died.
    pub death_cause: DeathCause,
    /// Energy accounting.
    pub energy: EnergyBreakdown,
    /// Deadlock reports the controller received.
    pub deadlock_reports: u64,
    /// How many times the routing algorithm ran.
    pub routing_recomputes: u64,
    /// How the routing recomputes split across the phase-2 paths (full /
    /// affected-sources delta / incremental repair), plus the repair
    /// pipeline's per-source repaired/fallback tallies.
    pub recompute: RecomputeStats,
    /// Module remappings (code migrations) the controller performed.
    pub remaps: u64,
    /// TDMA frames elapsed.
    pub frames: u64,
    /// Per-node details.
    pub node_stats: Vec<NodeStats>,
}

impl SimReport {
    /// The control-overhead percentage (0–100), as quoted in Sec 7.1.
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        self.energy.overhead_fraction() * 100.0
    }

    /// Number of nodes still alive at system death.
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.node_stats.iter().filter(|n| n.alive_at_end).count()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {} completed ({:.1} fractional, {} lost)",
            self.jobs_completed, self.jobs_fractional, self.jobs_lost
        )?;
        writeln!(f, "lifetime: {} cycles ({})", self.lifetime_cycles, self.death_cause)?;
        writeln!(
            f,
            "energy: compute {:.0} pJ, data {:.0} pJ, control medium {:.0} pJ, \
             controller {:.0} pJ, stranded {:.0} pJ",
            self.energy.compute.picojoules(),
            self.energy.data_communication.picojoules(),
            self.energy.control_medium.picojoules(),
            self.energy.controller.picojoules(),
            self.energy.stranded.picojoules(),
        )?;
        writeln!(
            f,
            "overhead: {:.1} %, recomputes: {}, deadlock reports: {}, remaps: {}",
            self.overhead_percent(),
            self.routing_recomputes,
            self.deadlock_reports,
            self.remaps
        )?;
        write!(
            f,
            "recompute paths: {} full, {} delta, {} repair \
             ({} sources repaired, {} re-run, {} decrease-repaired / {} nodes improved); \
             table: {} delta rebuilds, {} entries ({} challenge-patched); \
             frame scans: {} O(K) skipped, {} nodes scanned",
            self.recompute.full_recomputes,
            self.recompute.delta_recomputes,
            self.recompute.repair_recomputes,
            self.recompute.repaired_sources,
            self.recompute.fallback_sources,
            self.recompute.decrease_repairs,
            self.recompute.decrease_nodes_improved,
            self.recompute.table_delta_rebuilds,
            self.recompute.table_entries_rebuilt,
            self.recompute.table_cells_patched,
            self.recompute.frames_oK_skipped,
            self.recompute.nodes_scanned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    #[test]
    fn breakdown_totals_and_overhead() {
        let e = EnergyBreakdown {
            compute: pj(500.0),
            data_communication: pj(400.0),
            control_medium: pj(28.0),
            controller: pj(72.0),
            stranded: pj(1000.0),
        };
        assert_eq!(e.total_consumed(), pj(1000.0));
        assert!((e.overhead_fraction() - 0.028).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().overhead_fraction(), 0.0);
    }

    #[test]
    fn death_cause_display() {
        assert_eq!(DeathCause::ModuleExtinct(ModuleId::new(2)).to_string(), "module M3 extinct");
        assert!(DeathCause::Stalled.to_string().contains("stalled"));
        assert!(DeathCause::GatewayDead.to_string().contains("gateway"));
        assert!(DeathCause::ControllersDead.to_string().contains("controllers"));
        assert!(DeathCause::MaxCycles.to_string().contains("limit"));
    }

    #[test]
    fn report_display_and_helpers() {
        let report = SimReport {
            jobs_completed: 10,
            jobs_fractional: 10.5,
            jobs_lost: 1,
            lifetime_cycles: 5000,
            death_cause: DeathCause::Stalled,
            energy: EnergyBreakdown {
                compute: pj(900.0),
                data_communication: pj(50.0),
                control_medium: pj(50.0),
                controller: pj(0.0),
                stranded: pj(10.0),
            },
            deadlock_reports: 2,
            routing_recomputes: 7,
            recompute: RecomputeStats {
                full_recomputes: 2,
                delta_recomputes: 0,
                repair_recomputes: 5,
                repaired_sources: 40,
                fallback_sources: 3,
                decrease_repairs: 6,
                decrease_nodes_improved: 18,
                table_delta_rebuilds: 4,
                table_entries_rebuilt: 60,
                table_cells_patched: 12,
                frames_oK_skipped: 5,
                nodes_scanned: 70,
            },
            remaps: 0,
            frames: 5,
            node_stats: vec![],
        };
        assert!((report.overhead_percent() - 5.0).abs() < 1e-12);
        assert_eq!(report.survivors(), 0);
        let s = report.to_string();
        assert!(s.contains("10 completed") && s.contains("5.0 %"));
        assert!(s.contains("5 repair") && s.contains("40 sources repaired"));
        assert!(s.contains("6 decrease-repaired / 18 nodes improved"));
    }
}
