//! The [`Simulation`] engine: the cycle loop of `et_sim`.

use etx_control::{ControlLedger, ControllerBank, ControllerEnergyModel};
use etx_graph::{DiGraph, NodeBitset, NodeId};
use etx_mapping::Placement;
use etx_metrics::{CounterId, GaugeId, MetricsHandle, MetricsSnapshot, SpanId};
use etx_routing::{FrameDelta, RecomputeStats, Router, RoutingScratch, RoutingState, SystemReport};
use etx_units::Energy;

use crate::config::{
    ControllerSetup, FrameFeed, JobSource, ScriptedFailure, ScriptedRevival, SimConfig, SimError,
};
use crate::job::{Job, JobPhase};
use crate::node::{DrainKind, NodeState};
use crate::pool::SimPool;
use crate::stats::{DeathCause, EnergyBreakdown, NodeStats, SimReport};
use crate::trace::{SimTrace, TraceEntry, TraceEvent};

/// Observer of freshly recomputed routing tables — the engine's publish
/// hook for read-side table services (see the `etx-serve` crate).
///
/// The engine calls [`TableObserver::on_tables`] once when the observer
/// is attached (covering the tables computed at construction) and then
/// after **every** routing recompute, inside the TDMA frame, before any
/// job consults the new tables. `version` is the engine's monotonically
/// increasing routing version; `routing` and `report` are the freshly
/// published state and the system report it was computed from.
pub trait TableObserver: Send {
    /// One freshly recomputed routing state.
    fn on_tables(&mut self, version: u64, routing: &RoutingState, report: &SystemReport);
}

/// Everything the engine exposes about one *completed* TDMA frame — the
/// input of the [`FrameRecorder`] hook.
///
/// The snapshot is taken at the same point on both [`FrameFeed`] paths:
/// after the frame's recompute/publish work, *before* the edge-triggered
/// deadlock flags are cleared (so `report` still shows the deadlocks the
/// controller just serviced). Every field except the cost counters in
/// `recompute` is therefore byte-identical across the two feeds.
#[derive(Debug)]
pub struct FrameSnapshot<'a> {
    /// 1-based frame number (the engine's monotonically increasing
    /// frame counter; partial death frames are skipped, not renumbered).
    pub frame: u64,
    /// The cycle this frame boundary fired at.
    pub cycle: u64,
    /// Routing-table version after this frame (bumped iff `recomputed`).
    pub routing_version: u64,
    /// Whether this frame recomputed the routing tables.
    pub recomputed: bool,
    /// The system report the controller acted on this frame: battery
    /// buckets, liveness, and the frame's (not-yet-cleared) deadlock
    /// flags.
    pub report: &'a SystemReport,
    /// *Cumulative* recompute counters as of this frame; diff
    /// consecutive snapshots with
    /// [`RecomputeStats::delta_since`] for per-frame costs.
    pub recompute: RecomputeStats,
    /// What this frame alone cost: `recompute` diffed against the
    /// previous frame's snapshot by the engine itself — the single
    /// per-frame delta every consumer (trace recorder, metrics
    /// registry, benches) shares instead of keeping its own
    /// previous-snapshot state.
    pub recompute_delta: RecomputeStats,
    /// Trace events since the previous recorded frame (each entry
    /// carries its own frame/cycle stamp). Delivered even when
    /// [`SimConfig::trace_capacity`](crate::SimConfig::trace_capacity)
    /// is 0 — recording taps the event stream directly.
    pub events: &'a [TraceEntry],
    /// Cumulative energy the shared medium consumed (uploads +
    /// downloads).
    pub medium_energy: Energy,
    /// Cumulative energy the controller bank consumed.
    pub controller_energy: Energy,
    /// Jobs completed so far.
    pub jobs_completed: u64,
    /// Jobs lost so far.
    pub jobs_lost: u64,
}

/// Per-frame observer — the engine's recording hook (the frame-granular
/// sibling of [`TableObserver`], which only sees recompute frames).
///
/// Attached with [`Simulation::set_frame_recorder`]; called once per
/// completed TDMA frame on both feed paths. Frames that die mid-frame
/// (controller death, module extinction during upload) are not
/// delivered — a replay of the same config dies at the same point.
pub trait FrameRecorder: Send {
    /// One completed frame.
    fn on_frame(&mut self, snapshot: &FrameSnapshot<'_>);
}

/// Outcome of advancing one job for one cycle.
enum JobOutcome {
    /// Still in flight.
    Continue,
    /// Walked its whole operation sequence.
    Completed,
    /// Lost to a node death.
    Lost,
}

/// One `et_sim` run in progress.
///
/// Create it with [`SimConfig::builder`], drive it with
/// [`Simulation::step`] or just call [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
    /// Resolved gateway node for gateway-based job sources.
    gateway: Option<NodeId>,
    graph: DiGraph,
    placement: Placement,
    nodes: Vec<NodeState>,
    router: Router,
    routing: RoutingState,
    /// Reusable workspace for routing recomputes: after the first frame
    /// the steady-state recompute performs no heap allocation, and the
    /// dirty-node feed lets the router repair (or skip) phase-2 work
    /// instead of re-solving it.
    routing_scratch: RoutingScratch,
    /// The frame's routing delta feed: nodes whose battery bucket or
    /// liveness changed since the last published report (dense
    /// changed-index scratch; under the bitset feed, extracted from
    /// `touched_bits` in `O(changed)`).
    dirty_nodes: Vec<NodeId>,
    last_report: SystemReport,
    /// Under [`FrameFeed::Bitset`]: the **persistent** current report,
    /// patched in place at every transition site (death, deadlock
    /// raise/clear) and by the upload pass's fused battery-bucket
    /// sampling — `tdma_frame` never rebuilds it. Under
    /// [`FrameFeed::ReportDiff`]: the recycled build buffer of the
    /// legacy rebuild-and-diff path.
    frame_state: SystemReport,
    /// `true` when this run uses the incrementally-maintained frame
    /// state (the configured [`FrameFeed::Bitset`], which the engine
    /// drops back to report-diff when a remapping policy is set: a remap
    /// drains its donor *after* the frame snapshot, which only the
    /// rebuild path represents faithfully).
    bitset_feed: bool,
    /// Nodes with a recorded transition since the last published
    /// baseline (raw marks; may over-approximate — a bucket that moved
    /// and moved back stays marked until the next publish clears it).
    touched_bits: NodeBitset,
    /// Per-frame filtered changed set (marks whose value actually
    /// differs from the published baseline) — what the router consumes.
    dirty_bits: NodeBitset,
    /// Nodes whose deadlock flag is currently set in `frame_state`.
    deadlocked_bits: NodeBitset,
    /// `deadlocked_bits.count()`, maintained `O(1)` per transition.
    deadlocked_count: u32,
    /// Live-node count, maintained at death sites (the download-energy
    /// multiplier, formerly an `O(K)` report scan).
    live_nodes: usize,
    /// A published deadlock flag was cleared at the previous frame's
    /// edge-trigger reset; like a report diff would, the next frame must
    /// recompute (deadlock-port avoidance has to be dropped).
    pending_deadlock_cleared: bool,
    bank: ControllerBank,
    controller_model: ControllerEnergyModel,
    ledger: ControlLedger,
    jobs: Vec<Job>,
    /// Recycled spare for the per-cycle survivor sweep, so steady-state
    /// stepping performs no heap allocation.
    jobs_spare: Vec<Job>,
    now: u64,
    next_job_id: u64,
    // Event accumulators.
    jobs_completed: u64,
    jobs_lost: u64,
    finished_fraction: f64,
    deadlock_reports: u64,
    routing_recomputes: u64,
    remaps: u64,
    routing_version: u64,
    frames: u64,
    /// Scripted failures sorted by cycle; `failure_cursor` tracks the
    /// next one due.
    failures: Vec<ScriptedFailure>,
    failure_cursor: usize,
    /// Scripted revivals sorted by cycle; `revival_cursor` tracks the
    /// next one due.
    revivals: Vec<ScriptedRevival>,
    revival_cursor: usize,
    pending_death: Option<DeathCause>,
    death: Option<DeathCause>,
    trace: SimTrace,
    /// Publish hook: told about every fresh routing state (see
    /// [`TableObserver`]).
    table_observer: Option<Box<dyn TableObserver>>,
    /// Recording hook: told about every completed TDMA frame (see
    /// [`FrameRecorder`]).
    frame_recorder: Option<Box<dyn FrameRecorder>>,
    /// Where frame counters and phase spans are recorded. Defaults to
    /// the shared no-op registry (one relaxed load per record call).
    metrics: MetricsHandle,
    /// The recompute counters as of the previous completed frame — the
    /// engine-owned state behind [`FrameSnapshot::recompute_delta`].
    prev_frame_stats: RecomputeStats,
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("mesh", &format_args!("{}x{}", self.cfg.mesh_width, self.cfg.mesh_height))
            .field("algorithm", &self.cfg.algorithm)
            .field("jobs_completed", &self.jobs_completed)
            .field("live_nodes", &self.live_node_count())
            .field("dead", &self.death)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Assembles a simulation (called by the config builder).
    pub(crate) fn new(cfg: SimConfig) -> Result<Self, SimError> {
        Self::with_buffers(
            cfg,
            RoutingScratch::new(),
            RoutingState::empty(),
            SystemReport::fresh(0, 1),
            SystemReport::fresh(0, 1),
        )
    }

    /// Assembles a simulation on recycled buffers drawn from `pool`.
    pub(crate) fn new_pooled(cfg: SimConfig, pool: &mut SimPool) -> Result<Self, SimError> {
        // Resolve the one remaining fallible step *before* drawing
        // buffers, so a rejected instance (mapping failure) cannot leak
        // the shard's warm buffer set out of the pool.
        let placement = cfg.placement()?;
        let (scratch, routing, report, report_buf) = pool.take();
        Ok(Self::assemble(cfg, placement, scratch, routing, report, report_buf))
    }

    /// Assembles a simulation from a validated config plus the buffer
    /// set it will own (fresh or recycled — capacity is reused either
    /// way).
    fn with_buffers(
        cfg: SimConfig,
        routing_scratch: RoutingScratch,
        routing: RoutingState,
        report: SystemReport,
        report_buf: SystemReport,
    ) -> Result<Self, SimError> {
        let placement = cfg.placement()?;
        Ok(Self::assemble(cfg, placement, routing_scratch, routing, report, report_buf))
    }

    /// Infallible assembly once the placement is resolved.
    fn assemble(
        cfg: SimConfig,
        placement: Placement,
        mut routing_scratch: RoutingScratch,
        mut routing: RoutingState,
        mut report: SystemReport,
        report_buf: SystemReport,
    ) -> Self {
        let graph = cfg.build_graph();
        let gateway = cfg.gateway_node();
        let nodes: Vec<NodeState> = placement
            .iter()
            .map(|(id, module)| {
                NodeState::new(module, cfg.battery.build(cfg.effective_capacity(id.index())))
            })
            .collect();
        let router = Router::with_weighting(cfg.algorithm, cfg.weighting)
            .with_strategy(cfg.recompute_strategy);
        let bank = match cfg.controllers {
            ControllerSetup::Infinite => ControllerBank::infinite(),
            ControllerSetup::Finite { count } => ControllerBank::new(count, cfg.battery_capacity),
        };
        let controller_model = cfg.controller_model();
        let cfg_trace_capacity = cfg.trace_capacity;
        let mut failures = cfg.scripted_failures.clone();
        failures.sort_by_key(|f| (f.at_cycle, f.node));
        let mut revivals = cfg.scripted_revivals.clone();
        revivals.sort_by_key(|r| (r.at_cycle, r.node));
        let trace = if cfg.trace_ring {
            SimTrace::ring(cfg_trace_capacity)
        } else {
            SimTrace::with_capacity(cfg_trace_capacity)
        };
        // Initial routing from the fresh system state.
        report.reset_fresh(nodes.len(), cfg.weighting.levels());
        router.compute_into(
            &graph,
            placement.module_nodes(),
            &report,
            None,
            &mut routing_scratch,
            &mut routing,
        );
        let node_count = nodes.len();
        let bitset_feed = cfg.frame_feed == FrameFeed::Bitset && cfg.remapping.is_none();
        let mut frame_state = report_buf;
        frame_state.clone_from(&report);
        Simulation {
            cfg,
            gateway,
            graph,
            placement,
            nodes,
            router,
            routing,
            routing_scratch,
            dirty_nodes: Vec::with_capacity(node_count),
            last_report: report,
            frame_state,
            bitset_feed,
            touched_bits: NodeBitset::with_capacity(node_count),
            dirty_bits: NodeBitset::with_capacity(node_count),
            deadlocked_bits: NodeBitset::with_capacity(node_count),
            deadlocked_count: 0,
            live_nodes: node_count,
            pending_deadlock_cleared: false,
            bank,
            controller_model,
            ledger: ControlLedger::new(),
            jobs: Vec::new(),
            jobs_spare: Vec::new(),
            now: 0,
            next_job_id: 0,
            jobs_completed: 0,
            jobs_lost: 0,
            finished_fraction: 0.0,
            deadlock_reports: 0,
            routing_recomputes: 1,
            remaps: 0,
            routing_version: 1,
            frames: 0,
            failures,
            failure_cursor: 0,
            revivals,
            revival_cursor: 0,
            pending_death: None,
            death: None,
            trace,
            table_observer: None,
            frame_recorder: None,
            metrics: MetricsHandle::default(),
            // Starts at zero (not the post-construction snapshot) so the
            // first frame's delta covers the initial full recompute,
            // matching what per-frame consumers historically computed.
            prev_frame_stats: RecomputeStats::default(),
        }
    }

    /// Attaches the routing-table publish hook. The observer is called
    /// immediately with the current tables (so an attach after
    /// construction still sees the initial routing state) and then after
    /// every recompute. Replaces any previous observer.
    pub fn set_table_observer(&mut self, mut observer: Box<dyn TableObserver>) {
        observer.on_tables(self.routing_version, &self.routing, &self.last_report);
        self.table_observer = Some(observer);
    }

    /// Attaches the per-frame recording hook and enables the trace tap
    /// that feeds it event streams (works with `trace_capacity = 0`).
    /// Attach before the first [`Simulation::step`]: the recorder only
    /// sees frames (and events) from that point on, and replays assume
    /// recording covered the whole run. Replaces any previous recorder.
    pub fn set_frame_recorder(&mut self, recorder: Box<dyn FrameRecorder>) {
        self.trace.enable_tap();
        self.trace.clear_tap();
        self.frame_recorder = Some(recorder);
    }

    /// Points this run's metrics (frame counters, frame-phase spans,
    /// per-frame recompute deltas, and the routing repair-stage spans)
    /// at a registry. The default is the shared no-op registry, whose
    /// record calls cost one relaxed load each. Attach before stepping;
    /// counters recorded so far are not replayed.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.routing_scratch.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// A snapshot of the registry this run records into (the no-op
    /// registry — all zeros — unless [`Simulation::set_metrics`] was
    /// called). Note the registry is shared: a fleet shard pointing many
    /// instances at one registry reads their combined totals here.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The current routing state (next-hop/full-path tables included).
    #[must_use]
    pub fn routing(&self) -> &RoutingState {
        &self.routing
    }

    /// The last system report the controller published tables from.
    #[must_use]
    pub fn last_report(&self) -> &SystemReport {
        &self.last_report
    }

    /// The monotonically increasing routing-table version.
    #[must_use]
    pub fn routing_version(&self) -> u64 {
        self.routing_version
    }

    /// TDMA frames started so far (including a final partial frame the
    /// system may have died in).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Returns this simulation's pooled buffers to `pool` **without**
    /// running it to completion — the tear-down half of
    /// [`SimConfigBuilder::build_pooled`][crate::SimConfigBuilder::build_pooled]
    /// for callers that only needed to warm the system up (a read-side
    /// frontend extracting a published snapshot, for instance).
    pub fn recycle_into(mut self, pool: &mut SimPool) {
        let scratch = std::mem::take(&mut self.routing_scratch);
        let routing = std::mem::replace(&mut self.routing, RoutingState::empty());
        let report = std::mem::replace(&mut self.last_report, SystemReport::fresh(0, 1));
        let report_buf = std::mem::replace(&mut self.frame_state, SystemReport::fresh(0, 1));
        pool.put(scratch, routing, report, report_buf);
    }

    /// The configuration this run uses.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// `true` once the system has died.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.death.is_some()
    }

    /// Jobs completed so far.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Number of nodes still alive.
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_dead()).count()
    }

    /// The event trace recorded so far (empty unless
    /// [`SimConfig::trace_capacity`] is non-zero).
    #[must_use]
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// Advances the simulation by one cycle. Returns the death cause once
    /// the system dies (and on every later call).
    pub fn step(&mut self) -> Option<DeathCause> {
        if let Some(cause) = self.death {
            return Some(cause);
        }
        if self.now >= self.cfg.max_cycles {
            return self.die(DeathCause::MaxCycles);
        }

        // --- scripted failures (churn injection) ----------------------
        while self.failure_cursor < self.failures.len()
            && self.failures[self.failure_cursor].at_cycle <= self.now
        {
            let node = NodeId::new(self.failures[self.failure_cursor].node);
            self.failure_cursor += 1;
            if !self.nodes[node.index()].is_dead() {
                self.nodes[node.index()].forced_dead = true;
                self.on_node_death(node);
            }
        }
        // --- scripted revivals (reconnect injection) ------------------
        while self.revival_cursor < self.revivals.len()
            && self.revivals[self.revival_cursor].at_cycle <= self.now
        {
            let node = NodeId::new(self.revivals[self.revival_cursor].node);
            self.revival_cursor += 1;
            // Only a disconnect can be reversed: a node whose *battery*
            // died stays dead, and reviving a live node is a no-op.
            let n = &mut self.nodes[node.index()];
            if n.forced_dead && !n.battery.is_dead() {
                n.forced_dead = false;
                self.on_node_revival(node);
            }
        }
        if let Some(cause) = self.pending_death.take() {
            return self.die(cause);
        }

        // --- TDMA frame boundary -------------------------------------
        if self.now.is_multiple_of(self.cfg.tdma.frame_period.count()) {
            if let Some(cause) = self.tdma_frame() {
                return self.die(cause);
            }
        }

        // --- advance jobs ---------------------------------------------
        // Both vectors are recycled every cycle (`jobs` drains into
        // `survivors`, then becomes next cycle's spare), so the sweep
        // allocates only when the in-flight job count grows.
        let mut jobs = std::mem::take(&mut self.jobs);
        let mut survivors = std::mem::take(&mut self.jobs_spare);
        debug_assert!(survivors.is_empty());
        let mut died = None;
        for mut job in jobs.drain(..) {
            match self.advance_job(&mut job) {
                JobOutcome::Continue => survivors.push(job),
                JobOutcome::Completed => {
                    self.jobs_completed += 1;
                    self.trace.record(self.now, TraceEvent::JobCompleted { job: job.id });
                    self.release_buffer(job.location);
                }
                JobOutcome::Lost => {
                    self.jobs_lost += 1;
                    self.trace
                        .record(self.now, TraceEvent::JobLost { job: job.id, at: job.location });
                    // Buffer slots held on dead nodes are irrelevant; only
                    // release slots held on live ones.
                    if !self.nodes[job.location.index()].is_dead() {
                        self.release_buffer(job.location);
                    }
                }
            }
            died = self.pending_death.take();
            if died.is_some() {
                break;
            }
        }
        // `jobs` is empty here even after an early break: dropping the
        // `Drain` iterator removes any undrained elements.
        self.jobs_spare = jobs;
        self.jobs = survivors;
        if let Some(cause) = died {
            return self.die(cause);
        }

        // --- deadlock flags --------------------------------------------
        let threshold = self.cfg.deadlock_threshold.count();
        for job in &self.jobs {
            if job.stuck_for(self.now) > threshold {
                let node = job.location;
                // Edge-triggered: a job stays stuck for many cycles, so
                // the raise fires once per frame window — re-raises are
                // no-ops and must stay one load cheap.
                if !self.nodes[node.index()].deadlock_flag {
                    self.nodes[node.index()].deadlock_flag = true;
                    // Transition recording at the raise site: the frame
                    // state and its aggregates stay current without any
                    // per-frame flag scan. (For a live node the node
                    // flag and the frame-state flag always move
                    // together; a dead holder keeps its stale node flag
                    // and no frame-state entry, matching what the
                    // rebuilt report would say.)
                    if self.bitset_feed && !self.nodes[node.index()].is_dead() {
                        self.frame_state.set_deadlocked(node, true);
                        self.deadlocked_bits.insert(node);
                        self.deadlocked_count += 1;
                    }
                }
            }
        }

        // --- injection --------------------------------------------------
        while self.jobs.len() < self.cfg.concurrent_jobs {
            match self.inject_job() {
                Ok(true) => {}
                Ok(false) => break, // temporarily no room; retry next cycle
                Err(cause) => return self.die(cause),
            }
        }

        // --- irrecoverable stall check -----------------------------------
        let giveup = self.cfg.stall_giveup.count();
        if !self.jobs.is_empty() && self.jobs.iter().all(|j| j.stuck_for(self.now) > giveup) {
            return self.die(DeathCause::Stalled);
        }

        self.now += 1;
        None
    }

    /// Runs until the system dies and returns the final report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        loop {
            if let Some(cause) = self.step() {
                return self.into_report(cause);
            }
        }
    }

    /// Runs to completion like [`Simulation::run`], then hands the
    /// simulation's routing scratch, table and report buffers back to
    /// `pool` for the next instance. Pair with
    /// [`SimConfigBuilder::build_pooled`][crate::SimConfigBuilder::build_pooled];
    /// the report is identical to what [`Simulation::run`] produces.
    #[must_use]
    pub fn run_pooled(mut self, pool: &mut SimPool) -> SimReport {
        let cause = loop {
            if let Some(cause) = self.step() {
                break cause;
            }
        };
        // Snapshot the recompute counters before the scratch (whose
        // recycling zeroes them) flows back to the pool.
        let recompute = self.routing_scratch.stats();
        let scratch = std::mem::take(&mut self.routing_scratch);
        let routing = std::mem::replace(&mut self.routing, RoutingState::empty());
        let report = std::mem::replace(&mut self.last_report, SystemReport::fresh(0, 1));
        let report_buf = std::mem::replace(&mut self.frame_state, SystemReport::fresh(0, 1));
        pool.put(scratch, routing, report, report_buf);
        self.finish_report(cause, recompute)
    }

    // ------------------------------------------------------------------
    // internals

    fn die(&mut self, cause: DeathCause) -> Option<DeathCause> {
        self.death = Some(cause);
        Some(cause)
    }

    fn release_buffer(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        n.buffered = n.buffered.saturating_sub(1);
    }

    /// Handles a node death: checks for module extinction and gateway loss.
    fn on_node_death(&mut self, node: NodeId) {
        self.live_nodes = self.live_nodes.saturating_sub(1);
        if self.bitset_feed {
            // Death is a liveness transition (and clears any reported
            // deadlock — dead nodes hold no jobs): patch the frame state
            // where it happens.
            if self.frame_state.is_deadlocked(node) {
                self.deadlocked_bits.remove(node);
                self.deadlocked_count -= 1;
            }
            self.frame_state.set_dead(node);
            self.touched_bits.insert(node);
        }
        let module = self.placement.module_of(node);
        self.trace.record(self.now, TraceEvent::NodeDied { node, module });
        let extinct =
            self.placement.nodes_of(module).iter().all(|&n| self.nodes[n.index()].is_dead());
        if extinct {
            self.pending_death.get_or_insert(DeathCause::ModuleExtinct(module));
        }
        if self.gateway == Some(node) {
            self.pending_death.get_or_insert(DeathCause::GatewayDead);
        }
    }

    /// Handles a scripted revival: the node reports back in with the
    /// charge its battery held while disconnected — a weight *decrease*
    /// the routing repair path absorbs without a full re-run.
    fn on_node_revival(&mut self, node: NodeId) {
        self.live_nodes += 1;
        if self.bitset_feed {
            // Revival is a liveness transition: patch the frame state
            // where it happens, exactly like the death site does.
            let level =
                self.nodes[node.index()].battery.reported_level(self.cfg.weighting.levels());
            self.frame_state.revive(node, level);
            self.touched_bits.insert(node);
        }
        let module = self.placement.module_of(node);
        self.trace.record(self.now, TraceEvent::NodeRevived { node, module });
    }

    /// Drains a node battery and propagates death bookkeeping.
    ///
    /// A thin-film cell can die *while delivering the full request* (the
    /// voltage crosses the 3.0 V cutoff on a successful draw), so death
    /// is checked on every transition, not only on failed draws.
    fn drain_node(&mut self, node: NodeId, energy: Energy, kind: DrainKind) -> bool {
        let was_dead = self.nodes[node.index()].is_dead();
        let ok = self.nodes[node.index()].drain(self.now, energy, kind);
        if !was_dead && self.nodes[node.index()].is_dead() {
            self.on_node_death(node);
        }
        ok
    }

    /// One TDMA frame: uploads, change collection, optional recompute
    /// plus downloads. Returns a death cause if the controllers die.
    fn tdma_frame(&mut self) -> Option<DeathCause> {
        if self.bitset_feed {
            self.tdma_frame_bitset()
        } else {
            self.tdma_frame_report_diff()
        }
    }

    /// The incrementally-maintained frame: liveness and deadlock
    /// transitions were recorded at the death/raise sites where they
    /// happened, and battery buckets are sampled **inside the upload
    /// pass** — the TDMA physics already drains every live node there,
    /// so the bucket check rides along at one `reported_level` per live
    /// node per frame (job-site drains pay nothing; their cumulative
    /// effect is what the next upload sample sees, exactly like the
    /// rebuilt report saw it). No report is ever rebuilt and nothing
    /// else scans all `K` nodes: the routing feed is the changed bitset
    /// filtered against the published baseline — `O(touched)` — plus
    /// the cached live-count / any-deadlock aggregates, handed to
    /// `Router::recompute_frame_into`.
    ///
    /// Byte-identical to [`Simulation::tdma_frame_report_diff`] in every
    /// observable (recompute decisions, router inputs, energy ledger,
    /// traces) — property-tested; only the recompute *cost counters*
    /// differ.
    fn tdma_frame_bitset(&mut self) -> Option<DeathCause> {
        self.frames += 1;
        self.trace.set_frame(self.frames);
        // Phase spans borrow the registry while the frame mutates
        // `self`, so hold the handle locally (an `Arc` bump, no
        // allocation).
        let metrics = self.metrics.clone();
        metrics.inc(CounterId::SimFrames);
        let upload = self.cfg.tdma.upload_energy_per_node(&self.cfg.line_model);
        let levels = self.cfg.weighting.levels();

        // Upload phase: every live node drives its status slot, and the
        // frame state absorbs its battery-bucket transition in the same
        // pass (a node that died mid-drive was already patched at the
        // death site).
        {
            let _upload_span = metrics.span(SpanId::SimFrameUpload);
            for i in 0..self.nodes.len() {
                let node = NodeId::new(i);
                if self.nodes[i].is_dead() {
                    continue;
                }
                self.drain_node(node, upload, DrainKind::Control);
                self.ledger.record_upload(upload);
                if !self.nodes[i].is_dead() {
                    let bucket = self.nodes[i].battery.reported_level(levels);
                    if bucket != self.frame_state.battery_level(node) {
                        self.frame_state.set_battery_level(node, bucket);
                        self.touched_bits.insert(node);
                    }
                }
            }
        }
        if let Some(cause) = self.pending_death.take() {
            return Some(cause);
        }

        // Controller leakage since the previous frame.
        let live_before = self.bank.live_count();
        let leak = self.controller_model.leakage_energy(self.cfg.tdma.frame_period);
        self.ledger.record_controller_compute(leak);
        if !self.bank.charge(leak) {
            self.trace.record(self.now, TraceEvent::ControllerFailover { remaining: 0 });
            return Some(DeathCause::ControllersDead);
        }
        if self.bank.live_count() < live_before {
            self.trace.record(
                self.now,
                TraceEvent::ControllerFailover { remaining: self.bank.live_count() },
            );
        }

        // Dirty extraction, O(touched): of the raw transition marks,
        // keep the nodes whose bucket or liveness actually differs from
        // the published baseline (a mark that drifted back is dropped —
        // exactly what the report diff would conclude).
        self.dirty_bits.clear();
        self.dirty_nodes.clear();
        {
            let Simulation {
                touched_bits, dirty_bits, dirty_nodes, frame_state, last_report, ..
            } = self;
            for node in touched_bits.iter() {
                if frame_state.battery_level(node) != last_report.battery_level(node)
                    || frame_state.is_alive(node) != last_report.is_alive(node)
                {
                    dirty_bits.insert(node);
                    dirty_nodes.push(node);
                }
            }
        }

        // Deadlock reports: only the flagged nodes, in ascending order —
        // the same visit order the full scan produced.
        if self.deadlocked_count > 0 {
            for node in self.deadlocked_bits.iter() {
                self.deadlock_reports += 1;
                self.trace.record(self.now, TraceEvent::DeadlockReported { node });
            }
        }

        let any_deadlock = self.deadlocked_count > 0;
        let deadlock_cleared = std::mem::take(&mut self.pending_deadlock_cleared);

        let recomputed = !self.dirty_nodes.is_empty() || any_deadlock || deadlock_cleared;
        if recomputed {
            // Routing recomputation: the controller actively computes for
            // the duration of the frame.
            let active =
                self.controller_model.active_energy(self.cfg.tdma.frame_cycles(self.nodes.len()));
            self.ledger.record_controller_compute(active);
            if !self.bank.charge(active) {
                return Some(DeathCause::ControllersDead);
            }
            // Download phase: fresh next hops to every live node (the
            // live count is a cached aggregate, not a report scan).
            let down_each = self.cfg.tdma.download_energy_per_node(&self.cfg.line_model);
            #[allow(clippy::cast_precision_loss)]
            let down_total = down_each * self.live_nodes as f64;
            self.ledger.record_download(down_total);
            if !self.bank.charge(down_total) {
                return Some(DeathCause::ControllersDead);
            }
            {
                let _recompute_span = metrics.span(SpanId::SimFrameRecompute);
                self.router.recompute_frame_into(
                    &self.graph,
                    self.placement.module_nodes(),
                    &self.frame_state,
                    FrameDelta {
                        changed: &self.dirty_bits,
                        any_deadlock,
                        // Remapping runs on the report-diff path, so the
                        // placement can never change under this feed.
                        placement_changed: false,
                    },
                    &mut self.routing_scratch,
                    &mut self.routing,
                );
            }
            self.routing_recomputes += 1;
            self.routing_version += 1;
            metrics.inc(CounterId::SimRecomputes);
            self.trace
                .record(self.now, TraceEvent::RoutingRecomputed { version: self.routing_version });
            // Publish hook: read-side services snapshot the fresh tables
            // before any job consults them.
            if let Some(observer) = self.table_observer.as_mut() {
                let _publish_span = metrics.span(SpanId::SimFramePublish);
                observer.on_tables(self.routing_version, &self.routing, &self.frame_state);
            }
            // The published baseline catches up with the patched frame
            // state (three contiguous-buffer copies, no allocation), and
            // the transition marks it absorbed are retired.
            self.last_report.clone_from(&self.frame_state);
            self.touched_bits.clear();
        }

        // Recording hook: the frame is complete; deadlock flags are
        // still visible in the frame state (cleared just below).
        self.record_frame(recomputed, false);

        // Deadlock flags are edge-triggered: once uploaded and serviced,
        // clear them — flagged nodes only, and note the clear so the
        // next frame drops the deadlock-port avoidance like a report
        // diff would.
        if self.deadlocked_count > 0 {
            let Simulation { deadlocked_bits, nodes, frame_state, .. } = self;
            for node in deadlocked_bits.iter() {
                nodes[node.index()].deadlock_flag = false;
                frame_state.set_deadlocked(node, false);
            }
            self.deadlocked_bits.clear();
            self.deadlocked_count = 0;
            self.pending_deadlock_cleared = true;
        }
        None
    }

    /// The legacy frame: rebuild the whole report, diff it against the
    /// last published one (`O(K)` per frame regardless of what changed).
    /// Reference implementation for the bitset feed, and the path remap-
    /// enabled runs take.
    fn tdma_frame_report_diff(&mut self) -> Option<DeathCause> {
        self.frames += 1;
        self.trace.set_frame(self.frames);
        let metrics = self.metrics.clone();
        metrics.inc(CounterId::SimFrames);
        let upload = self.cfg.tdma.upload_energy_per_node(&self.cfg.line_model);

        // Upload phase: every live node drives its status slot.
        {
            let _upload_span = metrics.span(SpanId::SimFrameUpload);
            for i in 0..self.nodes.len() {
                let node = NodeId::new(i);
                if self.nodes[i].is_dead() {
                    continue;
                }
                self.drain_node(node, upload, DrainKind::Control);
                // The slot hits the wire either way: even a node dying
                // mid-drive leaves its partial slot on the shared medium.
                self.ledger.record_upload(upload);
            }
        }
        if let Some(cause) = self.pending_death.take() {
            return Some(cause);
        }

        // Controller leakage since the previous frame.
        let live_before = self.bank.live_count();
        let leak = self.controller_model.leakage_energy(self.cfg.tdma.frame_period);
        self.ledger.record_controller_compute(leak);
        if !self.bank.charge(leak) {
            self.trace.record(self.now, TraceEvent::ControllerFailover { remaining: 0 });
            return Some(DeathCause::ControllersDead);
        }
        if self.bank.live_count() < live_before {
            self.trace.record(
                self.now,
                TraceEvent::ControllerFailover { remaining: self.bank.live_count() },
            );
        }

        // Build the report the controller just received (into the
        // recycled buffer; steady-state frames allocate nothing) and, in
        // the same pass, the routing delta feed: the nodes whose battery
        // bucket or liveness changed since the last published report.
        let mut report = std::mem::replace(&mut self.frame_state, SystemReport::fresh(0, 1));
        let (any_deadlock, deadlock_cleared) = self.build_report_and_deltas_into(&mut report);
        for i in 0..self.nodes.len() {
            if report.is_deadlocked(NodeId::new(i)) {
                self.deadlock_reports += 1;
                self.trace.record(self.now, TraceEvent::DeadlockReported { node: NodeId::new(i) });
            }
        }

        let remapped = self.maybe_remap(&report);

        let recomputed =
            !self.dirty_nodes.is_empty() || any_deadlock || deadlock_cleared || remapped;
        if recomputed {
            // Routing recomputation: the controller actively computes for
            // the duration of the frame.
            let active =
                self.controller_model.active_energy(self.cfg.tdma.frame_cycles(self.nodes.len()));
            self.ledger.record_controller_compute(active);
            if !self.bank.charge(active) {
                return Some(DeathCause::ControllersDead);
            }
            // Download phase: fresh next hops to every live node.
            let down_each = self.cfg.tdma.download_energy_per_node(&self.cfg.line_model);
            let down_total = down_each * report.live_count() as f64;
            self.ledger.record_download(down_total);
            if !self.bank.charge(down_total) {
                return Some(DeathCause::ControllersDead);
            }
            // Staged in-place recompute fed by the frame's dirty nodes:
            // the router turns them into an edge-delta stream against
            // its cached weights, repairs (or re-solves, per the
            // configured strategy) only the affected shortest-path work,
            // and reuses all scratch storage (zero steady-state
            // allocation). No report diffing happens on this path.
            {
                let _recompute_span = metrics.span(SpanId::SimFrameRecompute);
                self.router.recompute_dirty_into(
                    &self.graph,
                    self.placement.module_nodes(),
                    &report,
                    &self.dirty_nodes,
                    &mut self.routing_scratch,
                    &mut self.routing,
                );
            }
            self.routing_recomputes += 1;
            self.routing_version += 1;
            metrics.inc(CounterId::SimRecomputes);
            self.trace
                .record(self.now, TraceEvent::RoutingRecomputed { version: self.routing_version });
            // Publish hook: read-side services snapshot the fresh tables
            // before any job consults them.
            if let Some(observer) = self.table_observer.as_mut() {
                let _publish_span = metrics.span(SpanId::SimFramePublish);
                observer.on_tables(self.routing_version, &self.routing, &report);
            }
            // The new report becomes the baseline; the old baseline's
            // buffers are recycled for the next frame.
            self.frame_state = std::mem::replace(&mut self.last_report, report);
        } else {
            self.frame_state = report;
        }

        // Recording hook: on this path the frame's report sits in
        // `last_report` when the frame recomputed (the swap above),
        // otherwise in `frame_state`. Same observation point as the
        // bitset path: before the deadlock flags drop.
        self.record_frame(recomputed, recomputed);

        // Deadlock flags are edge-triggered: once uploaded and serviced,
        // clear them; still-stuck jobs will re-raise them.
        for n in &mut self.nodes {
            n.deadlock_flag = false;
        }
        None
    }

    /// Closes out the just-completed frame: computes the per-frame
    /// recompute delta (the single source every consumer shares), feeds
    /// it to the metrics registry, and delivers the frame to the
    /// attached [`FrameRecorder`] (if any), draining the trace tap. The
    /// frame's report lives in `last_report` when `report_in_last`
    /// (report-diff recompute frames), else in `frame_state`.
    fn record_frame(&mut self, recomputed: bool, report_in_last: bool) {
        let stats = self.routing_scratch.stats();
        let recompute_delta = stats.delta_since(&self.prev_frame_stats);
        self.prev_frame_stats = stats;
        recompute_delta.record_into(&self.metrics);
        if self.frame_recorder.is_none() {
            return;
        }
        let metrics = self.metrics.clone();
        self.metrics.inc(CounterId::SimFramesRecorded);
        let _record_span = metrics.span(SpanId::SimFrameRecord);
        let Simulation {
            frame_recorder,
            frame_state,
            last_report,
            trace,
            ledger,
            frames,
            now,
            routing_version,
            jobs_completed,
            jobs_lost,
            ..
        } = self;
        let recorder = frame_recorder.as_mut().expect("checked above");
        let report: &SystemReport = if report_in_last { last_report } else { frame_state };
        recorder.on_frame(&FrameSnapshot {
            frame: *frames,
            cycle: *now,
            routing_version: *routing_version,
            recomputed,
            report,
            recompute: stats,
            recompute_delta,
            events: trace.tap(),
            medium_energy: ledger.medium_energy(),
            controller_energy: ledger.controller_energy(),
            jobs_completed: *jobs_completed,
            jobs_lost: *jobs_lost,
        });
        trace.clear_tap();
    }

    /// Builds the frame's report into `report` and, in the same pass,
    /// derives the routing delta feed against the last *published*
    /// report: `self.dirty_nodes` receives every node whose battery
    /// bucket or liveness changed. Returns `(any_deadlock,
    /// deadlock_cleared)` — whether any node reports a deadlock now, and
    /// whether a previously-reported deadlock flag dropped (both force a
    /// table rebuild even though no edge weight moved).
    fn build_report_and_deltas_into(&mut self, report: &mut SystemReport) -> (bool, bool) {
        let levels = self.cfg.weighting.levels();
        report.reset_fresh(self.nodes.len(), levels);
        self.dirty_nodes.clear();
        let last = &self.last_report;
        let prev_comparable = last.node_count() == self.nodes.len();
        let mut any_deadlock = false;
        let mut deadlock_cleared = false;
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId::new(i);
            if n.is_dead() {
                report.set_dead(id);
            } else {
                report.set_battery_level(id, n.battery.reported_level(levels));
                report.set_deadlocked(id, n.deadlock_flag);
                any_deadlock |= n.deadlock_flag;
            }
            if prev_comparable {
                if report.battery_level(id) != last.battery_level(id)
                    || report.is_alive(id) != last.is_alive(id)
                {
                    self.dirty_nodes.push(id);
                }
                deadlock_cleared |= last.is_deadlocked(id) && !report.is_deadlocked(id);
            } else {
                self.dirty_nodes.push(id);
            }
        }
        (any_deadlock, deadlock_cleared)
    }

    /// The remapping extension: reprogram a surplus node to rescue a
    /// module whose live duplicate count fell below the policy threshold.
    /// Returns `true` when the placement changed (forcing a routing
    /// recomputation).
    fn maybe_remap(&mut self, report: &SystemReport) -> bool {
        let Some(policy) = self.cfg.remapping.clone() else {
            return false;
        };
        let mut changed = false;
        let levels = self.cfg.weighting.levels();
        for m in 0..self.placement.module_count() {
            let module = etx_app::ModuleId::new(m);
            let live =
                self.placement.nodes_of(module).iter().filter(|&&n| report.is_alive(n)).count();
            if live == 0 || live >= policy.min_live_duplicates {
                // Extinct modules are beyond rescue (the job state is
                // gone); healthy ones need no help.
                continue;
            }
            // Donor: the best-charged idle node whose own module keeps a
            // surplus after losing it.
            let donor = (0..self.nodes.len())
                .map(NodeId::new)
                .filter(|&n| report.is_alive(n))
                .filter(|&n| {
                    let dm = self.placement.module_of(n);
                    if dm == module {
                        return false;
                    }
                    let dm_live =
                        self.placement.nodes_of(dm).iter().filter(|&&x| report.is_alive(x)).count();
                    dm_live > policy.min_live_duplicates
                })
                .filter(|&n| {
                    let node = &self.nodes[n.index()];
                    node.buffered == 0 && node.busy_until <= self.now
                })
                .max_by_key(|&n| {
                    (
                        self.nodes[n.index()].battery.reported_level(levels),
                        std::cmp::Reverse(n.index()),
                    )
                });
            let Some(donor) = donor else { continue };
            if !self.drain_node(donor, policy.migration_energy, DrainKind::Compute) {
                continue; // donor died taking the bitstream; no remap
            }
            if self.placement.reassign(donor, module).is_ok() {
                self.trace.record(self.now, TraceEvent::Remapped { node: donor, to: module });
                self.nodes[donor.index()].module = module;
                self.nodes[donor.index()].busy_until = self.now + policy.migration_cycles.count();
                self.remaps += 1;
                changed = true;
            }
        }
        changed
    }

    /// Injects one job. `Ok(true)` on success, `Ok(false)` when the entry
    /// point has no buffer space this cycle.
    fn inject_job(&mut self) -> Result<bool, DeathCause> {
        let entry_node = match self.cfg.source {
            JobSource::Gateway { .. } | JobSource::GatewayNode { .. } => {
                let gateway = self.gateway.expect("validated by builder");
                if self.nodes[gateway.index()].is_dead() {
                    return Err(DeathCause::GatewayDead);
                }
                gateway
            }
            JobSource::Broadcast => {
                // The freshest live duplicate of the first module.
                let first_module = self.cfg.app.op_sequence()[0];
                let best = self
                    .placement
                    .nodes_of(first_module)
                    .iter()
                    .filter(|&&n| !self.nodes[n.index()].is_dead())
                    .max_by_key(|&&n| {
                        (
                            self.nodes[n.index()]
                                .battery
                                .reported_level(self.cfg.weighting.levels()),
                            std::cmp::Reverse(n.index()),
                        )
                    })
                    .copied();
                match best {
                    Some(n) => n,
                    None => return Err(DeathCause::ModuleExtinct(first_module)),
                }
            }
        };
        if self.nodes[entry_node.index()].buffered >= self.cfg.buffer_capacity {
            return Ok(false);
        }
        self.nodes[entry_node.index()].buffered += 1;
        let job = Job::new(self.next_job_id, entry_node);
        self.next_job_id += 1;
        self.jobs.push(job);
        Ok(true)
    }

    /// Advances one job by (at most) one cycle's worth of activity.
    fn advance_job(&mut self, job: &mut Job) -> JobOutcome {
        // A dead holder loses the job (packet and state are gone).
        if self.nodes[job.location.index()].is_dead()
            && !matches!(job.phase, JobPhase::HopInFlight { .. })
        {
            return JobOutcome::Lost;
        }
        loop {
            match job.phase {
                JobPhase::AwaitingRoute => {
                    let module = self.cfg.app.op_sequence()[job.op_index];
                    let Some(entry) = self.routing.route(job.location, module.index()) else {
                        // No live duplicate reachable right now; wait for
                        // recovery (or the stall reaper).
                        job.mark_stuck(self.now);
                        return JobOutcome::Continue;
                    };
                    let dest = entry.destination;
                    if dest != job.location && self.nodes[dest.index()].is_dead() {
                        // Stale table: the chosen duplicate died since the
                        // last TDMA download. Wait for fresh routes.
                        job.mark_stuck(self.now);
                        return JobOutcome::Continue;
                    }
                    job.seen_routing_version = self.routing_version;
                    job.phase = JobPhase::Traveling { dest };
                    continue;
                }
                JobPhase::Traveling { dest } => {
                    // A stuck job re-resolves its destination as soon as
                    // the controller publishes fresh tables (this is how a
                    // deadlock redirect actually reaches an en-route job).
                    if job.stuck_since.is_some()
                        && job.seen_routing_version < self.routing_version
                        && job.location != dest
                    {
                        job.phase = JobPhase::AwaitingRoute;
                        continue;
                    }
                    // Remapping may have changed what dest hosts while the
                    // packet was in flight; re-resolve next cycle.
                    let module = self.cfg.app.op_sequence()[job.op_index];
                    if self.placement.module_of(dest) != module {
                        job.mark_stuck(self.now);
                        job.phase = JobPhase::AwaitingRoute;
                        return JobOutcome::Continue;
                    }
                    if job.location == dest {
                        // Arrived (or self-hosted): try to start computing.
                        let node = &self.nodes[dest.index()];
                        if node.is_dead() {
                            return JobOutcome::Lost;
                        }
                        if node.busy_until > self.now {
                            job.mark_stuck(self.now);
                            return JobOutcome::Continue;
                        }
                        let module = self.cfg.app.op_sequence()[job.op_index];
                        let energy = self
                            .cfg
                            .app
                            .module(module)
                            .expect("placement validated modules")
                            .compute_energy();
                        if !self.drain_node(dest, energy, DrainKind::Compute) {
                            return JobOutcome::Lost;
                        }
                        let until = self.now + self.cfg.compute_cycles.count();
                        self.nodes[dest.index()].busy_until = until;
                        job.mark_progress();
                        job.phase = JobPhase::Computing { until };
                        return JobOutcome::Continue;
                    }
                    // Destination may have died while we were travelling.
                    if self.nodes[dest.index()].is_dead() {
                        job.phase = JobPhase::AwaitingRoute;
                        continue;
                    }
                    let Some(next) = self.routing.next_hop(job.location, dest) else {
                        job.mark_stuck(self.now);
                        return JobOutcome::Continue;
                    };
                    if self.nodes[next.index()].is_dead() {
                        // Stale table points into a dead neighbour; the
                        // link layer refuses, wait for fresh routes.
                        job.mark_stuck(self.now);
                        return JobOutcome::Continue;
                    }
                    if self.nodes[next.index()].buffered >= self.cfg.buffer_capacity {
                        job.mark_stuck(self.now);
                        return JobOutcome::Continue;
                    }
                    // Transmit one hop; the sender pays for the line.
                    let length = self
                        .graph
                        .edge_length(job.location, next)
                        .expect("next hop is a graph neighbour");
                    let energy = self.cfg.line_model.packet_energy(
                        length,
                        &self.cfg.packet,
                        self.cfg.switching_activity,
                    );
                    self.nodes[next.index()].buffered += 1; // reserve
                    let sent = self.drain_node(job.location, energy, DrainKind::Communication);
                    self.nodes[job.location.index()].packets_sent += 1;
                    self.release_buffer(job.location);
                    if !sent {
                        // Sender died driving the line: packet lost.
                        self.release_buffer(next);
                        return JobOutcome::Lost;
                    }
                    job.mark_progress();
                    job.phase = JobPhase::HopInFlight {
                        dest,
                        to: next,
                        arrive: self.now + self.cfg.hop_cycles.count(),
                    };
                    return JobOutcome::Continue;
                }
                JobPhase::HopInFlight { dest, to, arrive } => {
                    if self.now < arrive {
                        return JobOutcome::Continue;
                    }
                    if self.nodes[to.index()].is_dead() {
                        // Landed on a node that died mid-flight.
                        return JobOutcome::Lost;
                    }
                    job.location = to;
                    job.phase = JobPhase::Traveling { dest };
                    continue;
                }
                JobPhase::Computing { until } => {
                    if self.now < until {
                        return JobOutcome::Continue;
                    }
                    self.nodes[job.location.index()].ops_done += 1;
                    job.op_index += 1;
                    job.mark_progress();
                    if job.op_index >= self.cfg.app.op_sequence().len() {
                        return JobOutcome::Completed;
                    }
                    job.phase = JobPhase::AwaitingRoute;
                    continue;
                }
            }
        }
    }

    /// Final accounting.
    fn into_report(self, cause: DeathCause) -> SimReport {
        let recompute = self.routing_scratch.stats();
        self.finish_report(cause, recompute)
    }

    /// [`Simulation::into_report`] with the recompute counters supplied
    /// explicitly (the pooled path snapshots them before the scratch is
    /// recycled).
    fn finish_report(self, cause: DeathCause, recompute: etx_routing::RecomputeStats) -> SimReport {
        // Lifetime totals land once, at the end of the run, so a fleet
        // shard's registry sums exactly what its aggregate sums.
        self.metrics.add(CounterId::SimJobsCompleted, self.jobs_completed);
        self.metrics.add(CounterId::SimJobsLost, self.jobs_lost);
        self.metrics.gauge_raise(GaugeId::SimRoutingVersion, self.routing_version);
        let total_ops = self.cfg.app.op_sequence().len();
        let in_flight: f64 = self.jobs.iter().map(|j| j.progress(total_ops)).sum();
        let mut energy = EnergyBreakdown::default();
        let mut node_stats = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            energy.compute += n.compute_energy;
            energy.data_communication += n.comm_energy;
            let delivered = n.battery.delivered();
            let stranded = (n.battery.nominal_capacity() - delivered).clamp_non_negative();
            energy.stranded += stranded;
            node_stats.push(NodeStats {
                node: NodeId::new(i),
                module: n.module,
                ops_done: n.ops_done,
                packets_sent: n.packets_sent,
                compute_energy: n.compute_energy,
                comm_energy: n.comm_energy,
                control_energy: n.control_energy,
                alive_at_end: !n.is_dead(),
                delivered,
                stranded,
            });
        }
        energy.control_medium = self.ledger.medium_energy();
        energy.controller = self.ledger.controller_energy();
        SimReport {
            jobs_completed: self.jobs_completed,
            jobs_fractional: self.jobs_completed as f64 + in_flight + self.finished_fraction,
            jobs_lost: self.jobs_lost,
            lifetime_cycles: self.now,
            death_cause: cause,
            energy,
            deadlock_reports: self.deadlock_reports,
            routing_recomputes: self.routing_recomputes,
            recompute,
            remaps: self.remaps,
            frames: self.frames,
            node_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatteryModel, MappingKind, TopologyKind};
    use etx_app::ModuleId;
    use etx_routing::Algorithm;

    fn quick(algorithm: Algorithm, capacity: f64) -> SimReport {
        SimConfig::builder()
            .mesh_square(4)
            .algorithm(algorithm)
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(capacity)
            .build()
            .expect("valid config")
            .run()
    }

    #[test]
    fn completes_jobs_and_dies() {
        let report = quick(Algorithm::Ear, 10_000.0);
        assert!(report.jobs_completed > 0, "no jobs completed:\n{report}");
        assert_ne!(report.death_cause, DeathCause::MaxCycles);
        assert!(report.lifetime_cycles > 0);
        assert!(report.jobs_fractional >= report.jobs_completed as f64);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick(Algorithm::Ear, 8_000.0);
        let b = quick(Algorithm::Ear, 8_000.0);
        assert_eq!(a, b);
    }

    #[test]
    fn recompute_strategies_do_not_change_outcomes() {
        use etx_routing::RecomputeStrategy;
        // 8x8 so the Auto backend resolves to Dijkstra and the fast
        // phase-2 paths actually engage.
        let run = |strategy| {
            SimConfig::builder()
                .mesh_square(8)
                .mapping(MappingKind::Proportional)
                .battery(BatteryModel::Ideal)
                .battery_capacity_picojoules(8_000.0)
                .recompute_strategy(strategy)
                .build()
                .expect("valid config")
                .run()
        };
        let full = run(RecomputeStrategy::Full);
        let affected = run(RecomputeStrategy::AffectedSources);
        let repair = run(RecomputeStrategy::IncrementalRepair);
        let auto = run(RecomputeStrategy::Auto);
        // Identical simulation outcomes — only the controller-side cost
        // profile (the counters) may differ.
        for other in [&affected, &repair, &auto] {
            assert_eq!(full.jobs_fractional, other.jobs_fractional);
            assert_eq!(full.lifetime_cycles, other.lifetime_cycles);
            assert_eq!(full.energy, other.energy);
            assert_eq!(full.node_stats, other.node_stats);
            assert_eq!(full.routing_recomputes, other.routing_recomputes);
        }
        assert_eq!(full.recompute.delta_recomputes + full.recompute.repair_recomputes, 0);
        assert!(affected.recompute.delta_recomputes > 0, "{affected}");
        assert!(repair.recompute.repair_recomputes > 0, "{repair}");
        assert!(repair.recompute.repaired_sources > 0, "{repair}");
        assert_eq!(auto.recompute, repair.recompute, "Auto at 8x8 is the repair pipeline");
    }

    #[test]
    fn frame_feeds_produce_identical_runs() {
        // The engine-maintained bitset frame state and the legacy
        // rebuild-and-diff path must land in identical simulation
        // outcomes — recompute decisions, routing, energy, traces —
        // across drain, churn, concurrency and battery recovery. Only
        // the recompute *cost* counters may differ.
        use crate::config::SimConfigBuilder;
        use etx_routing::RecomputeStats;
        let configs: Vec<SimConfigBuilder> = vec![
            SimConfig::builder()
                .mesh_square(8)
                .mapping(MappingKind::Proportional)
                .battery(BatteryModel::Ideal)
                .battery_capacity_picojoules(8_000.0)
                .scripted_failures(vec![
                    ScriptedFailure { at_cycle: 400, node: 13 },
                    ScriptedFailure { at_cycle: 900, node: 27 },
                ])
                .scripted_revivals(vec![ScriptedRevival { at_cycle: 700, node: 13 }]),
            SimConfig::builder()
                .mesh_square(4)
                .battery(BatteryModel::ThinFilm)
                .battery_capacity_picojoules(30_000.0)
                .concurrent_jobs(4),
            SimConfig::builder()
                .mesh_square(5)
                .source(JobSource::Broadcast)
                .mapping(MappingKind::Proportional)
                .battery(BatteryModel::ThinFilm)
                .battery_capacity_picojoules(20_000.0),
        ];
        for (i, builder) in configs.into_iter().enumerate() {
            let run = |feed: crate::config::FrameFeed| {
                builder.clone().frame_feed(feed).build().expect("valid config").run()
            };
            let mut bitset = run(crate::config::FrameFeed::Bitset);
            let mut diff = run(crate::config::FrameFeed::ReportDiff);
            assert!(
                bitset.recompute.frames_oK_skipped > 0,
                "config {i}: bitset feed never engaged"
            );
            assert_eq!(diff.recompute.frames_oK_skipped, 0, "config {i}: diff path cannot skip");
            assert!(
                bitset.recompute.nodes_scanned < diff.recompute.nodes_scanned,
                "config {i}: bitset feed must scan fewer node states \
                 ({} vs {})",
                bitset.recompute.nodes_scanned,
                diff.recompute.nodes_scanned
            );
            // Outcomes must be byte-identical once the cost counters are
            // masked out.
            bitset.recompute = RecomputeStats::default();
            diff.recompute = RecomputeStats::default();
            assert_eq!(bitset, diff, "config {i}: frame feeds diverged");
        }
    }

    #[test]
    fn ear_beats_sdr_on_default_platform() {
        let ear = quick(Algorithm::Ear, 20_000.0);
        let sdr = quick(Algorithm::Sdr, 20_000.0);
        assert!(
            ear.jobs_fractional > sdr.jobs_fractional,
            "EAR {:.1} vs SDR {:.1}",
            ear.jobs_fractional,
            sdr.jobs_fractional
        );
    }

    #[test]
    fn ideal_battery_outlives_thin_film() {
        let ideal = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(20_000.0)
            .build()
            .unwrap()
            .run();
        let film = SimConfig::builder()
            .battery(BatteryModel::ThinFilm)
            .battery_capacity_picojoules(20_000.0)
            .build()
            .unwrap()
            .run();
        // Near-tie tolerance: staggered thin-film deaths can help the
        // router at some scales (see the battery ablation).
        assert!(ideal.jobs_fractional >= film.jobs_fractional * 0.85);
        assert!(film.energy.stranded.is_positive());
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let report = quick(Algorithm::Ear, 10_000.0);
        let consumed = report.energy.total_consumed().picojoules();
        assert!(consumed > 0.0);
        // Node-side energy must not exceed the aggregate battery budget.
        let node_side =
            report.energy.compute.picojoules() + report.energy.data_communication.picojoules();
        assert!(node_side <= 16.0 * 10_000.0 + 1e-6);
        // Overhead is a sane percentage.
        let pct = report.overhead_percent();
        assert!((0.0..100.0).contains(&pct), "overhead {pct}%");
    }

    #[test]
    fn finite_controllers_limit_lifetime() {
        let make = |setup| {
            SimConfig::builder()
                .battery(BatteryModel::Ideal)
                .battery_capacity_picojoules(60_000.0)
                .controllers(setup)
                .build()
                .unwrap()
                .run()
        };
        let infinite = make(ControllerSetup::Infinite);
        let one = make(ControllerSetup::Finite { count: 1 });
        let many = make(ControllerSetup::Finite { count: 10 });
        assert!(one.jobs_fractional <= many.jobs_fractional + 1e-9);
        assert!(many.jobs_fractional <= infinite.jobs_fractional + 1e-9);
    }

    #[test]
    fn broadcast_source_runs() {
        let report = SimConfig::builder()
            .source(JobSource::Broadcast)
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(8_000.0)
            .build()
            .unwrap()
            .run();
        assert!(report.jobs_completed > 0);
    }

    #[test]
    fn concurrent_jobs_complete() {
        let report = SimConfig::builder()
            .concurrent_jobs(4)
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(10_000.0)
            .build()
            .unwrap()
            .run();
        assert!(report.jobs_completed > 0, "report: {report}");
    }

    #[test]
    fn proportional_mapping_runs() {
        let report = SimConfig::builder()
            .mapping(MappingKind::Proportional)
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(8_000.0)
            .build()
            .unwrap()
            .run();
        assert!(report.jobs_completed > 0);
    }

    #[test]
    fn step_api_reports_death_repeatedly() {
        let mut sim = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(2_000.0)
            .build()
            .unwrap();
        let cause = loop {
            if let Some(c) = sim.step() {
                break c;
            }
        };
        assert!(sim.is_dead());
        assert_eq!(sim.step(), Some(cause));
    }

    #[test]
    fn ring_topology_runs_with_node_gateway() {
        let report = SimConfig::builder()
            .mesh(4, 4) // 16-node ring
            .topology(TopologyKind::Ring)
            .mapping(MappingKind::Proportional)
            .source(JobSource::GatewayNode { node: 0 })
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(8_000.0)
            .build()
            .expect("ring config is valid")
            .run();
        assert!(
            report.jobs_completed > 0,
            "ring completed nothing:
{report}"
        );
    }

    #[test]
    fn torus_beats_mesh_under_ear() {
        // Wrap-around links shorten paths, so the torus should do at
        // least as well as the mesh on the same budget.
        let run = |topology| {
            SimConfig::builder()
                .topology(topology)
                .mapping(MappingKind::Proportional)
                .battery(BatteryModel::Ideal)
                .battery_capacity_picojoules(10_000.0)
                .build()
                .expect("valid config")
                .run()
                .jobs_fractional
        };
        let mesh = run(TopologyKind::Mesh);
        let torus = run(TopologyKind::Torus);
        assert!(torus >= mesh * 0.9, "torus {torus:.1} vs mesh {mesh:.1}");
    }

    #[test]
    fn custom_topology_uses_graph_lengths() {
        let graph = etx_graph::topology::star(5, etx_units::Length::from_centimetres(3.0));
        let report = SimConfig::builder()
            .topology(TopologyKind::Custom(graph))
            .mapping(MappingKind::RoundRobin)
            .source(JobSource::Broadcast)
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(20_000.0)
            .build()
            .expect("custom topology config is valid")
            .run();
        assert!(report.jobs_completed > 0);
        assert_eq!(report.node_stats.len(), 5);
    }

    #[test]
    fn coordinate_gateway_rejected_on_ring() {
        let err = SimConfig::builder()
            .topology(TopologyKind::Ring)
            .mapping(MappingKind::Proportional)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::TopologyMismatch(_)));
    }

    #[test]
    fn remapping_rescues_endangered_modules() {
        use crate::config::RemappingPolicy;
        // Module 0 starts with a single host: without remapping the
        // system dies as soon as that node does; with remapping a donor
        // is reprogrammed and life continues.
        let mut assignment = vec![ModuleId::new(2); 16];
        assignment[5] = ModuleId::new(0);
        assignment[6] = ModuleId::new(1);
        assignment[9] = ModuleId::new(1);
        let base = || {
            SimConfig::builder()
                .mapping(MappingKind::Custom(assignment.clone()))
                .battery(BatteryModel::Ideal)
                .battery_capacity_picojoules(20_000.0)
        };
        let plain = base().build().expect("valid config").run();
        let remapped =
            base().remapping(RemappingPolicy::default()).build().expect("valid config").run();
        assert!(
            remapped.remaps > 0,
            "no migrations happened:
{remapped}"
        );
        assert!(
            remapped.jobs_fractional > plain.jobs_fractional,
            "remapping did not help: {:.1} vs {:.1}",
            remapped.jobs_fractional,
            plain.jobs_fractional
        );
        assert_eq!(plain.remaps, 0);
    }

    #[test]
    fn trace_records_key_events() {
        use crate::trace::TraceEvent;
        let mut sim = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(5_000.0)
            .trace_capacity(10_000)
            .build()
            .unwrap();
        while sim.step().is_none() {}
        let trace = sim.trace();
        assert!(!trace.is_disabled());
        let completions = trace.filter(|e| matches!(e, TraceEvent::JobCompleted { .. })).count();
        assert_eq!(completions as u64, sim.jobs_completed());
        let deaths = trace.filter(|e| matches!(e, TraceEvent::NodeDied { .. })).count();
        assert!(deaths > 0, "no node deaths traced");
        let recomputes =
            trace.filter(|e| matches!(e, TraceEvent::RoutingRecomputed { .. })).count();
        assert!(recomputes > 0);
        // Events are time-ordered, and frame stamps follow cycle order.
        assert!(trace.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(trace.events().windows(2).all(|w| w[0].frame <= w[1].frame));
        assert!(trace.events().iter().any(|e| e.frame > 0), "no events stamped with a frame");
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut sim = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(2_000.0)
            .build()
            .unwrap();
        while sim.step().is_none() {}
        assert!(sim.trace().is_disabled());
        assert!(sim.trace().events().is_empty());
    }

    #[test]
    fn scripted_failures_kill_nodes_and_strand_energy() {
        use crate::config::ScriptedFailure;
        // Rip out a relay corner early; the run must still be well-formed
        // and the victim's remaining charge counts as stranded.
        let base = || {
            SimConfig::builder().battery(BatteryModel::Ideal).battery_capacity_picojoules(10_000.0)
        };
        let plain = base().build().expect("valid config").run();
        let churned = base()
            .scripted_failures(vec![ScriptedFailure { at_cycle: 500, node: 15 }])
            .build()
            .expect("valid config")
            .run();
        let victim = &churned.node_stats[15];
        assert!(!victim.alive_at_end);
        assert!(victim.stranded.picojoules() > 1_000.0, "forced death strands charge");
        assert!(churned.jobs_fractional <= plain.jobs_fractional);
        // Determinism holds with failures scripted.
        let again = base()
            .scripted_failures(vec![ScriptedFailure { at_cycle: 500, node: 15 }])
            .build()
            .expect("valid config")
            .run();
        assert_eq!(churned, again);
    }

    #[test]
    fn scripted_failure_of_singleton_module_is_fatal() {
        use crate::config::ScriptedFailure;
        let mut assignment = vec![ModuleId::new(2); 16];
        assignment[5] = ModuleId::new(0);
        assignment[6] = ModuleId::new(1);
        let report = SimConfig::builder()
            .mapping(MappingKind::Custom(assignment))
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(60_000.0)
            .scripted_failures(vec![ScriptedFailure { at_cycle: 2_000, node: 5 }])
            .build()
            .expect("valid config")
            .run();
        assert_eq!(report.death_cause, DeathCause::ModuleExtinct(ModuleId::new(0)));
        assert!(report.lifetime_cycles <= 2_001);
    }

    #[test]
    fn scripted_failure_rejects_out_of_range_node() {
        use crate::config::ScriptedFailure;
        let err = SimConfig::builder()
            .scripted_failures(vec![ScriptedFailure { at_cycle: 0, node: 99 }])
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::SimError::InvalidConfig(_)));
    }

    #[test]
    fn scripted_revivals_reconnect_nodes() {
        use crate::config::{ScriptedFailure, ScriptedRevival};
        let base = || {
            SimConfig::builder().battery(BatteryModel::Ideal).battery_capacity_picojoules(10_000.0)
        };
        // Disconnect a corner relay, then re-seat it: its battery rode
        // along untouched, so the fabric gets the node (and its charge)
        // back for the rest of the run.
        let failure = vec![ScriptedFailure { at_cycle: 500, node: 15 }];
        let reconnected = base()
            .scripted_failures(failure.clone())
            .scripted_revivals(vec![ScriptedRevival { at_cycle: 1_500, node: 15 }])
            .build()
            .expect("valid config")
            .run();
        let churned = base().scripted_failures(failure).build().expect("valid config").run();
        assert!(
            reconnected.jobs_fractional >= churned.jobs_fractional,
            "reconnect {:.1} vs churn {:.1}",
            reconnected.jobs_fractional,
            churned.jobs_fractional
        );
        // Reviving a node that never failed is a no-op, bit for bit.
        let noop = base()
            .scripted_revivals(vec![ScriptedRevival { at_cycle: 100, node: 3 }])
            .build()
            .expect("valid config")
            .run();
        let plain = base().build().expect("valid config").run();
        assert_eq!(noop, plain);
        // Out-of-range revivals are rejected like failures are.
        let err = base()
            .scripted_revivals(vec![ScriptedRevival { at_cycle: 0, node: 99 }])
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::SimError::InvalidConfig(_)));
    }

    #[test]
    fn capacity_profile_scales_per_node_budgets() {
        // Give the gateway quadrant weak cells: lifetime must drop.
        let weak_first = vec![0.25, 1.0, 1.0, 1.0];
        let rich = quick(Algorithm::Ear, 10_000.0);
        let poor = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(10_000.0)
            .capacity_profile(weak_first)
            .build()
            .expect("valid config")
            .run();
        assert!(poor.jobs_fractional < rich.jobs_fractional);
        let err = SimConfig::builder().capacity_profile(vec![0.0]).build().unwrap_err();
        assert!(matches!(err, crate::SimError::InvalidConfig(_)));
    }

    #[test]
    fn pooled_run_matches_direct_run() {
        use crate::pool::SimPool;
        let mut pool = SimPool::new();
        let make = |caps: f64| {
            SimConfig::builder().battery(BatteryModel::Ideal).battery_capacity_picojoules(caps)
        };
        // Several sequential instances over one pool, including a size
        // change, all identical to their unpooled twins.
        for (side, caps) in [(4usize, 8_000.0), (5, 6_000.0), (4, 8_000.0)] {
            let direct = make(caps).mesh_square(side).build().expect("valid config").run();
            let pooled = make(caps)
                .mesh_square(side)
                .build_pooled(&mut pool)
                .expect("valid config")
                .run_pooled(&mut pool);
            assert_eq!(direct, pooled, "{side}x{side} diverged under pooling");
        }
        assert_eq!(pool.served(), 3);
    }

    #[test]
    fn ring_trace_bounds_memory_on_long_runs() {
        let mut sim = SimConfig::builder()
            .battery(BatteryModel::Ideal)
            .battery_capacity_picojoules(8_000.0)
            .trace_capacity(4)
            .trace_ring(true)
            .build()
            .unwrap();
        while sim.step().is_none() {}
        let trace = sim.trace();
        assert!(trace.events().len() <= 4);
        assert!(trace.dropped() > 0, "a whole lifetime should overflow 4 slots");
        // The ring keeps the tail: the last stored cycle is near death.
        let last_cycle = trace.iter().last().expect("events stored").cycle;
        assert!(last_cycle * 2 >= sim.now(), "ring kept early events only");
    }

    #[test]
    fn node_stats_cover_all_nodes() {
        let report = quick(Algorithm::Ear, 5_000.0);
        assert_eq!(report.node_stats.len(), 16);
        let total_ops: u64 = report.node_stats.iter().map(|n| n.ops_done).sum();
        // 30 ops per completed job, at least.
        assert!(total_ops >= report.jobs_completed * 30);
    }
}
