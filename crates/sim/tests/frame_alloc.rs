//! Counting-allocator proof for the engine's incrementally-maintained
//! frame state: once a simulation has warmed up (routing caches sized,
//! job vectors at their high-water mark), steady-state stepping — TDMA
//! frames included — performs **no heap allocation**. The frame path
//! patches the persistent `SystemReport` in place, accumulates changed
//! bits in fixed-size word arrays, and publishes by `clone_from` into
//! equal-capacity buffers; nothing in the loop grows.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file contains a single test so no concurrent test case can pollute
//! the counter between snapshots.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use etx_sim::{BatteryModel, MappingKind, SimConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    // 8x8 so the Dijkstra backend and the repair pipeline engage; a
    // budget large enough that the measured window sees plenty of
    // frames (with battery-bucket transitions and recomputes) without a
    // death ending the run.
    let mut sim = SimConfig::builder()
        .mesh_square(8)
        .mapping(MappingKind::Proportional)
        .battery(BatteryModel::Ideal)
        .battery_capacity_picojoules(400_000.0)
        .build()
        .expect("valid config");

    // Warm-up: several TDMA frames, including recompute frames, so every
    // lazily-grown buffer reaches its steady capacity. Deterministic, so
    // "warm" is a stable property, not a flaky one.
    for _ in 0..6_000 {
        assert!(sim.step().is_none(), "system died during warm-up");
    }
    let recomputes_before = sim.trace().events().len(); // trace disabled: 0
    assert_eq!(recomputes_before, 0, "tracing must be off for this measurement");

    let before = allocations();
    for _ in 0..6_000 {
        assert!(sim.step().is_none(), "system died during the measured window");
    }
    let allocated = allocations() - before;
    assert_eq!(allocated, 0, "steady-state stepping allocated {allocated} times");

    // The window wasn't trivially idle: frames elapsed and the engine's
    // O(changed) bookkeeping actually skipped O(K) scans.
    let report = sim.run();
    assert!(report.frames > 0);
    assert!(report.recompute.frames_oK_skipped > 0, "bitset feed never engaged:\n{report}");
    assert!(
        report.recompute.nodes_scanned < report.recompute.frames_oK_skipped * 64,
        "per-frame scans should examine far fewer than K=64 nodes:\n{report}"
    );
}
