//! Proves that `run_load`'s closed loop stays allocation-free after its
//! internal warm-up batch — one batch/output pair is reused throughout.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file contains a single test so no concurrent test case can pollute
//! the counter between snapshots (each integration-test binary gets its
//! own allocator and its own process-wide counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use etx_graph::{topology::Mesh2D, NodeId};
use etx_routing::{Algorithm, Router, SystemReport};
use etx_serve::{EpochPublisher, FleetFrontend, LoadMode, WorkloadGen, WorkloadSpec};
use etx_units::Length;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

/// `run_load`'s closed loop reuses one batch/output pair; the measured
/// section must stay allocation-free after its internal warm-up batch.
#[test]
fn closed_loop_load_run_allocates_only_during_warmup() {
    let mut frontend = FleetFrontend::new(2);
    let graph = Mesh2D::square(6, Length::from_centimetres(2.05)).to_graph();
    let k = graph.node_count();
    let modules = module_stripes(k);
    let report = SystemReport::fresh(k, 16);
    let state = Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None);
    let (mut publisher, reader) = EpochPublisher::new();
    publisher.publish(&state);
    frontend.register(reader, k, modules.len());

    let spec = WorkloadSpec { batch: 256, ..WorkloadSpec::point_lookups() };
    // First run warms the generator-independent structures; the second
    // run's allocation budget is the histogram + report only.
    let _ = etx_serve::run_load(
        &frontend,
        &mut WorkloadGen::new(spec.clone()),
        LoadMode::Closed,
        1_000,
    );
    let before = allocations();
    let report =
        etx_serve::run_load(&frontend, &mut WorkloadGen::new(spec), LoadMode::Closed, 1_000);
    let allocated = allocations() - before;
    assert!(report.queries >= 1_000);
    // One QueryBatch/QueryOutput/latency Histo are constructed per run —
    // a handful of allocations, not O(queries).
    assert!(allocated < 64, "load run allocated {allocated} times for {} queries", report.queries);
}
