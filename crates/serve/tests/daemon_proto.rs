//! Wire-protocol robustness: hostile, truncated and garbage frames
//! must come back as a clean ERROR frame (or a clean close) — never a
//! panic, never a wedged server, never a leaked queue slot — plus
//! property-tested encode/decode round-trips over random batches.
//!
//! The malformed-frame tests speak raw `TcpStream` so nothing in
//! [`RouteClient`] can paper over a framing bug.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use etx_fleet::ScenarioSpec;
use etx_graph::NodeId;
use etx_serve::net::proto::{self, code, msg, Reply, DEFAULT_MAX_FRAME_LEN};
use etx_serve::net::{FrameReader, RouteClient, Served, ServedConfig};
use etx_serve::{FleetFrontend, Query, QueryBatch, QueryOutput, WorkloadGen, WorkloadSpec};
use proptest::prelude::*;

fn start_daemon() -> Served {
    let spec = ScenarioSpec { instances: 1, ..ScenarioSpec::smoke() };
    let mut config = ServedConfig::new(spec);
    config.warm_cycles = Some(300);
    Served::start(config).expect("daemon starts")
}

/// Local LEB128 encoder so the tests can frame arbitrary payloads
/// (including ones the real encoders would refuse to produce).
fn uvarint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    uvarint(payload.len() as u64, &mut out);
    out.extend_from_slice(payload);
    out
}

/// Splits a full frame produced by the real encoders into
/// (declared length, payload), verifying the prefix is exact.
fn parse_frame(full: &[u8]) -> &[u8] {
    let mut len = 0u64;
    let mut shift = 0;
    let mut pos = 0;
    loop {
        let byte = full[pos];
        pos += 1;
        len |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    let payload = &full[pos..];
    assert_eq!(payload.len() as u64, len, "prefix disagrees with payload length");
    payload
}

fn read_reply(reader: &mut FrameReader, stream: &TcpStream) -> Reply {
    let payload = reader
        .next_frame(stream, DEFAULT_MAX_FRAME_LEN)
        .expect("frame arrives")
        .expect("stream still open");
    proto::decode_reply(payload).expect("reply decodes")
}

/// Handshakes a raw socket and returns it with a reader, past the
/// HELLO_ACK, ready for hostile frames.
fn raw_handshake(served: &Served) -> (TcpStream, FrameReader) {
    let stream = TcpStream::connect(served.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut buf = Vec::new();
    (&stream).write_all(proto::encode_hello(&mut buf)).expect("hello");
    let mut reader = FrameReader::new();
    match read_reply(&mut reader, &stream) {
        Reply::HelloAck { .. } => {}
        other => panic!("expected HELLO_ACK, got {other:?}"),
    }
    (stream, reader)
}

/// The server must still answer a well-formed client after a hostile
/// or half-finished connection went away.
fn assert_server_healthy(served: &Served) {
    let mut client = RouteClient::connect(served.addr()).expect("server still accepting");
    let queries = [Query::NextHop { fabric: 0, source: NodeId::new(1), module: 0 }];
    let mut out = QueryOutput::new();
    client.query(&queries, &mut out).expect("server still answering");
    assert_eq!(out.results().len(), 1);
}

#[test]
fn bad_magic_draws_error_frame() {
    let served = start_daemon();
    let stream = TcpStream::connect(served.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut payload = vec![msg::HELLO];
    payload.extend_from_slice(b"NOPE");
    uvarint(proto::PROTOCOL_VERSION, &mut payload);
    (&stream).write_all(&frame(&payload)).unwrap();
    let mut reader = FrameReader::new();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::BAD_MAGIC),
        other => panic!("expected ERROR, got {other:?}"),
    }
    // The server hangs up after a fatal error.
    assert!(matches!(reader.next_frame(&stream, DEFAULT_MAX_FRAME_LEN), Ok(None)));
    assert_server_healthy(&served);
}

#[test]
fn wrong_version_draws_error_frame() {
    let served = start_daemon();
    let stream = TcpStream::connect(served.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut payload = vec![msg::HELLO];
    payload.extend_from_slice(proto::MAGIC);
    uvarint(proto::PROTOCOL_VERSION + 9, &mut payload);
    (&stream).write_all(&frame(&payload)).unwrap();
    let mut reader = FrameReader::new();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::BAD_VERSION),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_server_healthy(&served);
}

#[test]
fn oversized_declared_length_draws_error_frame() {
    let served = start_daemon();
    let (stream, mut reader) = raw_handshake(&served);
    // Declare a payload just past the server's frame cap; the server
    // must refuse from the prefix alone without buffering it.
    let mut header = Vec::new();
    uvarint(DEFAULT_MAX_FRAME_LEN as u64 + 1, &mut header);
    (&stream).write_all(&header).unwrap();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::FRAME_TOO_LARGE),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_server_healthy(&served);
}

#[test]
fn unknown_message_type_draws_error_frame() {
    let served = start_daemon();
    let (stream, mut reader) = raw_handshake(&served);
    (&stream).write_all(&frame(&[0x7f, 1, 2, 3])).unwrap();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::UNKNOWN_TYPE),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_server_healthy(&served);
}

#[test]
fn empty_payload_draws_error_frame() {
    let served = start_daemon();
    let (stream, mut reader) = raw_handshake(&served);
    (&stream).write_all(&frame(&[])).unwrap();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::MALFORMED),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_server_healthy(&served);
}

#[test]
fn garbage_query_payload_draws_error_frame() {
    let served = start_daemon();
    let (stream, mut reader) = raw_handshake(&served);
    // A QUERY frame whose query count (2^40) cannot fit the payload:
    // the decoder must refuse before looping, not attempt to reserve.
    let mut payload = vec![msg::QUERY];
    uvarint(1, &mut payload); // request id
    uvarint(1 << 40, &mut payload); // absurd query count
    (&stream).write_all(&frame(&payload)).unwrap();
    match read_reply(&mut reader, &stream) {
        Reply::Error { code } => assert_eq!(code, code::MALFORMED),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert_server_healthy(&served);
}

#[test]
fn truncated_frame_and_disconnect_leave_server_healthy() {
    let served = start_daemon();
    {
        let (stream, _reader) = raw_handshake(&served);
        // Declare 100 payload bytes, deliver 10, vanish mid-frame.
        let mut partial = Vec::new();
        uvarint(100, &mut partial);
        partial.extend_from_slice(&[msg::QUERY; 10]);
        (&stream).write_all(&partial).unwrap();
    } // dropped: connection reset mid-frame
    assert_server_healthy(&served);
}

#[test]
fn disconnect_after_queued_batch_leaves_server_healthy() {
    let served = start_daemon();
    {
        let mut client = RouteClient::connect(served.addr()).unwrap();
        // A real in-flight batch whose reply has nowhere to go.
        let queries = [Query::Path { fabric: 0, source: NodeId::new(2), module: 0 }];
        client.send_queries(&queries).unwrap();
    } // dropped before recv: the worker's write_frame fails harmlessly
    assert_server_healthy(&served);
}

fn arbitrary_query() -> impl Strategy<Value = Query> {
    (0u8..3, 0u32..64, 0u32..4096, 0u32..4096).prop_map(|(kind, fabric, a, b)| match kind {
        0 => Query::NextHop { fabric, source: NodeId::new(a as usize), module: b },
        1 => Query::Path { fabric, source: NodeId::new(a as usize), module: b },
        _ => {
            Query::Cost { fabric, source: NodeId::new(a as usize), target: NodeId::new(b as usize) }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random query batches survive encode → frame-parse → decode
    /// bit-exactly, request id included.
    #[test]
    fn query_frames_round_trip(
        request_id in any::<u64>(),
        queries in proptest::collection::vec(arbitrary_query(), 0..48),
    ) {
        let mut buf = Vec::new();
        let full = proto::encode_query(&mut buf, request_id, &queries);
        let payload = parse_frame(full);
        let mut batch = QueryBatch::new();
        let decoded_id = proto::decode_query_into(payload, &mut batch).expect("decodes");
        prop_assert_eq!(decoded_id, request_id);
        prop_assert_eq!(batch.queries(), &queries[..]);
    }

    /// Random ingest batches round-trip exactly.
    #[test]
    fn ingest_frames_round_trip(
        request_id in any::<u64>(),
        fabric in 0u32..256,
        items in proptest::collection::vec((0u32..4096, 0u32..64), 0..64),
    ) {
        let mut buf = Vec::new();
        let full = proto::encode_ingest(&mut buf, request_id, fabric, &items);
        let payload = parse_frame(full);
        let mut decoded = Vec::new();
        let (id, fab) = proto::decode_ingest_into(payload, &mut decoded).expect("decodes");
        prop_assert_eq!(id, request_id);
        prop_assert_eq!(fab, fabric);
        prop_assert_eq!(decoded, items);
    }

    /// Arbitrary byte soup never panics any payload decoder — every
    /// outcome is a clean `Ok` or a typed `WireError`.
    #[test]
    fn decoders_are_total_on_garbage(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut batch = QueryBatch::new();
        let _ = proto::decode_query_into(&payload, &mut batch);
        let mut items = Vec::new();
        let _ = proto::decode_ingest_into(&payload, &mut items);
        let mut out = QueryOutput::new();
        let _ = proto::decode_results_into(&payload, &mut out);
        let _ = proto::decode_reply(&payload);
        let _ = proto::decode_hello(&payload);
    }
}

/// Real result sets — `None`s, next hops, full paths with arena-backed
/// node lists, costs — round-trip through RESULTS frames exactly.
#[test]
fn results_frames_round_trip_against_frontend() {
    let spec = ScenarioSpec { instances: 2, ..ScenarioSpec::smoke() };
    let frontend = FleetFrontend::from_spec(&spec, 300, 1).expect("frontend");
    let mut out = QueryOutput::new();
    let mut decoded = QueryOutput::new();
    let mut buf = Vec::new();
    for seed in [3u64, 19, 77] {
        let mut generator =
            WorkloadGen::new(WorkloadSpec { seed, batch: 128, ..WorkloadSpec::default() });
        let mut batch = QueryBatch::new();
        generator.fill(&frontend, &mut batch);
        frontend.execute(&mut batch, &mut out);
        let full = proto::encode_results(&mut buf, seed, &out);
        let payload = parse_frame(full);
        let id = proto::decode_results_into(payload, &mut decoded).expect("decodes");
        assert_eq!(id, seed);
        // Arena span offsets are layout, not payload: compare entries
        // and materialized path node lists.
        assert_eq!(decoded.results().len(), out.results().len());
        for (a, b) in out.results().iter().zip(decoded.results()) {
            match (a, b) {
                (
                    etx_serve::QueryResult::Path { entry: ea, .. },
                    etx_serve::QueryResult::Path { entry: eb, .. },
                ) => assert_eq!(ea, eb),
                _ => assert_eq!(a, b),
            }
            assert_eq!(out.path_nodes(a), decoded.path_nodes(b));
        }
    }
}
