//! The snapshot-consistency property suite: a reader pinned to epoch E
//! sees tables **byte-identical** to the ones the Router produced at
//! epoch E — across chains of drain/churn/reconnect report mutations,
//! across concurrent republishes on top of held pins, and under every
//! [`RecomputeStrategy`] (whose in-place delta/repair recomputes and
//! delta-aware table rebuilds must never leak into a published epoch).

use etx_graph::{topology::Mesh2D, NodeId, PathBackend};
use etx_routing::{
    Algorithm, RecomputeStrategy, Router, RoutingScratch, RoutingState, SystemReport,
};
use etx_serve::{EpochPublisher, PinnedSnapshot, TableSnapshot};
use etx_units::Length;
use proptest::prelude::*;

fn mesh_graph(side: usize) -> etx_graph::DiGraph {
    Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph()
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

fn report_from(levels: &[u32], dead: &[bool], k: usize) -> SystemReport {
    let mut report = SystemReport::fresh(k, 16);
    for i in 0..k {
        let node = NodeId::new(i);
        report.set_battery_level(node, levels[i % levels.len()]);
        if dead[i % dead.len()] {
            report.set_dead(node);
        }
    }
    report
}

/// What the Router actually produced at one epoch, captured eagerly.
fn expectation(epoch: u64, state: &RoutingState) -> TableSnapshot {
    let mut expected = TableSnapshot::empty();
    expected.fill_from(epoch, state);
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pins taken at every epoch of a drain/churn/reconnect chain stay
    /// byte-identical to the Router's state at that epoch, no matter
    /// how many later epochs are published over them, for every
    /// recompute strategy and both algorithms.
    #[test]
    fn pinned_epochs_match_router_state(
        side in 3usize..7,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        strategy in prop_oneof![
            Just(RecomputeStrategy::Full),
            Just(RecomputeStrategy::AffectedSources),
            Just(RecomputeStrategy::IncrementalRepair),
            Just(RecomputeStrategy::Auto),
        ],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..7
        ),
    ) {
        // Explicit Dijkstra backend so the in-place fast paths engage at
        // every mesh size — they are exactly what must not corrupt a
        // previously published epoch.
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(strategy);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let (mut publisher, reader) = EpochPublisher::new();
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = report_from(&frames[0].0, &frames[0].1, k);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        let mut pins: Vec<PinnedSnapshot> = Vec::new();
        let mut expected: Vec<TableSnapshot> = Vec::new();

        let epoch = publisher.publish(&state);
        prop_assert_eq!(epoch, 1);
        prop_assert_eq!(reader.epoch(), 1);
        pins.push(reader.pin());
        expected.push(expectation(1, &state));

        for (levels, dead) in &frames[1..] {
            let old_report = report;
            report = report_from(levels, dead, k);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            let epoch = publisher.publish(&state);
            prop_assert_eq!(reader.epoch(), epoch);
            pins.push(reader.pin());
            expected.push(expectation(epoch, &state));
        }

        // Every pin — including those taken many republishes ago — must
        // still be byte-identical to what the Router produced at its
        // epoch: same epoch number, same flat table, same distance and
        // successor matrices, same answers.
        for (pin, want) in pins.iter().zip(&expected) {
            prop_assert_eq!(pin.as_ref(), want, "epoch {} diverged", want.epoch());
            for n in 0..k {
                let node = NodeId::new(n);
                for m in 0..modules.len() {
                    prop_assert_eq!(pin.route(node, m), want.route(node, m));
                }
            }
        }
    }

    /// The published epoch is indistinguishable across recompute
    /// strategies: whatever phase-2/phase-3 shortcuts a strategy takes,
    /// the snapshot a reader pins equals the Full strategy's snapshot
    /// at the same frame (routing data compared; epochs match by
    /// construction).
    #[test]
    fn published_snapshots_agree_across_strategies(
        side in 3usize..6,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..5
        ),
    ) {
        let strategies = [
            RecomputeStrategy::Full,
            RecomputeStrategy::AffectedSources,
            RecomputeStrategy::IncrementalRepair,
            RecomputeStrategy::Auto,
        ];
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut per_strategy: Vec<Vec<PinnedSnapshot>> = Vec::new();
        for strategy in strategies {
            let router = Router::new(algorithm)
                .with_backend(PathBackend::DijkstraAllPairs)
                .with_strategy(strategy);
            let (mut publisher, reader) = EpochPublisher::new();
            let mut scratch = RoutingScratch::new();
            let mut state = RoutingState::empty();
            let mut report = report_from(&frames[0].0, &frames[0].1, k);
            router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
            let mut pins = Vec::new();
            publisher.publish(&state);
            pins.push(reader.pin());
            for (levels, dead) in &frames[1..] {
                let old_report = report;
                report = report_from(levels, dead, k);
                router.recompute_into(
                    &graph, &modules, &old_report, &report, &mut scratch, &mut state,
                );
                publisher.publish(&state);
                pins.push(reader.pin());
            }
            per_strategy.push(pins);
        }

        let reference = &per_strategy[0];
        for (pins, strategy) in per_strategy[1..].iter().zip(&strategies[1..]) {
            prop_assert_eq!(pins.len(), reference.len());
            for (pin, want) in pins.iter().zip(reference) {
                prop_assert_eq!(
                    pin.as_ref(), want.as_ref(),
                    "strategy {:?} diverged from Full at epoch {}", strategy, want.epoch()
                );
            }
        }
    }
}
