//! The snapshot-consistency property suite: a reader pinned to epoch E
//! sees tables **byte-identical** to the ones the Router produced at
//! epoch E — across chains of drain/churn/reconnect report mutations,
//! across concurrent republishes on top of held pins, and under every
//! [`RecomputeStrategy`] (whose in-place delta/repair recomputes and
//! delta-aware table rebuilds must never leak into a published epoch).

use etx_fleet::ScenarioSpec;
use etx_graph::{topology::Mesh2D, NodeId, PathBackend};
use etx_routing::{
    Algorithm, RecomputeStrategy, Router, RoutingScratch, RoutingState, SystemReport,
};
use etx_serve::{
    EpochPublisher, FleetFrontend, PinnedSnapshot, Query, QueryBatch, QueryOutput, QueryResult,
    ShardWorkspace, TableSnapshot, WorkloadGen, WorkloadSpec,
};
use etx_sim::FrameFeed;
use etx_units::Length;
use proptest::prelude::*;

fn mesh_graph(side: usize) -> etx_graph::DiGraph {
    Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph()
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

fn report_from(levels: &[u32], dead: &[bool], k: usize) -> SystemReport {
    let mut report = SystemReport::fresh(k, 16);
    for i in 0..k {
        let node = NodeId::new(i);
        report.set_battery_level(node, levels[i % levels.len()]);
        if dead[i % dead.len()] {
            report.set_dead(node);
        }
    }
    report
}

/// What the Router actually produced at one epoch, captured eagerly.
fn expectation(epoch: u64, state: &RoutingState) -> TableSnapshot {
    let mut expected = TableSnapshot::empty();
    expected.fill_from(epoch, state);
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pins taken at every epoch of a drain/churn/reconnect chain stay
    /// byte-identical to the Router's state at that epoch, no matter
    /// how many later epochs are published over them, for every
    /// recompute strategy and both algorithms.
    #[test]
    fn pinned_epochs_match_router_state(
        side in 3usize..7,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        strategy in prop_oneof![
            Just(RecomputeStrategy::Full),
            Just(RecomputeStrategy::AffectedSources),
            Just(RecomputeStrategy::IncrementalRepair),
            Just(RecomputeStrategy::Auto),
        ],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..7
        ),
    ) {
        // Explicit Dijkstra backend so the in-place fast paths engage at
        // every mesh size — they are exactly what must not corrupt a
        // previously published epoch.
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(strategy);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let (mut publisher, reader) = EpochPublisher::new();
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = report_from(&frames[0].0, &frames[0].1, k);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        let mut pins: Vec<PinnedSnapshot> = Vec::new();
        let mut expected: Vec<TableSnapshot> = Vec::new();

        let epoch = publisher.publish(&state);
        prop_assert_eq!(epoch, 1);
        prop_assert_eq!(reader.epoch(), 1);
        pins.push(reader.pin());
        expected.push(expectation(1, &state));

        for (levels, dead) in &frames[1..] {
            let old_report = report;
            report = report_from(levels, dead, k);
            router.recompute_into(&graph, &modules, &old_report, &report, &mut scratch, &mut state);
            let epoch = publisher.publish(&state);
            prop_assert_eq!(reader.epoch(), epoch);
            pins.push(reader.pin());
            expected.push(expectation(epoch, &state));
        }

        // Every pin — including those taken many republishes ago — must
        // still be byte-identical to what the Router produced at its
        // epoch: same epoch number, same flat table, same distance and
        // successor matrices, same answers.
        for (pin, want) in pins.iter().zip(&expected) {
            prop_assert_eq!(pin.as_ref(), want, "epoch {} diverged", want.epoch());
            for n in 0..k {
                let node = NodeId::new(n);
                for m in 0..modules.len() {
                    prop_assert_eq!(pin.route(node, m), want.route(node, m));
                }
            }
        }
    }

    /// The published epoch is indistinguishable across recompute
    /// strategies: whatever phase-2/phase-3 shortcuts a strategy takes,
    /// the snapshot a reader pins equals the Full strategy's snapshot
    /// at the same frame (routing data compared; epochs match by
    /// construction).
    #[test]
    fn published_snapshots_agree_across_strategies(
        side in 3usize..6,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..5
        ),
    ) {
        let strategies = [
            RecomputeStrategy::Full,
            RecomputeStrategy::AffectedSources,
            RecomputeStrategy::IncrementalRepair,
            RecomputeStrategy::Auto,
        ];
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let mut per_strategy: Vec<Vec<PinnedSnapshot>> = Vec::new();
        for strategy in strategies {
            let router = Router::new(algorithm)
                .with_backend(PathBackend::DijkstraAllPairs)
                .with_strategy(strategy);
            let (mut publisher, reader) = EpochPublisher::new();
            let mut scratch = RoutingScratch::new();
            let mut state = RoutingState::empty();
            let mut report = report_from(&frames[0].0, &frames[0].1, k);
            router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
            let mut pins = Vec::new();
            publisher.publish(&state);
            pins.push(reader.pin());
            for (levels, dead) in &frames[1..] {
                let old_report = report;
                report = report_from(levels, dead, k);
                router.recompute_into(
                    &graph, &modules, &old_report, &report, &mut scratch, &mut state,
                );
                publisher.publish(&state);
                pins.push(reader.pin());
            }
            per_strategy.push(pins);
        }

        let reference = &per_strategy[0];
        for (pins, strategy) in per_strategy[1..].iter().zip(&strategies[1..]) {
            prop_assert_eq!(pins.len(), reference.len());
            for (pin, want) in pins.iter().zip(reference) {
                prop_assert_eq!(
                    pin.as_ref(), want.as_ref(),
                    "strategy {:?} diverged from Full at epoch {}", strategy, want.epoch()
                );
            }
        }
    }

    /// The lane-split batched execution answers exactly what the
    /// producing `RoutingState` answers: for every epoch of a
    /// drain/churn/reconnect chain (every recompute strategy, both
    /// algorithms), a frontend batch of all three query types — serial
    /// and sharded — resolves to the state's own `route`, `distance`
    /// and successor-walk answers.
    #[test]
    fn batched_queries_match_routing_state(
        side in 3usize..6,
        algorithm in prop_oneof![Just(Algorithm::Ear), Just(Algorithm::Sdr)],
        strategy in prop_oneof![
            Just(RecomputeStrategy::Full),
            Just(RecomputeStrategy::AffectedSources),
            Just(RecomputeStrategy::IncrementalRepair),
            Just(RecomputeStrategy::Auto),
        ],
        shards in 1usize..5,
        frames in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 8), proptest::collection::vec(any::<bool>(), 5)),
            2..5
        ),
    ) {
        let router = Router::new(algorithm)
            .with_backend(PathBackend::DijkstraAllPairs)
            .with_strategy(strategy);
        let graph = mesh_graph(side);
        let k = graph.node_count();
        let modules = module_stripes(k);

        let (mut publisher, reader) = EpochPublisher::new();
        let mut frontend = FleetFrontend::new(shards);
        let fabric = frontend.register(reader, k, modules.len());

        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let mut report = report_from(&frames[0].0, &frames[0].1, k);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

        let mut batch = QueryBatch::new();
        let mut serial = QueryOutput::new();
        let mut sharded = QueryOutput::new();
        let mut workspace = ShardWorkspace::new();
        let mut want_path = Vec::new();

        for (frame, (levels, dead)) in frames.iter().enumerate() {
            if frame > 0 {
                let old_report = report;
                report = report_from(levels, dead, k);
                router.recompute_into(
                    &graph, &modules, &old_report, &report, &mut scratch, &mut state,
                );
            }
            publisher.publish(&state);

            batch.clear();
            for s in 0..k {
                let source = NodeId::new(s);
                for m in 0..modules.len() as u32 {
                    batch.push(Query::NextHop { fabric, source, module: m });
                    batch.push(Query::Path { fabric, source, module: m });
                }
                batch.push(Query::Cost { fabric, source, target: NodeId::new((s * 7 + 1) % k) });
            }
            frontend.execute(&mut batch, &mut serial);
            frontend.execute_sharded(&mut batch, &mut sharded, &mut workspace);

            for (query, result) in batch.queries().iter().zip(serial.results()) {
                match (*query, *result) {
                    (Query::NextHop { source, module, .. }, QueryResult::NextHop(entry)) => {
                        prop_assert_eq!(entry, state.route(source, module as usize).copied());
                    }
                    (Query::Cost { source, target, .. }, QueryResult::Cost(cost)) => {
                        prop_assert_eq!(cost, state.distance(source, target));
                    }
                    (Query::Path { source, module, .. }, result @ QueryResult::Path { entry, .. }) => {
                        let want = state.route(source, module as usize).copied();
                        prop_assert_eq!(entry, want);
                        // Reference walk through the state's successor
                        // data: first hop from the entry, remainder via
                        // next_hop.
                        want_path.clear();
                        if let Some(entry) = want {
                            want_path.push(source);
                            let mut cur = entry.next_hop;
                            while cur != entry.destination {
                                want_path.push(cur);
                                cur = state.next_hop(cur, entry.destination)
                                    .expect("published route walks to its destination");
                            }
                            if entry.destination != source {
                                want_path.push(entry.destination);
                            }
                        }
                        prop_assert_eq!(serial.path_nodes(&result), want_path.as_slice());
                    }
                    (query, result) => {
                        prop_assert!(false, "mismatched kinds: {:?} -> {:?}", query, result);
                    }
                }
            }
            // The sharded fan-out resolves identically (its arena layout
            // is shard-ordered, so compare at the resolved level).
            prop_assert_eq!(serial.results().len(), sharded.results().len());
            for (a, b) in serial.results().iter().zip(sharded.results()) {
                match (a, b) {
                    (QueryResult::Path { entry: ea, .. }, QueryResult::Path { entry: eb, .. }) => {
                        prop_assert_eq!(ea, eb);
                        prop_assert_eq!(serial.path_nodes(a), sharded.path_nodes(b));
                    }
                    _ => prop_assert_eq!(a, b),
                }
            }
        }
    }
}

/// Both engine frame feeds publish byte-identical tables, so frontends
/// built over either feed answer byte-identical batches (results and
/// path-arena bytes).
#[test]
fn frame_feeds_serve_identical_answers() {
    let base = ScenarioSpec { instances: 3, ..ScenarioSpec::smoke() };
    let bitset_spec = ScenarioSpec { feed: FrameFeed::Bitset, ..base.clone() };
    let diff_spec = ScenarioSpec { feed: FrameFeed::ReportDiff, ..base };
    let bitset = FleetFrontend::from_spec(&bitset_spec, 1_500, 3).expect("valid spec");
    let diff = FleetFrontend::from_spec(&diff_spec, 1_500, 3).expect("valid spec");

    let mut generator = WorkloadGen::new(WorkloadSpec { batch: 512, ..WorkloadSpec::default() });
    let mut batch = QueryBatch::new();
    let mut out_bitset = QueryOutput::new();
    let mut out_diff = QueryOutput::new();
    for _ in 0..4 {
        generator.fill(&bitset, &mut batch);
        bitset.execute(&mut batch, &mut out_bitset);
        diff.execute(&mut batch, &mut out_diff);
        assert_eq!(out_bitset.results(), out_diff.results());
        for (a, b) in out_bitset.results().iter().zip(out_diff.results()) {
            assert_eq!(out_bitset.path_nodes(a), out_diff.path_nodes(b));
        }
    }
}

/// The `node_count > u16::MAX` regime, shaped without 65k nodes: an
/// index bound past the narrow range forces the wide (`u32`) fallback
/// on every index plane, and the wide snapshot answers every query
/// identically to the narrow one and to the producing state.
#[test]
fn wide_index_fallback_matches_narrow_and_state() {
    let graph = mesh_graph(4);
    let k = graph.node_count();
    let modules = module_stripes(k);
    let report = report_from(&[15, 3, 9], &[false, false, true], k);
    let router = Router::new(Algorithm::Ear);
    let mut scratch = RoutingScratch::new();
    let mut state = RoutingState::empty();
    router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);

    let mut narrow = TableSnapshot::empty();
    narrow.fill_from(1, &state);
    let mut wide = TableSnapshot::empty();
    wide.fill_from_bounded(1, &state, (u16::MAX as usize) + 2);
    assert!(wide.wide_index_planes(), "bound past u16::MAX must select u32 lanes");
    assert!(!narrow.wide_index_planes());

    assert!(wide.entries().eq(state.route_table().iter().copied()));
    let mut wide_path = Vec::new();
    let mut narrow_path = Vec::new();
    for s in 0..k {
        let node = NodeId::new(s);
        for m in 0..modules.len() {
            assert_eq!(wide.route(node, m), state.route(node, m).copied());
            wide_path.clear();
            narrow_path.clear();
            let we = wide.path_into(node, m, &mut wide_path);
            let ne = narrow.path_into(node, m, &mut narrow_path);
            assert_eq!(we, ne);
            assert_eq!(wide_path, narrow_path);
        }
        for t in 0..k {
            let other = NodeId::new(t);
            assert_eq!(wide.cost(node, other), state.distance(node, other));
            assert_eq!(wide.next_hop(node, other), state.next_hop(node, other));
        }
    }
}
