//! Deterministic load-shedding: with the shard worker paused, the
//! bounded queue fills to exactly its capacity and every frame past it
//! is shed with a REJECT carrying [`code::OVERLOADED`] — counted
//! one-for-one by `net.shed_total` — and resuming drains the queued
//! work without losing a slot.

use std::sync::Arc;

use etx_fleet::ScenarioSpec;
use etx_graph::NodeId;
use etx_metrics::{CounterId, MetricsHandle, Registry};
use etx_serve::net::proto::code;
use etx_serve::net::{ResponseKind, RouteClient, Served, ServedConfig};
use etx_serve::{Query, QueryOutput};

#[test]
fn paused_worker_sheds_exactly_past_capacity() {
    const CAPACITY: usize = 4;
    const SENT: usize = 7;

    let metrics = MetricsHandle::new(Arc::new(Registry::counters_only()));
    let spec = ScenarioSpec { instances: 1, ..ScenarioSpec::smoke() };
    let mut config = ServedConfig::new(spec);
    config.warm_cycles = Some(300);
    config.queue_capacity = CAPACITY;
    config.start_paused = true;
    config.metrics = metrics.clone();
    let served = Served::start(config).expect("daemon starts");

    let mut client = RouteClient::connect(served.addr()).expect("connect");
    let query = [Query::NextHop { fabric: 0, source: NodeId::new(1), module: 0 }];
    let mut ids = Vec::new();
    for _ in 0..SENT {
        ids.push(client.send_queries(&query).expect("send"));
    }

    // The reader processes this connection's frames in order: the
    // first CAPACITY land in the queue (worker paused, nothing pops),
    // the remaining SENT - CAPACITY are shed immediately. So the
    // sheds are the first replies on the wire, in send order.
    let mut out = QueryOutput::new();
    for expected_id in &ids[CAPACITY..] {
        let response = client.recv(&mut out).expect("recv shed");
        assert_eq!(response.request_id, *expected_id);
        match response.kind {
            ResponseKind::Rejected { code } => assert_eq!(code, code::OVERLOADED),
            other => panic!("expected REJECT, got {other:?}"),
        }
    }
    assert_eq!(
        metrics.counter(CounterId::NetShedTotal),
        (SENT - CAPACITY) as u64,
        "shed_total must count exactly the frames past capacity"
    );

    // Resume: the queued CAPACITY batches drain FIFO, none lost.
    served.set_paused(false);
    for expected_id in &ids[..CAPACITY] {
        let response = client.recv(&mut out).expect("recv queued");
        assert_eq!(response.request_id, *expected_id);
        assert!(matches!(response.kind, ResponseKind::Results), "queued batch must resolve");
        assert_eq!(out.results().len(), 1);
    }

    // No leaked slots: the queue is empty again and a fresh batch
    // round-trips immediately.
    let response = client.query(&query, &mut out).expect("post-resume query");
    assert!(matches!(response.kind, ResponseKind::Results));
    assert_eq!(metrics.counter(CounterId::NetShedTotal), (SENT - CAPACITY) as u64);
}

/// Pause → fill → resume → repeat: shedding is repeatable and the
/// counter advances by exactly the overflow each round.
#[test]
fn shedding_recovers_across_pause_cycles() {
    const CAPACITY: usize = 2;

    let metrics = MetricsHandle::new(Arc::new(Registry::counters_only()));
    let spec = ScenarioSpec { instances: 1, ..ScenarioSpec::smoke() };
    let mut config = ServedConfig::new(spec);
    config.warm_cycles = Some(300);
    config.queue_capacity = CAPACITY;
    config.start_paused = true;
    config.metrics = metrics.clone();
    let served = Served::start(config).expect("daemon starts");

    let mut client = RouteClient::connect(served.addr()).expect("connect");
    let query = [Query::Cost { fabric: 0, source: NodeId::new(0), target: NodeId::new(5) }];
    let mut out = QueryOutput::new();

    for round in 1u64..=3 {
        served.set_paused(true);
        for _ in 0..CAPACITY + 1 {
            client.send_queries(&query).expect("send");
        }
        let shed = client.recv(&mut out).expect("recv shed");
        assert!(matches!(shed.kind, ResponseKind::Rejected { code: code::OVERLOADED }));
        served.set_paused(false);
        for _ in 0..CAPACITY {
            let response = client.recv(&mut out).expect("recv queued");
            assert!(matches!(response.kind, ResponseKind::Results));
        }
        assert_eq!(metrics.counter(CounterId::NetShedTotal), round);
    }
}
