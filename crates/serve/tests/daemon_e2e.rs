//! End-to-end equivalence: answers served over the TCP wire must be
//! exactly the answers [`FleetFrontend`] gives in-process for the same
//! scenario spec and warm-up — across shard counts, across
//! connections, and across telemetry ingests.

use etx_fleet::ScenarioSpec;
use etx_serve::net::proto::code;
use etx_serve::net::{ResponseKind, RouteClient, Served, ServedConfig};
use etx_serve::{
    FabricDirectory, FleetFrontend, QueryBatch, QueryOutput, QueryResult, WorkloadGen, WorkloadSpec,
};

const WARM: u64 = 800;

/// Results are equal when every entry and every materialized path
/// agrees; the raw arena span offsets inside `QueryResult::Path` are
/// an internal layout detail (the hashed executor interleaves shards,
/// the wire decoder rebuilds in result order).
fn assert_outputs_equal(label: &str, a_out: &QueryOutput, b_out: &QueryOutput) {
    assert_eq!(a_out.results().len(), b_out.results().len(), "{label}: length");
    for (i, (a, b)) in a_out.results().iter().zip(b_out.results()).enumerate() {
        match (a, b) {
            (QueryResult::Path { entry: ea, .. }, QueryResult::Path { entry: eb, .. }) => {
                assert_eq!(ea, eb, "{label}: path entry {i}");
                assert_eq!(a_out.path_nodes(a), b_out.path_nodes(b), "{label}: path nodes {i}");
            }
            _ => assert_eq!(a, b, "{label}: result {i}"),
        }
    }
}

fn spec() -> ScenarioSpec {
    ScenarioSpec { instances: 3, ..ScenarioSpec::smoke() }
}

fn start(shards: usize) -> Served {
    let mut config = ServedConfig::new(spec());
    config.warm_cycles = Some(WARM);
    config.shards = shards;
    Served::start(config).expect("daemon starts")
}

fn assert_wire_matches_local(client: &mut RouteClient, frontend: &FleetFrontend, seed: u64) {
    let workload = WorkloadSpec { seed, batch: 256, ..WorkloadSpec::default() };
    let mut wire_gen = WorkloadGen::new(workload.clone());
    let mut local_gen = WorkloadGen::new(workload);
    let mut wire_batch = QueryBatch::new();
    let mut local_batch = QueryBatch::new();
    let mut wire_out = QueryOutput::new();
    let mut local_out = QueryOutput::new();
    for round in 0..4 {
        wire_gen.fill(client, &mut wire_batch);
        local_gen.fill(frontend, &mut local_batch);
        assert_eq!(
            wire_batch.queries(),
            local_batch.queries(),
            "round {round}: the HELLO_ACK dims must reproduce the local query stream"
        );
        let response = client.query(wire_batch.queries(), &mut wire_out).expect("wire query");
        assert!(matches!(response.kind, ResponseKind::Results));
        frontend.execute(&mut local_batch, &mut local_out);
        assert_outputs_equal(&format!("round {round}"), &wire_out, &local_out);
    }
}

#[test]
fn wire_answers_match_in_process_frontend() {
    let served = start(1);
    let frontend = FleetFrontend::from_spec(&spec(), WARM, 1).expect("frontend");
    let mut client = RouteClient::connect(served.addr()).expect("connect");

    assert_eq!(client.fabric_count(), frontend.fabric_count());
    for fabric in 0..client.fabric_count() as u32 {
        assert_eq!(client.node_count(fabric), frontend.node_count(fabric));
        assert_eq!(client.module_count(fabric), frontend.module_count(fabric));
    }

    assert_wire_matches_local(&mut client, &frontend, 7);
}

#[test]
fn sharded_daemon_matches_single_shard_frontend() {
    let served = start(2);
    // Shard count on the serving side must not change a single answer:
    // compare against a deliberately different in-process sharding.
    let frontend = FleetFrontend::from_spec(&spec(), WARM, 1).expect("frontend");

    // Round-robin pinning: consecutive connections land on different
    // shards, and both answer identically.
    let mut first = RouteClient::connect(served.addr()).expect("connect");
    let mut second = RouteClient::connect(served.addr()).expect("connect");
    assert_eq!(first.shard_count(), 2);
    assert_ne!(first.shard(), second.shard(), "round-robin must spread connections");

    assert_wire_matches_local(&mut first, &frontend, 11);
    assert_wire_matches_local(&mut second, &frontend, 11);
}

#[test]
fn ingest_advances_epochs_deterministically() {
    let served = start(1);
    let mut client = RouteClient::connect(served.addr()).expect("connect");
    let mut out = QueryOutput::new();

    // First ingest: two distinct telemetry updates. Whatever the warm
    // state left behind, a second identical ingest must be a pure
    // no-op — same epoch, zero applied.
    let items = [(1u32, 1u32), (2, 0)];
    client.send_ingest(0, &items).expect("send ingest");
    let first = client.recv(&mut out).expect("recv ack");
    let (epoch, _applied) = match first.kind {
        ResponseKind::IngestAck { epoch, applied } => (epoch, applied),
        other => panic!("expected INGEST_ACK, got {other:?}"),
    };

    client.send_ingest(0, &items).expect("send repeat ingest");
    let repeat = client.recv(&mut out).expect("recv repeat ack");
    match repeat.kind {
        ResponseKind::IngestAck { epoch: e, applied } => {
            assert_eq!(applied, 0, "repeated telemetry must apply nothing");
            assert_eq!(e, epoch, "no-op ingest must not publish a new epoch");
        }
        other => panic!("expected INGEST_ACK, got {other:?}"),
    }

    // A genuinely new report advances the epoch by exactly one
    // recompute and applies exactly the changed nodes.
    client.send_ingest(0, &[(1, 5), (2, 5)]).expect("send new ingest");
    let advanced = client.recv(&mut out).expect("recv new ack");
    match advanced.kind {
        ResponseKind::IngestAck { epoch: e, applied } => {
            assert_eq!(applied, 2);
            assert_eq!(e, epoch + 1);
        }
        other => panic!("expected INGEST_ACK, got {other:?}"),
    }

    // Post-ingest answers are served from the new tables and are
    // deterministic: the same batch twice is bit-identical.
    let workload = WorkloadSpec { seed: 23, batch: 128, ..WorkloadSpec::default() };
    let mut generator = WorkloadGen::new(workload);
    let mut batch = QueryBatch::new();
    generator.fill(&client, &mut batch);
    let mut again = QueryOutput::new();
    client.query(batch.queries(), &mut out).expect("query");
    client.query(batch.queries(), &mut again).expect("query again");
    assert_eq!(out.results(), again.results());
}

#[test]
fn ingest_to_unknown_fabric_is_rejected() {
    let served = start(1);
    let mut client = RouteClient::connect(served.addr()).expect("connect");
    let mut out = QueryOutput::new();
    client.send_ingest(99, &[(0, 1)]).expect("send");
    let response = client.recv(&mut out).expect("recv");
    match response.kind {
        ResponseKind::Rejected { code } => assert_eq!(code, code::UNKNOWN_FABRIC),
        other => panic!("expected REJECT, got {other:?}"),
    }
    // The connection survives the rejection.
    client.send_ingest(0, &[(3, 2)]).expect("send valid");
    let ack = client.recv(&mut out).expect("recv ack");
    assert!(matches!(ack.kind, ResponseKind::IngestAck { .. }));
}
