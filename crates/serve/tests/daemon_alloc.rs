//! Proves the daemon's warm per-request path allocates nothing: client
//! and daemon share this process's counting `#[global_allocator]`, so
//! a steady query exchange loop — encode, socket write, server decode,
//! pinned execute, results encode, client decode — must leave the
//! allocation counter untouched on both sides at once.
//!
//! Single test in the file so no concurrent case pollutes the counter
//! (same discipline as `query_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use etx_fleet::ScenarioSpec;
use etx_graph::NodeId;
use etx_serve::net::{ResponseKind, RouteClient, Served, ServedConfig};
use etx_serve::{Query, QueryOutput};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_wire_request_path_allocates_nothing() {
    let spec = ScenarioSpec { instances: 1, ..ScenarioSpec::smoke() };
    let mut config = ServedConfig::new(spec);
    config.warm_cycles = Some(300);
    let served = Served::start(config).expect("daemon starts");
    let mut client = RouteClient::connect(served.addr()).expect("connect");

    // A fixed mixed batch: next hops, full paths (arena traffic on
    // both encode and decode sides), and costs.
    let mut queries = Vec::new();
    for source in 0..8usize {
        queries.push(Query::NextHop { fabric: 0, source: NodeId::new(source), module: 0 });
        queries.push(Query::Path { fabric: 0, source: NodeId::new(source), module: 1 });
        queries.push(Query::Cost {
            fabric: 0,
            source: NodeId::new(source),
            target: NodeId::new(11 - source),
        });
    }
    let mut out = QueryOutput::new();

    let exchange = |client: &mut RouteClient, out: &mut QueryOutput| {
        let response = client.query(&queries, out).expect("exchange");
        assert!(matches!(response.kind, ResponseKind::Results));
        assert_eq!(out.results().len(), queries.len());
    };

    // Warm-up: buffers on both sides (frame reader, encode scratch,
    // the worker's pooled WorkItem, the client's output arena) reach
    // their steady-state capacities.
    for _ in 0..50 {
        exchange(&mut client, &mut out);
    }

    let before = allocations();
    for _ in 0..100 {
        exchange(&mut client, &mut out);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "warm wire exchanges must not allocate (client or daemon side)");
}
