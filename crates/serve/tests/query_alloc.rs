//! Proves the zero-allocation claim of the serve path: once the batch,
//! output and snapshot buffers have warmed up, a steady publish + query
//! loop — epoch publication included — performs **no heap allocation**.
//! Same counting-allocator discipline as the routing kernel's
//! `RoutingScratch` (see `crates/routing/tests/zero_alloc.rs`).
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file contains a single test so no concurrent test case can pollute
//! the counter between snapshots.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use etx_graph::{topology::Mesh2D, NodeId};
use etx_routing::{Algorithm, Router, RoutingScratch, RoutingState, SystemReport};
use etx_serve::{
    EpochPublisher, FleetFrontend, Query, QueryBatch, QueryOutput, ShardWorkspace, WorkloadGen,
    WorkloadSpec,
};
use etx_units::Length;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn module_stripes(k: usize) -> Vec<Vec<NodeId>> {
    (0..3).map(|m| (m..k).step_by(3).map(NodeId::new).collect()).collect()
}

/// One live fabric: a router feeding a publisher every frame.
struct Fabric {
    graph: etx_graph::DiGraph,
    modules: Vec<Vec<NodeId>>,
    router: Router,
    scratch: RoutingScratch,
    state: RoutingState,
    report: SystemReport,
    publisher: EpochPublisher,
}

impl Fabric {
    /// One steady-drain frame: recompute in place, publish an epoch.
    fn drain_frame(&mut self, frame: u32) {
        let k = self.graph.node_count();
        let node = NodeId::new((frame as usize * 7 + 3) % k);
        let level = self.report.battery_level(node);
        self.report.set_battery_level(node, level.saturating_sub(1));
        self.router.recompute_dirty_into(
            &self.graph,
            &self.modules,
            &self.report,
            &[node],
            &mut self.scratch,
            &mut self.state,
        );
        self.publisher.publish(&self.state);
    }
}

fn drive(
    frontend: &FleetFrontend,
    generator: &mut WorkloadGen,
    batch: &mut QueryBatch,
    out: &mut QueryOutput,
    fabrics: &mut [Fabric],
    frames: u32,
) {
    for frame in 0..frames {
        for fabric in fabrics.iter_mut() {
            fabric.drain_frame(frame);
        }
        generator.fill(frontend, batch);
        frontend.execute(batch, out);
    }
}

#[test]
fn steady_publish_and_query_loop_does_not_allocate() {
    // Two fabrics fed by live routers, so the loop exercises publish
    // (with double-buffer reclaim) *and* batched queries of all three
    // kinds against freshly pinned snapshots.
    let mut frontend = FleetFrontend::new(3);
    let mut fabrics = Vec::new();
    for side in [6usize, 8] {
        let graph = Mesh2D::square(side, Length::from_centimetres(2.05)).to_graph();
        let k = graph.node_count();
        let modules = module_stripes(k);
        let router = Router::new(Algorithm::Ear);
        let mut scratch = RoutingScratch::new();
        let mut state = RoutingState::empty();
        let report = SystemReport::fresh(k, 16);
        router.compute_into(&graph, &modules, &report, None, &mut scratch, &mut state);
        let (mut publisher, reader) = EpochPublisher::new();
        publisher.publish(&state);
        frontend.register(reader, k, modules.len());
        fabrics.push(Fabric { graph, modules, router, scratch, state, report, publisher });
    }

    let spec = WorkloadSpec { batch: 512, ..WorkloadSpec::default() };
    let mut generator = WorkloadGen::new(spec);
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();

    // Warm-up: grow every buffer (batch, order, results, arena, the
    // publishers' double buffers, the routers' scratch).
    drive(&frontend, &mut generator, &mut batch, &mut out, &mut fabrics, 4);

    let before = allocations();
    drive(&frontend, &mut generator, &mut batch, &mut out, &mut fabrics, 16);
    let allocated = allocations() - before;
    assert_eq!(
        allocated, 0,
        "steady publish+query loop allocated {allocated} times over 16 frames"
    );

    // The loop actually did the work it claims: every query answered,
    // epochs advanced past the warm-up.
    assert_eq!(out.results().len(), 512);
    assert!(frontend.epoch(0).unwrap() > 16);

    // The shard fan-out preserves the discipline on its serial fallback
    // (partition, per-shard slots, scatter — all warmed buffers). On a
    // multi-core host `execute_sharded` spawns scoped threads, which
    // allocate by design, so the zero-alloc assertion is gated to the
    // serial case; the output equivalence test covers the parallel
    // branch.
    let mut workspace = ShardWorkspace::new();
    // Warm-up: per-shard arenas converge to their high-water mark over
    // a few randomized batches (deterministic stream, so stable).
    for _ in 0..12 {
        generator.fill(&frontend, &mut batch);
        frontend.execute_sharded(&mut batch, &mut out, &mut workspace);
    }
    let serial_host =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) == 1;
    if serial_host {
        let before = allocations();
        for _ in 0..8 {
            generator.fill(&frontend, &mut batch);
            frontend.execute_sharded(&mut batch, &mut out, &mut workspace);
        }
        let allocated = allocations() - before;
        assert_eq!(allocated, 0, "sharded execute allocated {allocated} times over 8 batches");
    }
    assert_eq!(out.results().len(), 512);

    // Single-fabric fast path: every query addresses fabric 0, so
    // `sort_for_execution` skips the key build + sort entirely and the
    // lane-split execute runs all three lanes — the Path lane writing
    // through the arena — on warm buffers without allocating.
    let nodes = frontend.node_count(0).unwrap();
    let modules = frontend.module_count(0).unwrap() as u32;
    let fill_single_fabric = |batch: &mut QueryBatch, salt: usize| {
        batch.clear();
        for i in 0..512usize {
            let source = NodeId::new((i * 13 + salt) % nodes);
            let query = match i % 10 {
                8 => Query::Path { fabric: 0, source, module: (i as u32) % modules },
                9 => Query::Cost { fabric: 0, source, target: NodeId::new((i * 7 + salt) % nodes) },
                _ => Query::NextHop { fabric: 0, source, module: (i as u32) % modules },
            };
            batch.push(query);
        }
    };
    // Warm-up, then the measured loop (the per-type lane buffers and
    // the arena reach their high-water marks for this mix).
    for salt in 0..4 {
        fill_single_fabric(&mut batch, salt);
        frontend.execute(&mut batch, &mut out);
    }
    let before = allocations();
    for salt in 0..8 {
        fill_single_fabric(&mut batch, salt);
        frontend.execute(&mut batch, &mut out);
    }
    let allocated = allocations() - before;
    assert_eq!(
        allocated, 0,
        "single-fabric lane-split execute allocated {allocated} times over 8 batches"
    );
    assert_eq!(out.results().len(), 512);
    // The fast path really answered paths through the arena.
    assert!(out
        .results()
        .iter()
        .any(|r| matches!(r, etx_serve::QueryResult::Path { nodes: (s, e), .. } if e > s)));
}
