//! `served` — the `etx-served` daemon binary, plus the client and
//! local dump modes CI diffs against each other.
//!
//! ```text
//! served --preset smoke --shards 2 --port 0            # serve; prints "listening on ADDR"
//! served --spec scenario.spec --metrics metrics.json   # full-metrics JSON at shutdown
//! served --client-dump 127.0.0.1:7405 --out wire.txt --shutdown
//! served --local-dump --preset smoke --out local.txt
//! ```
//!
//! The two dump modes render identical workload streams through
//! identical renderers — one over the wire, one in-process via
//! [`FleetFrontend`] — so `cmp wire.txt local.txt` is the end-to-end
//! proof that the daemon's answers are byte-identical to the
//! in-process query surface on the same spec and warm-up.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use etx_fleet::ScenarioSpec;
use etx_metrics::{MetricsHandle, Registry};
use etx_serve::net::{ResponseKind, RouteClient, Served, ServedConfig};
use etx_serve::{FleetFrontend, QueryBatch, QueryOutput, QueryResult, WorkloadGen, WorkloadSpec};

struct Options {
    spec: ScenarioSpec,
    shards: usize,
    port: u16,
    warm: Option<u64>,
    queue: usize,
    metrics_path: Option<String>,
    client_dump: Option<SocketAddr>,
    local_dump: bool,
    out: String,
    rounds: u64,
    seed: u64,
    batch: usize,
    send_shutdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        spec: ScenarioSpec::smoke(),
        shards: 1,
        port: 0,
        warm: None,
        queue: 64,
        metrics_path: None,
        client_dump: None,
        local_dump: false,
        out: "served_dump.txt".to_string(),
        rounds: 3,
        seed: 77,
        batch: 512,
        send_shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--preset" => {
                let name = value("--preset")?;
                options.spec = ScenarioSpec::preset(&name)
                    .ok_or_else(|| format!("unknown preset `{name}`"))?;
            }
            "--spec" => {
                let path = value("--spec")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
                options.spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--shards" => {
                let n = value("--shards")?;
                options.shards = n.parse().map_err(|e| format!("bad shard count `{n}`: {e}"))?;
            }
            "--port" => {
                let n = value("--port")?;
                options.port = n.parse().map_err(|e| format!("bad port `{n}`: {e}"))?;
            }
            "--warm" => {
                let n = value("--warm")?;
                options.warm = Some(n.parse().map_err(|e| format!("bad warm cycles `{n}`: {e}"))?);
            }
            "--queue" => {
                let n = value("--queue")?;
                options.queue = n.parse().map_err(|e| format!("bad queue depth `{n}`: {e}"))?;
            }
            "--metrics" => options.metrics_path = Some(value("--metrics")?),
            "--client-dump" => {
                let addr = value("--client-dump")?;
                options.client_dump =
                    Some(addr.parse().map_err(|e| format!("bad address `{addr}`: {e}"))?);
            }
            "--local-dump" => options.local_dump = true,
            "--out" => options.out = value("--out")?,
            "--rounds" => {
                let n = value("--rounds")?;
                options.rounds = n.parse().map_err(|e| format!("bad round count `{n}`: {e}"))?;
            }
            "--seed" => {
                let n = value("--seed")?;
                options.seed = n.parse().map_err(|e| format!("bad seed `{n}`: {e}"))?;
            }
            "--batch" => {
                let n = value("--batch")?;
                options.batch = n.parse().map_err(|e| format!("bad batch size `{n}`: {e}"))?;
            }
            "--shutdown" => options.send_shutdown = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: served [--preset NAME | --spec FILE] \
                     [--shards N] [--port P] [--warm N] [--queue N] [--metrics FILE] \
                     [--client-dump ADDR [--shutdown]] [--local-dump] [--out FILE] \
                     [--rounds N] [--seed N] [--batch N]"
                ))
            }
        }
    }
    Ok(options)
}

/// Renders one answered batch in the `bench_serve --dump` line format,
/// shared verbatim by the wire and local dump paths.
fn render_round(text: &mut String, round: u64, batch: &QueryBatch, out: &QueryOutput) {
    for (query, result) in batch.queries().iter().zip(out.results()) {
        let _ = write!(text, "round {round} {query:?} => ");
        match result {
            QueryResult::Path { entry, .. } => {
                let _ = writeln!(text, "Path {entry:?} via {:?}", out.path_nodes(result));
            }
            other => {
                let _ = writeln!(text, "{other:?}");
            }
        }
    }
}

fn client_dump(options: &Options, addr: SocketAddr) -> Result<(), String> {
    let mut client = RouteClient::connect_retry(addr, Duration::from_secs(120))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let workload =
        WorkloadSpec { seed: options.seed, batch: options.batch, ..WorkloadSpec::default() };
    let mut generator = WorkloadGen::new(workload);
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut text = String::new();
    for round in 0..options.rounds {
        generator.fill(&client, &mut batch);
        let response =
            client.query(batch.queries(), &mut out).map_err(|e| format!("round {round}: {e}"))?;
        if !matches!(response.kind, ResponseKind::Results) {
            return Err(format!("round {round}: unexpected response {:?}", response.kind));
        }
        render_round(&mut text, round, &batch, &out);
    }
    if options.send_shutdown {
        client.send_shutdown().map_err(|e| format!("shutdown: {e}"))?;
    }
    std::fs::write(&options.out, &text).map_err(|e| format!("write {}: {e}", options.out))?;
    eprintln!("wrote {} ({} rounds over the wire from {addr})", options.out, options.rounds);
    Ok(())
}

fn local_dump(options: &Options) -> Result<(), String> {
    let warm = options.warm.unwrap_or(options.spec.warm_cycles);
    let frontend = FleetFrontend::from_spec(&options.spec, warm, options.shards.max(1))?;
    let workload =
        WorkloadSpec { seed: options.seed, batch: options.batch, ..WorkloadSpec::default() };
    let mut generator = WorkloadGen::new(workload);
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut text = String::new();
    for round in 0..options.rounds {
        generator.fill(&frontend, &mut batch);
        frontend.execute(&mut batch, &mut out);
        render_round(&mut text, round, &batch, &out);
    }
    std::fs::write(&options.out, &text).map_err(|e| format!("write {}: {e}", options.out))?;
    eprintln!("wrote {} ({} rounds in-process)", options.out, options.rounds);
    Ok(())
}

fn serve(options: Options) -> Result<(), String> {
    let metrics = if options.metrics_path.is_some() {
        MetricsHandle::new(Arc::new(Registry::full()))
    } else {
        MetricsHandle::default()
    };
    let mut config = ServedConfig::new(options.spec.clone());
    config.shards = options.shards;
    config.port = options.port;
    config.warm_cycles = options.warm;
    config.queue_capacity = options.queue;
    config.metrics = metrics.clone();
    eprintln!("warming {} instance(s) of `{}`...", options.spec.instances, options.spec.name);
    let mut served = Served::start(config)?;
    // The launch handshake for scripts: the one stdout line carries the
    // resolved (possibly ephemeral) address.
    println!("listening on {}", served.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    served.wait();
    if let Some(path) = &options.metrics_path {
        std::fs::write(path, metrics.snapshot().to_json_full())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    eprintln!("shut down");
    Ok(())
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("served: {e}");
            std::process::exit(2);
        }
    };
    let run = if let Some(addr) = options.client_dump {
        client_dump(&options, addr)
    } else if options.local_dump {
        local_dump(&options)
    } else {
        serve(options)
    };
    if let Err(e) = run {
        eprintln!("served: {e}");
        std::process::exit(1);
    }
}
