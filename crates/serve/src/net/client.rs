//! [`RouteClient`]: the blocking client half of the daemon protocol,
//! plus [`run_wire_load`] — the open-/closed-loop load driver that
//! measures the daemon end to end over loopback with the same latency
//! attribution as the in-process [`run_load`](crate::run_load).

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use etx_metrics::Histo;

use super::proto::{self, FabricDims, Reply, PROTOCOL_VERSION};
use super::wire::{FrameReader, RecvError, WireError};
use crate::workload::FabricDirectory;
use crate::{LoadMode, Query, QueryBatch, QueryOutput, WorkloadGen, WorkloadSpec};

/// A client-side failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// A socket operation failed.
    Io(std::io::ErrorKind),
    /// A frame could not be received (truncated, oversized, hostile
    /// prefix).
    Recv(RecvError),
    /// A received payload failed to decode.
    Wire(WireError),
    /// The server answered with a fatal ERROR frame and is closing.
    Remote {
        /// The server's error code (see [`proto::code`]).
        code: u8,
    },
    /// The server closed the connection cleanly.
    Closed,
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Io(kind) => write!(f, "socket error: {kind:?}"),
            NetError::Recv(e) => write!(f, "receive failed: {e}"),
            NetError::Wire(e) => write!(f, "malformed server frame: {e}"),
            NetError::Remote { code } => write!(f, "server error code {code}"),
            NetError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<RecvError> for NetError {
    fn from(e: RecvError) -> Self {
        NetError::Recv(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.kind())
    }
}

/// What one received server frame was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// RESULTS: the answers were decoded into the caller's
    /// [`QueryOutput`].
    Results,
    /// INGEST_ACK: the ingest was applied.
    IngestAck {
        /// The fabric's table epoch after the ingest.
        epoch: u64,
        /// Items that actually changed node state.
        applied: u64,
    },
    /// REJECT: the request was refused (non-fatal); for
    /// [`proto::code::OVERLOADED`], back off and resend.
    Rejected {
        /// Why (see [`proto::code`]).
        code: u8,
    },
}

/// One received server frame: which request it answers and what it
/// carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub request_id: u64,
    /// The decoded frame kind.
    pub kind: ResponseKind,
}

/// A blocking connection to an `etx-served` daemon. Handshakes on
/// connect, learns the fleet's fabric dimensions from HELLO_ACK (so a
/// [`WorkloadGen`] can run against it exactly as against the
/// in-process frontend), and reuses its encode/receive buffers — the
/// warm request path allocates nothing.
#[derive(Debug)]
pub struct RouteClient {
    stream: TcpStream,
    reader: FrameReader,
    buf: Vec<u8>,
    dims: FabricDims,
    shard: u32,
    shard_count: u32,
    next_request: u64,
    max_frame_len: usize,
}

impl RouteClient {
    /// Connects and handshakes.
    ///
    /// # Errors
    ///
    /// Socket failures, handshake rejections ([`NetError::Remote`])
    /// and malformed server frames.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RouteClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = RouteClient {
            stream,
            reader: FrameReader::new(),
            buf: Vec::new(),
            dims: Vec::new(),
            shard: 0,
            shard_count: 0,
            next_request: 0,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
        };
        let frame = proto::encode_hello(&mut client.buf);
        (&client.stream).write_all(frame)?;
        let payload = client
            .reader
            .next_frame(&client.stream, client.max_frame_len)?
            .ok_or(NetError::Closed)?;
        match proto::decode_reply(payload)? {
            Reply::HelloAck { version, shard, shard_count, fabrics }
                if version == PROTOCOL_VERSION =>
            {
                client.dims = fabrics;
                client.shard = shard;
                client.shard_count = shard_count;
                Ok(client)
            }
            Reply::Error { code } => Err(NetError::Remote { code }),
            _ => Err(NetError::Wire(WireError::Malformed)),
        }
    }

    /// [`RouteClient::connect`], retried until `timeout` — for racing
    /// a daemon that is still warming its fleet (the CI smoke job
    /// launches `served` and connects concurrently).
    ///
    /// # Errors
    ///
    /// The last attempt's error once `timeout` has elapsed.
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> Result<RouteClient, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match RouteClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// The shard this connection's queries execute on.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The daemon's worker (shard) count.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Sends a QUERY frame; returns its request id. Answers arrive
    /// via [`RouteClient::recv`] in request order.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn send_queries(&mut self, queries: &[Query]) -> Result<u64, NetError> {
        let id = self.next_request;
        self.next_request += 1;
        self.send_queries_as(id, queries)?;
        Ok(id)
    }

    /// Sends a QUERY frame under a caller-chosen request id (load
    /// drivers stamp the batch index so replies match their arrival
    /// schedule).
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn send_queries_as(&mut self, request_id: u64, queries: &[Query]) -> Result<(), NetError> {
        let frame = proto::encode_query(&mut self.buf, request_id, queries);
        (&self.stream).write_all(frame)?;
        Ok(())
    }

    /// Sends an INGEST of `(node, wire level)` items for `fabric`;
    /// returns its request id. Wire level `0` reports the node dead,
    /// `k > 0` reports battery level `k − 1`.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn send_ingest(&mut self, fabric: u32, items: &[(u32, u32)]) -> Result<u64, NetError> {
        let id = self.next_request;
        self.next_request += 1;
        let frame = proto::encode_ingest(&mut self.buf, id, fabric, items);
        (&self.stream).write_all(frame)?;
        Ok(id)
    }

    /// Sends a SHUTDOWN frame: the daemon begins shutdown and closes
    /// every connection.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn send_shutdown(&mut self) -> Result<(), NetError> {
        let frame = proto::encode_shutdown(&mut self.buf);
        (&self.stream).write_all(frame)?;
        Ok(())
    }

    /// Receives the next server frame. RESULTS payloads are decoded
    /// into `out` (its previous contents are replaced); other kinds
    /// leave `out` untouched.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] on clean close, [`NetError::Remote`] on a
    /// fatal ERROR frame, receive/decode failures otherwise.
    pub fn recv(&mut self, out: &mut QueryOutput) -> Result<Response, NetError> {
        let payload =
            self.reader.next_frame(&self.stream, self.max_frame_len)?.ok_or(NetError::Closed)?;
        if payload.first() == Some(&proto::msg::RESULTS) {
            let request_id = proto::decode_results_into(payload, out)?;
            return Ok(Response { request_id, kind: ResponseKind::Results });
        }
        match proto::decode_reply(payload)? {
            Reply::IngestAck { request_id, epoch, applied } => {
                Ok(Response { request_id, kind: ResponseKind::IngestAck { epoch, applied } })
            }
            Reply::Reject { request_id, code } => {
                Ok(Response { request_id, kind: ResponseKind::Rejected { code } })
            }
            Reply::Error { code } => Err(NetError::Remote { code }),
            _ => Err(NetError::Wire(WireError::Malformed)),
        }
    }

    /// Sends one batch and blocks for its answer — the convenience
    /// path for examples and differential tests; load drivers pipeline
    /// sends and receives instead.
    ///
    /// # Errors
    ///
    /// Send/receive failures; a REJECT or a mismatched request id is
    /// surfaced in the returned [`Response`] / as an error.
    pub fn query(
        &mut self,
        queries: &[Query],
        out: &mut QueryOutput,
    ) -> Result<Response, NetError> {
        let id = self.send_queries(queries)?;
        let response = self.recv(out)?;
        if response.request_id != id {
            return Err(NetError::Wire(WireError::Malformed));
        }
        Ok(response)
    }
}

impl FabricDirectory for RouteClient {
    fn fabric_count(&self) -> usize {
        self.dims.len()
    }

    fn node_count(&self, fabric: u32) -> Option<usize> {
        self.dims.get(fabric as usize)?.map(|(nodes, _)| nodes as usize)
    }

    fn module_count(&self, fabric: u32) -> Option<usize> {
        self.dims.get(fabric as usize)?.map(|(_, modules)| modules as usize)
    }
}

/// Result of one wire load run: throughput, shed volume and the
/// end-to-end latency distribution (decode + queue wait + execute +
/// encode + loopback, attributed per query exactly as
/// [`run_load`](crate::run_load) attributes in-process latency).
#[derive(Debug, Clone)]
pub struct WireLoadReport {
    /// Queries answered with RESULTS.
    pub queries: u64,
    /// Queries shed with an OVERLOADED REJECT.
    pub shed_queries: u64,
    /// Batches answered.
    pub batches: u64,
    /// Batches shed.
    pub shed_batches: u64,
    /// Wall-clock duration of the measured loop.
    pub wall_seconds: f64,
    /// The scheduled arrival rate (offered load); equals `qps` under
    /// [`LoadMode::Closed`].
    pub offered_qps: f64,
    /// Answered throughput, queries per second.
    pub qps: f64,
    /// Per-query sojourn histogram, nanoseconds (answered queries
    /// only — shed queries never entered service).
    pub latency: Histo,
}

impl WireLoadReport {
    /// The `q`-quantile of per-query sojourn time, nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, q: f64) -> u64 {
        self.latency.quantile_raw(q)
    }

    /// Fraction of offered queries that were shed.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.queries + self.shed_queries;
        if offered == 0 {
            0.0
        } else {
            self.shed_queries as f64 / offered as f64
        }
    }
}

/// Stamp slot value for "not sent yet".
const UNSENT: u64 = u64::MAX;

/// Drives `target_queries` (rounded up to whole batches) through the
/// daemon at `addr` over its wire protocol.
///
/// Closed mode is a single send→recv loop: per-query latency is the
/// round trip divided over the batch. Open mode splits the
/// connection: a sender thread paces QUERY frames at their scheduled
/// arrival times while the receiving half attributes each answered
/// query *wait + service share* — `max(0, send − arrival)` queueing
/// delay behind the socket plus an even share of the batch's round
/// trip — mirroring [`run_load`](crate::run_load), so in-process and
/// wire percentiles are directly comparable. Shed batches count into
/// `shed_queries` and record no latency.
///
/// # Errors
///
/// Connection and protocol failures.
pub fn run_wire_load(
    addr: SocketAddr,
    spec: &WorkloadSpec,
    mode: LoadMode,
    target_queries: u64,
) -> Result<WireLoadReport, NetError> {
    match mode {
        LoadMode::Closed => run_wire_closed(addr, spec, target_queries),
        LoadMode::Open { rate_qps } => run_wire_open(addr, spec, rate_qps, target_queries),
    }
}

fn run_wire_closed(
    addr: SocketAddr,
    spec: &WorkloadSpec,
    target_queries: u64,
) -> Result<WireLoadReport, NetError> {
    let mut client = RouteClient::connect(addr)?;
    let mut generator = WorkloadGen::new(spec.clone());
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut latency = Histo::new();
    let mut queries = 0u64;
    let mut shed_queries = 0u64;
    let mut batches = 0u64;
    let mut shed_batches = 0u64;

    // Warm-up exchange: grows every buffer on both sides of the wire.
    generator.fill(&client, &mut batch);
    client.query(batch.queries(), &mut out)?;

    let start = Instant::now();
    while queries + shed_queries < target_queries {
        generator.fill(&client, &mut batch);
        let batch_len = batch.len() as u64;
        let issued = Instant::now();
        let response = client.query(batch.queries(), &mut out)?;
        let rtt_ns = issued.elapsed().as_nanos() as u64;
        match response.kind {
            ResponseKind::Rejected { .. } => {
                shed_queries += batch_len;
                shed_batches += 1;
            }
            _ => {
                let per_query = (rtt_ns / batch_len.max(1)).max(1);
                for _ in 0..batch_len {
                    latency.observe(per_query);
                }
                queries += batch_len;
                batches += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let qps = queries as f64 / wall.max(1e-9);
    Ok(WireLoadReport {
        queries,
        shed_queries,
        batches,
        shed_batches,
        wall_seconds: wall,
        offered_qps: qps,
        qps,
        latency,
    })
}

fn run_wire_open(
    addr: SocketAddr,
    spec: &WorkloadSpec,
    rate_qps: f64,
    target_queries: u64,
) -> Result<WireLoadReport, NetError> {
    let mut client = RouteClient::connect(addr)?;
    let mut generator = WorkloadGen::new(spec.clone());
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();

    // Warm-up exchanges under out-of-band ids, so the timed batches
    // are exactly ids `0..total`.
    generator.fill(&client, &mut batch);
    for k in 0..4u64 {
        client.send_queries_as(UNSENT - 1 - k, batch.queries())?;
        client.recv(&mut out)?;
    }

    let batch_len = spec.batch.max(1) as u64;
    let total = target_queries.div_ceil(batch_len);
    let inter_ns = 1e9 / rate_qps.max(1e-9);

    // Pre-generate the batches (generation must not perturb pacing),
    // and share per-batch send stamps with the sender thread.
    let mut frames: Vec<Vec<Query>> = Vec::with_capacity(total as usize);
    for _ in 0..total {
        generator.fill(&client, &mut batch);
        frames.push(batch.queries().to_vec());
    }
    let stamps: Arc<Vec<AtomicU64>> =
        Arc::new((0..total).map(|_| AtomicU64::new(UNSENT)).collect());

    let start = Instant::now();
    let sender = {
        let stamps = Arc::clone(&stamps);
        let stream = client.stream.try_clone()?;
        std::thread::spawn(move || -> Result<(), NetError> {
            let mut buf = Vec::new();
            for (index, queries) in frames.iter().enumerate() {
                // Query i of the run arrives at i / rate; the batch is
                // sent at its first query's arrival.
                let arrival_ns = (index as u64 * batch_len) as f64 * inter_ns;
                loop {
                    let now = start.elapsed().as_nanos() as f64;
                    if now >= arrival_ns {
                        break;
                    }
                    let remaining = Duration::from_nanos((arrival_ns - now) as u64);
                    if remaining > Duration::from_micros(100) {
                        std::thread::sleep(remaining - Duration::from_micros(50));
                    } else {
                        std::thread::yield_now();
                    }
                }
                let frame = proto::encode_query(&mut buf, index as u64, queries);
                stamps[index].store(start.elapsed().as_nanos() as u64, Ordering::Release);
                (&stream).write_all(frame)?;
            }
            Ok(())
        })
    };

    let mut latency = Histo::new();
    let mut queries = 0u64;
    let mut shed_queries = 0u64;
    let mut batches = 0u64;
    let mut shed_batches = 0u64;
    for _ in 0..total {
        let response = client.recv(&mut out)?;
        let recv_ns = start.elapsed().as_nanos() as u64;
        let index = response.request_id;
        if index >= total {
            continue; // a stray warm-up reply
        }
        match response.kind {
            ResponseKind::Rejected { .. } => {
                shed_queries += batch_len;
                shed_batches += 1;
            }
            _ => {
                let sent = stamps[index as usize].load(Ordering::Acquire);
                let service_ns = recv_ns.saturating_sub(sent);
                let per_query = (service_ns / batch_len).max(1);
                for i in 0..batch_len {
                    let arrival = ((index * batch_len + i) as f64 * inter_ns) as u64;
                    // The send stamp is where socket backpressure
                    // surfaces: a batch the sender could not write at
                    // its scheduled time carries the backlog as wait.
                    let wait = sent.saturating_sub(arrival);
                    latency.observe(wait + per_query);
                }
                queries += batch_len;
                batches += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    match sender.join() {
        Ok(result) => result?,
        Err(_) => return Err(NetError::Closed),
    }
    Ok(WireLoadReport {
        queries,
        shed_queries,
        batches,
        shed_batches,
        wall_seconds: wall,
        offered_qps: rate_qps,
        qps: queries as f64 / wall.max(1e-9),
        latency,
    })
}
