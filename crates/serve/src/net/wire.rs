//! Wire primitives for the daemon protocol: LEB128 varints, a
//! bounds-checked payload cursor, and a buffered frame reader.
//!
//! The conventions mirror `etx-trace`'s container format (the crates
//! are intentionally independent, so the ~60 lines of varint plumbing
//! are duplicated rather than coupled): unsigned LEB128 for every
//! integer, `f64` as its IEEE-754 bit pattern in 8 little-endian
//! bytes, and a frame = `uvarint(payload_len) ++ payload`. Every
//! decoder is bounds-checked and total — malformed input yields a
//! [`WireError`], never a panic — because the daemon feeds these
//! routines bytes from arbitrary TCP peers.

use std::io::Read;
use std::net::TcpStream;

/// Bytes reserved at the front of an encode buffer for the length
/// prefix. Five LEB128 bytes cover payloads up to 2^35-1 — far past
/// any permitted `max_frame_len` — so the prefix is written backwards
/// into the reservation and the frame goes out as one contiguous
/// slice, no second buffer, no memmove.
pub(crate) const FRAME_PREFIX: usize = 5;

/// A decode failure. Total: every malformed input maps here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being decoded.
    Truncated,
    /// A varint ran past 64 bits.
    Overflow,
    /// A field held a value outside its documented range (bad frame
    /// type, bad result tag, bad magic, impossible count).
    Malformed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Overflow => write!(f, "varint overflows u64"),
            WireError::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` as an unsigned LEB128 varint.
pub(crate) fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Appends `v` as its bit pattern in 8 little-endian bytes (exact —
/// round-trips NaN payloads and signed zeros).
pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Clears `buf` and reserves [`FRAME_PREFIX`] bytes for the length
/// prefix; the message payload is appended after this.
pub(crate) fn begin_frame(buf: &mut Vec<u8>) {
    buf.clear();
    buf.resize(FRAME_PREFIX, 0);
}

/// Seals a frame begun with [`begin_frame`]: writes the payload
/// length backwards into the reservation and returns the wire bytes
/// (`length prefix ++ payload`) as one slice of `buf`.
pub(crate) fn finish_frame(buf: &mut [u8]) -> &[u8] {
    let payload = buf.len() - FRAME_PREFIX;
    let mut tmp = [0u8; FRAME_PREFIX];
    let mut v = payload as u64;
    let mut w = 0;
    loop {
        if v >= 0x80 {
            tmp[w] = (v as u8 & 0x7f) | 0x80;
            v >>= 7;
            w += 1;
        } else {
            tmp[w] = v as u8;
            w += 1;
            break;
        }
    }
    let start = FRAME_PREFIX - w;
    buf[start..FRAME_PREFIX].copy_from_slice(&tmp[..w]);
    &buf[start..]
}

/// A bounds-checked reader over one frame's payload bytes.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    pub(crate) fn take_uvarint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::Overflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn take_f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.take_bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A failure while receiving a frame from a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed the connection mid-frame (a close *between*
    /// frames is the clean end-of-stream, reported as `Ok(None)`).
    Truncated,
    /// The length prefix declared a payload past the permitted
    /// maximum. Detected before any body byte is read, so oversized
    /// frames cost the attacker bytes, not the daemon memory.
    TooLarge {
        /// The declared payload length.
        declared: u64,
    },
    /// The length prefix itself was not a valid varint.
    BadLength,
    /// The underlying socket read failed.
    Io(std::io::ErrorKind),
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Truncated => write!(f, "peer closed mid-frame"),
            RecvError::TooLarge { declared } => {
                write!(f, "declared payload of {declared} bytes exceeds the frame limit")
            }
            RecvError::BadLength => write!(f, "malformed length prefix"),
            RecvError::Io(kind) => write!(f, "socket read failed: {kind:?}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Buffered frame extraction from a `TcpStream`: reads in large
/// chunks, hands out one payload slice per call. The buffer is
/// retained (and only compacted in place) across frames, so the warm
/// receive path performs zero allocations once the buffer has grown
/// to the connection's working frame size.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with a 64 KiB initial buffer (doubles as needed, up
    /// to the frame limit the caller enforces).
    #[must_use]
    pub fn new() -> Self {
        FrameReader { buf: vec![0; 64 * 1024], start: 0, end: 0 }
    }

    /// Attempts to parse one frame out of the buffered bytes.
    /// `Ok(Some((s, e)))`: payload spans `buf[s..e]` and the prefix
    /// was consumed. `Ok(None)`: more bytes needed.
    fn try_parse(&self, max_len: usize) -> Result<Option<(usize, usize)>, RecvError> {
        let avail = &self.buf[self.start..self.end];
        let mut v: u64 = 0;
        let mut shift = 0u32;
        let mut i = 0usize;
        loop {
            let Some(&byte) = avail.get(i) else {
                return Ok(None);
            };
            i += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(RecvError::BadLength);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        if v > max_len as u64 {
            return Err(RecvError::TooLarge { declared: v });
        }
        let need = i + v as usize;
        if avail.len() < need {
            return Ok(None);
        }
        Ok(Some((self.start + i, self.start + need)))
    }

    /// Reads from `stream` until one whole frame is buffered and
    /// returns its payload. `Ok(None)` is the clean end of stream: the
    /// peer closed exactly on a frame boundary.
    ///
    /// # Errors
    ///
    /// [`RecvError::Truncated`] when the peer closes mid-frame,
    /// [`RecvError::TooLarge`]/[`RecvError::BadLength`] for a hostile
    /// prefix, [`RecvError::Io`] when the socket read fails.
    pub fn next_frame(
        &mut self,
        stream: &TcpStream,
        max_len: usize,
    ) -> Result<Option<&[u8]>, RecvError> {
        let (s, e) = loop {
            match self.try_parse(max_len)? {
                Some(span) => break span,
                None => {
                    if !self.fill(stream)? {
                        if self.start == self.end {
                            return Ok(None);
                        }
                        return Err(RecvError::Truncated);
                    }
                }
            }
        };
        self.start = e;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(Some(&self.buf[s..e]))
    }

    /// One socket read into the free tail of the buffer, compacting
    /// or doubling first when the tail is full. `Ok(false)` is EOF.
    fn fill(&mut self, mut stream: &TcpStream) -> Result<bool, RecvError> {
        if self.end == self.buf.len() {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            } else {
                let doubled = self.buf.len() * 2;
                self.buf.resize(doubled, 0);
            }
        }
        loop {
            match stream.read(&mut self.buf[self.end..]) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.end += n;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e.kind())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let samples =
            [0u64, 1, 0x7f, 0x80, 0x3fff, 0x4000, 123_456_789, u64::from(u32::MAX), u64::MAX];
        for v in samples {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.take_uvarint(), Ok(v));
            assert!(c.is_empty());
        }
    }

    #[test]
    fn cursor_rejects_truncation_and_overflow() {
        let mut c = Cursor::new(&[0x80]);
        assert_eq!(c.take_uvarint(), Err(WireError::Truncated));
        // Eleven continuation bytes: past 64 bits of shift.
        let over = [0x80u8; 10];
        let mut c = Cursor::new(&over);
        assert_eq!(c.take_uvarint(), Err(WireError::Overflow));
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.take_bytes(4), Err(WireError::Truncated));
        let mut c = Cursor::new(&[0u8; 7]);
        assert_eq!(c.take_f64(), Err(WireError::Truncated));
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, 1.0e-300] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.take_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn frame_prefix_is_written_in_place() {
        let mut buf = Vec::new();
        begin_frame(&mut buf);
        buf.extend_from_slice(b"hello");
        let frame = finish_frame(&mut buf);
        assert_eq!(frame, [5, b'h', b'e', b'l', b'l', b'o']);

        // A payload long enough to need a two-byte prefix.
        begin_frame(&mut buf);
        buf.resize(FRAME_PREFIX + 300, 0xab);
        let frame = finish_frame(&mut buf);
        assert_eq!(frame.len(), 2 + 300);
        assert_eq!(&frame[..2], &[0xac, 0x02]); // 300 = 0b10_0101100
    }
}
