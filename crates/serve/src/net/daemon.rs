//! [`Served`]: the thread-per-core TCP query daemon.
//!
//! One acceptor thread pins each incoming connection to a shard
//! (round-robin), one lightweight reader thread per connection
//! decodes frames, and one **worker thread per shard** executes every
//! queued request for its connections — so a connection's queries run
//! on the owning shard with no cross-core handoff on the hot path.
//! Between reader and worker sits a **bounded queue**: when it fills,
//! the reader sheds the request with a [`code::OVERLOADED`] REJECT
//! instead of queueing, which keeps in-daemon wait bounded and pushes
//! backpressure to the client where it belongs (§ load-shedding in
//! the README's wire-protocol section).
//!
//! Each worker additionally owns the **write side** of the fabrics
//! hashed to it: INGEST frames patch the fabric's battery report,
//! rerun the decrease-half repair, and publish a new epoch — the
//! network analogue of the engine's per-frame `TableObserver` hook.
//! Reads never wait on writes: queries answer from the epoch
//! snapshots, so an ingest's only effect on concurrent queries is
//! which epoch they pin.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use etx_fleet::ScenarioSpec;
use etx_graph::{DiGraph, NodeId};
use etx_metrics::{CounterId, GaugeId, MetricsHandle, SpanId};
use etx_routing::{Router, RoutingScratch, RoutingState, SystemReport};
use etx_sim::{SimPool, Simulation, TableObserver};

use super::proto::{self, code, FabricDims, PROTOCOL_VERSION};
use super::wire::{FrameReader, RecvError};
use crate::{EpochPublisher, FleetFrontend, QueryBatch, QueryOutput};

/// Configuration for [`Served::start`].
#[derive(Debug)]
pub struct ServedConfig {
    /// The fleet scenario whose instances this daemon serves.
    pub spec: ScenarioSpec,
    /// Worker-thread (shard) count, clamped to ≥ 1.
    pub shards: usize,
    /// TCP port on 127.0.0.1 (`0`: ephemeral; read [`Served::addr`]).
    pub port: u16,
    /// Warm-up engine cycles per instance (`None`: the spec's
    /// `warm_cycles`).
    pub warm_cycles: Option<u64>,
    /// Bounded per-shard queue capacity: requests past this are shed.
    pub queue_capacity: usize,
    /// Maximum accepted frame payload.
    pub max_frame_len: usize,
    /// Start with workers paused (deterministic backpressure tests:
    /// the queue fills while paused; [`Served::set_paused`] releases).
    pub start_paused: bool,
    /// Metrics sink for the daemon's counters, spans and wire-latency
    /// histograms.
    pub metrics: MetricsHandle,
}

impl ServedConfig {
    /// Defaults for `spec`: one shard, ephemeral port, spec warm-up,
    /// queue capacity 64, 1 MiB frames, running (not paused), no-op
    /// metrics.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        ServedConfig {
            spec,
            shards: 1,
            port: 0,
            warm_cycles: None,
            queue_capacity: 64,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            start_paused: false,
            metrics: MetricsHandle::default(),
        }
    }
}

/// What a queued request is.
enum JobKind {
    /// A QUERY batch to execute against the frontend.
    Query,
    /// An INGEST to apply to one fabric's write side.
    Ingest,
}

/// A pooled per-request workspace: the decoded request, the execution
/// buffers and the encode buffer, all retained across requests so the
/// warm path allocates nothing.
struct WorkItem {
    request_id: u64,
    kind: JobKind,
    batch: QueryBatch,
    ingest_fabric: u32,
    ingest: Vec<(u32, u32)>,
    out: QueryOutput,
    wire: Vec<u8>,
    received: Option<Instant>,
    /// Query counts per wire-latency lane: next-hop, cost, path.
    lanes: [u64; 3],
}

impl Default for WorkItem {
    fn default() -> Self {
        WorkItem {
            request_id: 0,
            kind: JobKind::Query,
            batch: QueryBatch::new(),
            ingest_fabric: 0,
            ingest: Vec::new(),
            out: QueryOutput::new(),
            wire: Vec::new(),
            received: None,
            lanes: [0; 3],
        }
    }
}

/// One queued request: the workspace plus the connection to answer.
struct Job {
    conn: Arc<Conn>,
    item: WorkItem,
}

/// The bounded handoff between a shard's readers and its worker.
struct ShardQueue {
    state: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            state: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full; a full queue returns the job to the
    /// caller for shedding. Never blocks.
    // Err is the give-back path, not an error type: the rejected Job
    // must come back whole so its WorkItem returns to the connection
    // pool without a heap round trip on the shed path.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job, metrics: &MetricsHandle) -> Result<(), Job> {
        let mut q = self.state.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(job);
        }
        q.push_back(job);
        metrics.gauge_raise(GaugeId::NetQueueDepthPeak, q.len() as u64);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` on shutdown. While paused, the
    /// queue accepts pushes but releases nothing — how the
    /// backpressure tests fill it deterministically.
    fn pop(&self, shutdown: &AtomicBool, paused: &AtomicBool) -> Option<Job> {
        let mut q = self.state.lock().unwrap();
        loop {
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            if !paused.load(Ordering::Acquire) {
                if let Some(job) = q.pop_front() {
                    return Some(job);
                }
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn notify_all(&self) {
        let _guard = self.state.lock().unwrap();
        self.ready.notify_all();
    }
}

/// Per-connection state shared between its reader thread and the
/// shard workers answering it.
struct Conn {
    stream: TcpStream,
    /// Serializes frame writes: reader-side REJECTs and worker-side
    /// RESULTS interleave at frame granularity, never mid-frame.
    write: Mutex<()>,
    /// Returned [`WorkItem`]s, reused by the reader. Per-connection,
    /// so a connection's buffers converge to its own batch sizes.
    pool: Mutex<Vec<WorkItem>>,
    /// The shard this connection's queries execute on.
    shard: u32,
}

impl Conn {
    fn take_item(&self) -> WorkItem {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    fn put_item(&self, item: WorkItem) {
        self.pool.lock().unwrap().push(item);
    }

    /// Writes one already-encoded frame atomically; errors mean the
    /// peer is gone and are ignored (the reader observes the close).
    fn write_frame(&self, metrics: &MetricsHandle, frame: &[u8]) {
        use std::io::Write as _;
        let _guard = self.write.lock().unwrap();
        if (&self.stream).write_all(frame).is_ok() {
            metrics.inc(CounterId::NetFramesOut);
            metrics.add(CounterId::NetBytesOut, frame.len() as u64);
        }
    }
}

/// The write side of one served fabric: everything needed to patch
/// its battery report, repair its tables and publish a new epoch —
/// the same `graph → report → recompute_dirty_into → publish` loop
/// the engine's frame hook runs, owned by exactly one worker.
struct ServedFabric {
    fabric: u32,
    graph: DiGraph,
    modules: Vec<Vec<NodeId>>,
    router: Router,
    scratch: RoutingScratch,
    state: RoutingState,
    report: SystemReport,
    publisher: Arc<Mutex<EpochPublisher>>,
    dirty: Vec<NodeId>,
    /// `false` when the engine configuration (a remapping policy)
    /// moves modules outside this write side's model — such fabrics
    /// answer queries but refuse ingests.
    ingestable: bool,
}

impl ServedFabric {
    fn from_sim(
        fabric: u32,
        sim: &Simulation,
        publisher: Arc<Mutex<EpochPublisher>>,
    ) -> Result<ServedFabric, String> {
        let cfg = sim.config();
        let placement = cfg.placement().map_err(|e| format!("fabric {fabric}: {e:?}"))?;
        Ok(ServedFabric {
            fabric,
            graph: cfg.build_graph(),
            modules: placement.module_nodes().to_vec(),
            router: Router::with_weighting(cfg.algorithm, cfg.weighting)
                .with_strategy(cfg.recompute_strategy),
            scratch: RoutingScratch::new(),
            state: sim.routing().clone(),
            report: sim.last_report().clone(),
            publisher,
            dirty: Vec::new(),
            ingestable: cfg.remapping.is_none(),
        })
    }

    /// Applies `(node, level)` telemetry (wire level `0`: dead;
    /// `k > 0`: battery level `k − 1`), repairs the tables over the
    /// dirtied nodes and publishes. Returns `(epoch, applied)`;
    /// no-op items (unknown nodes, unchanged levels) don't count and
    /// an all-no-op ingest publishes nothing.
    fn ingest(&mut self, items: &[(u32, u32)]) -> (u64, u64) {
        self.dirty.clear();
        let nodes = self.report.node_count();
        for &(node, level) in items {
            if node as usize >= nodes {
                continue;
            }
            let id = NodeId::new(node as usize);
            if level == 0 {
                if !self.report.is_alive(id) {
                    continue;
                }
                self.report.set_dead(id);
            } else {
                let target = (level - 1).min(self.report.levels() - 1);
                if self.report.is_alive(id) {
                    if self.report.battery_level(id) == target {
                        continue;
                    }
                    self.report.set_battery_level(id, target);
                } else {
                    self.report.revive(id, target);
                }
            }
            self.dirty.push(id);
        }
        let applied = self.dirty.len() as u64;
        if applied == 0 {
            return (self.publisher.lock().unwrap().epoch(), 0);
        }
        self.router.recompute_dirty_into(
            &self.graph,
            &self.modules,
            &self.report,
            &self.dirty,
            &mut self.scratch,
            &mut self.state,
        );
        let epoch = self.publisher.lock().unwrap().publish(&self.state);
        (epoch, applied)
    }
}

/// The engine-side table hook for daemon-owned fabrics: the publisher
/// must outlive the simulation (the worker's write side keeps
/// publishing epochs), so the observer holds it behind a shared lock.
struct SharedPublisher(Arc<Mutex<EpochPublisher>>);

impl TableObserver for SharedPublisher {
    fn on_tables(&mut self, _version: u64, routing: &RoutingState, _report: &SystemReport) {
        self.0.lock().unwrap().publish(routing);
    }
}

/// State shared by the acceptor, every reader and every worker.
struct Shared {
    frontend: FleetFrontend,
    queues: Vec<ShardQueue>,
    dims: FabricDims,
    metrics: MetricsHandle,
    shutdown: AtomicBool,
    paused: AtomicBool,
    max_frame_len: usize,
    conns: Mutex<Vec<Weak<Conn>>>,
    next_conn: AtomicUsize,
    addr: SocketAddr,
}

impl Shared {
    /// Flips the daemon into shutdown and unblocks everything that
    /// could be waiting: workers (queue condvars), readers (socket
    /// shutdown) and the acceptor (a self-connection). Idempotent.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for queue in &self.queues {
            queue.notify_all();
        }
        let conns = self.conns.lock().unwrap();
        for conn in conns.iter().filter_map(Weak::upgrade) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        drop(conns);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping it shuts it down and joins its threads.
pub struct Served {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Served {
    /// Builds the fleet (sampled, warmed and published exactly as
    /// [`FleetFrontend::from_spec`] does, so answers and epochs are
    /// identical to the in-process frontend), binds 127.0.0.1 and
    /// spawns the acceptor and one worker per shard.
    ///
    /// # Errors
    ///
    /// Invalid specs ([`ScenarioSpec::check`]) and bind failures.
    pub fn start(config: ServedConfig) -> Result<Served, String> {
        let ServedConfig {
            spec,
            shards,
            port,
            warm_cycles,
            queue_capacity,
            max_frame_len,
            start_paused,
            metrics,
        } = config;
        spec.check()?;
        let shards = shards.max(1);
        let warm = warm_cycles.unwrap_or(spec.warm_cycles);

        let mut frontend = FleetFrontend::new(shards).with_metrics(metrics.clone());
        let mut pool = SimPool::new();
        let mut write_sides: Vec<Vec<ServedFabric>> = (0..shards).map(|_| Vec::new()).collect();
        let mut dims: FabricDims = Vec::with_capacity(spec.instances);
        for index in 0..spec.instances {
            match spec.sample(index).build_pooled(&mut pool) {
                Ok(mut sim) => {
                    let (mut publisher, reader) = EpochPublisher::new();
                    publisher.set_metrics(metrics.clone());
                    let shared_pub = Arc::new(Mutex::new(publisher));
                    sim.set_table_observer(Box::new(SharedPublisher(Arc::clone(&shared_pub))));
                    for _ in 0..warm {
                        if sim.step().is_some() {
                            break;
                        }
                    }
                    let nodes = sim.routing().node_count();
                    let modules = sim.routing().module_count();
                    let fabric = frontend.register(reader, nodes, modules);
                    dims.push(Some((nodes as u32, modules as u32)));
                    let side = ServedFabric::from_sim(fabric, &sim, shared_pub)?;
                    write_sides[fabric as usize % shards].push(side);
                    sim.recycle_into(&mut pool);
                }
                Err(_) => {
                    frontend.register_rejected();
                    dims.push(None);
                }
            }
        }

        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shared = Arc::new(Shared {
            frontend,
            queues: (0..shards).map(|_| ShardQueue::new(queue_capacity)).collect(),
            dims,
            metrics,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(start_paused),
            max_frame_len,
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicUsize::new(0),
            addr,
        });

        let workers = write_sides
            .into_iter()
            .enumerate()
            .map(|(shard, fabrics)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, shard, fabrics))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&shared, &listener))
        };
        Ok(Served { shared, acceptor: Some(acceptor), workers })
    }

    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Pauses/resumes the shard workers (requests queue — and shed
    /// past capacity — while paused).
    pub fn set_paused(&self, paused: bool) {
        self.shared.paused.store(paused, Ordering::Release);
        if !paused {
            for queue in &self.shared.queues {
                queue.notify_all();
            }
        }
    }

    /// Begins shutdown (idempotent; also reachable over the wire via
    /// a SHUTDOWN frame).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the daemon has shut down (wire SHUTDOWN frame or
    /// [`Served::shutdown`]) and its acceptor and workers have
    /// exited.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.wait();
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                shared.metrics.inc(CounterId::NetConnections);
                let _ = stream.set_nodelay(true);
                let shard =
                    (shared.next_conn.fetch_add(1, Ordering::Relaxed) % shared.queues.len()) as u32;
                let conn = Arc::new(Conn {
                    stream,
                    write: Mutex::new(()),
                    pool: Mutex::new(Vec::new()),
                    shard,
                });
                let mut conns = shared.conns.lock().unwrap();
                conns.retain(|c| c.strong_count() > 0);
                conns.push(Arc::downgrade(&conn));
                drop(conns);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || conn_loop(&shared, &conn));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Prefix + payload length of a frame whose payload is `len` bytes.
fn frame_len(len: usize) -> u64 {
    let mut prefix = 1u64;
    let mut v = len >> 7;
    while v > 0 {
        prefix += 1;
        v >>= 7;
    }
    prefix + len as u64
}

/// Sends a fatal ERROR frame and counts the protocol error.
fn fatal(shared: &Shared, conn: &Conn, scratch: &mut Vec<u8>, error: u8) {
    shared.metrics.inc(CounterId::NetProtocolErrors);
    let frame = proto::encode_error(scratch, error);
    conn.write_frame(&shared.metrics, frame);
}

fn conn_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut reader = FrameReader::new();
    let mut scratch = Vec::new();

    // Handshake: HELLO in, HELLO_ACK (or a fatal ERROR) out.
    {
        let accept_t = shared.metrics.timer();
        match reader.next_frame(&conn.stream, shared.max_frame_len) {
            Ok(Some(payload)) => {
                shared.metrics.inc(CounterId::NetFramesIn);
                shared.metrics.add(CounterId::NetBytesIn, frame_len(payload.len()));
                match proto::decode_hello(payload) {
                    Ok(version) if version == PROTOCOL_VERSION => {}
                    Ok(_) => return fatal(shared, conn, &mut scratch, code::BAD_VERSION),
                    Err(error) => return fatal(shared, conn, &mut scratch, error),
                }
            }
            Ok(None) => return,
            Err(RecvError::TooLarge { .. }) => {
                return fatal(shared, conn, &mut scratch, code::FRAME_TOO_LARGE)
            }
            Err(RecvError::BadLength) => return fatal(shared, conn, &mut scratch, code::MALFORMED),
            Err(_) => return,
        }
        let frame = proto::encode_hello_ack(
            &mut scratch,
            conn.shard,
            shared.queues.len() as u32,
            &shared.dims,
        );
        conn.write_frame(&shared.metrics, frame);
        shared.metrics.observe_since(SpanId::NetAccept, accept_t);
    }

    loop {
        let payload = match reader.next_frame(&conn.stream, shared.max_frame_len) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(RecvError::TooLarge { .. }) => {
                return fatal(shared, conn, &mut scratch, code::FRAME_TOO_LARGE)
            }
            Err(RecvError::BadLength) => return fatal(shared, conn, &mut scratch, code::MALFORMED),
            Err(_) => return,
        };
        shared.metrics.inc(CounterId::NetFramesIn);
        shared.metrics.add(CounterId::NetBytesIn, frame_len(payload.len()));

        match payload.first().copied() {
            Some(proto::msg::QUERY) => {
                let decode_t = shared.metrics.timer();
                let mut item = conn.take_item();
                let request_id = match proto::decode_query_into(payload, &mut item.batch) {
                    Ok(id) => id,
                    Err(_) => {
                        conn.put_item(item);
                        return fatal(shared, conn, &mut scratch, code::MALFORMED);
                    }
                };
                item.request_id = request_id;
                item.kind = JobKind::Query;
                item.lanes = [0; 3];
                for query in item.batch.queries() {
                    let lane = match query {
                        crate::Query::NextHop { .. } => 0,
                        crate::Query::Cost { .. } => 1,
                        crate::Query::Path { .. } => 2,
                    };
                    item.lanes[lane] += 1;
                }
                item.received = shared.metrics.timer();
                shared.metrics.observe_since(SpanId::NetDecode, decode_t);
                shared.metrics.inc(CounterId::NetQueryRequests);
                let queue = &shared.queues[conn.shard as usize];
                if let Err(job) =
                    queue.try_push(Job { conn: Arc::clone(conn), item }, &shared.metrics)
                {
                    shared.metrics.inc(CounterId::NetShedTotal);
                    let frame = proto::encode_reject(&mut scratch, request_id, code::OVERLOADED);
                    conn.write_frame(&shared.metrics, frame);
                    conn.put_item(job.item);
                }
            }
            Some(proto::msg::INGEST) => {
                let decode_t = shared.metrics.timer();
                let mut item = conn.take_item();
                let (request_id, fabric) =
                    match proto::decode_ingest_into(payload, &mut item.ingest) {
                        Ok(decoded) => decoded,
                        Err(_) => {
                            conn.put_item(item);
                            return fatal(shared, conn, &mut scratch, code::MALFORMED);
                        }
                    };
                item.request_id = request_id;
                item.kind = JobKind::Ingest;
                item.ingest_fabric = fabric;
                item.received = shared.metrics.timer();
                shared.metrics.observe_since(SpanId::NetDecode, decode_t);
                if fabric as usize >= shared.dims.len() {
                    let frame =
                        proto::encode_reject(&mut scratch, request_id, code::UNKNOWN_FABRIC);
                    conn.write_frame(&shared.metrics, frame);
                    conn.put_item(item);
                    continue;
                }
                let queue = &shared.queues[fabric as usize % shared.queues.len()];
                if let Err(job) =
                    queue.try_push(Job { conn: Arc::clone(conn), item }, &shared.metrics)
                {
                    shared.metrics.inc(CounterId::NetShedTotal);
                    let frame = proto::encode_reject(&mut scratch, request_id, code::OVERLOADED);
                    conn.write_frame(&shared.metrics, frame);
                    conn.put_item(job.item);
                }
            }
            Some(proto::msg::SHUTDOWN) => {
                shared.begin_shutdown();
                return;
            }
            Some(_) => return fatal(shared, conn, &mut scratch, code::UNKNOWN_TYPE),
            None => return fatal(shared, conn, &mut scratch, code::MALFORMED),
        }
    }
}

/// Wire-latency lanes, ordered as `WorkItem::lanes`.
const WIRE_LANES: [SpanId; 3] = [SpanId::NetWireNextHop, SpanId::NetWireCost, SpanId::NetWirePath];

fn worker_loop(shared: &Arc<Shared>, shard: usize, mut fabrics: Vec<ServedFabric>) {
    while let Some(job) = shared.queues[shard].pop(&shared.shutdown, &shared.paused) {
        let Job { conn, mut item } = job;
        match item.kind {
            JobKind::Query => {
                {
                    let _exec = shared.metrics.span(SpanId::NetExecute);
                    shared.frontend.execute_pinned(&mut item.batch, &mut item.out);
                }
                let encode_t = shared.metrics.timer();
                let frame = proto::encode_results(&mut item.wire, item.request_id, &item.out);
                conn.write_frame(&shared.metrics, frame);
                shared.metrics.observe_since(SpanId::NetEncode, encode_t);
                if let Some(received) = item.received.take() {
                    let ns = received.elapsed().as_nanos() as u64;
                    for (lane, span) in WIRE_LANES.into_iter().enumerate() {
                        shared.metrics.observe_n(span, ns, item.lanes[lane]);
                    }
                }
            }
            JobKind::Ingest => {
                let side = fabrics.iter_mut().find(|f| f.fabric == item.ingest_fabric);
                let frame = match side {
                    Some(side) if side.ingestable => {
                        let _exec = shared.metrics.span(SpanId::NetExecute);
                        let (epoch, applied) = side.ingest(&item.ingest);
                        shared.metrics.inc(CounterId::NetIngests);
                        proto::encode_ingest_ack(&mut item.wire, item.request_id, epoch, applied)
                    }
                    Some(_) => proto::encode_reject(
                        &mut item.wire,
                        item.request_id,
                        code::INGEST_UNSUPPORTED,
                    ),
                    None => {
                        proto::encode_reject(&mut item.wire, item.request_id, code::UNKNOWN_FABRIC)
                    }
                };
                conn.write_frame(&shared.metrics, frame);
            }
        }
        conn.put_item(item);
    }
}
