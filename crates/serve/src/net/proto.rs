//! The `etx-served` message codec: encode/decode for every frame the
//! daemon and its clients exchange.
//!
//! Every message is one frame (`uvarint(payload_len) ++ payload`);
//! `payload[0]` is the message type, client→server types in
//! `0x01..=0x7f`, server→client types in `0x80..=0xff`. The full
//! layout table lives in the README's wire-protocol section. Encoders
//! write into a caller-retained buffer and return the complete frame
//! as one slice (prefix included); decoders are total — any byte
//! sequence yields a value or a [`WireError`], never a panic — and
//! verify their own type byte, so they can be fuzzed directly.

use etx_graph::NodeId;
use etx_routing::RouteEntry;

use super::wire::{begin_frame, finish_frame, put_f64, put_uvarint, Cursor, WireError};
use crate::{Query, QueryBatch, QueryOutput, QueryResult};

/// Protocol version spoken by this build; negotiated in the
/// HELLO/HELLO_ACK handshake (the daemon rejects any other version
/// with [`code::BAD_VERSION`]).
pub const PROTOCOL_VERSION: u64 = 1;

/// The handshake magic, first bytes of every connection.
pub const MAGIC: &[u8; 4] = b"ETXQ";

/// Default cap on one frame's payload (1 MiB) — enough for a
/// ~40k-query batch, small enough that a hostile length prefix cannot
/// balloon a connection's buffer.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Message type bytes (`payload[0]`).
pub mod msg {
    /// Client → server: handshake (`MAGIC ++ uvarint version`).
    pub const HELLO: u8 = 0x01;
    /// Client → server: a batched query request.
    pub const QUERY: u8 = 0x02;
    /// Client → server: a telemetry ingestion (battery levels/deaths).
    pub const INGEST: u8 = 0x03;
    /// Client → server: stop the daemon (used by tests and the bench
    /// driver; empty payload).
    pub const SHUTDOWN: u8 = 0x04;
    /// Server → client: handshake acknowledgement with topology dims.
    pub const HELLO_ACK: u8 = 0x81;
    /// Server → client: the answers to one QUERY frame.
    pub const RESULTS: u8 = 0x82;
    /// Server → client: an INGEST was applied.
    pub const INGEST_ACK: u8 = 0x83;
    /// Server → client: one request was refused (load shed, unknown
    /// fabric, …). Non-fatal — the connection stays open.
    pub const REJECT: u8 = 0x84;
    /// Server → client: protocol violation; the connection closes
    /// after this frame.
    pub const ERROR: u8 = 0x8f;
}

/// Error codes carried by [`msg::REJECT`] and [`msg::ERROR`] frames.
pub mod code {
    /// The HELLO frame did not start with [`super::MAGIC`]. Fatal.
    pub const BAD_MAGIC: u8 = 1;
    /// The client requested an unsupported protocol version. Fatal.
    pub const BAD_VERSION: u8 = 2;
    /// A frame declared a payload past the daemon's limit. Fatal.
    pub const FRAME_TOO_LARGE: u8 = 3;
    /// A payload failed to decode. Fatal.
    pub const MALFORMED: u8 = 4;
    /// An unknown message type byte. Fatal.
    pub const UNKNOWN_TYPE: u8 = 5;
    /// The owning shard's queue was full — the request was shed, not
    /// queued. Non-fatal: back off and resend.
    pub const OVERLOADED: u8 = 6;
    /// An INGEST addressed a fabric this daemon does not serve.
    /// Non-fatal.
    pub const UNKNOWN_FABRIC: u8 = 7;
    /// An INGEST addressed a fabric whose engine configuration (a
    /// remapping policy) makes external table patching unsound.
    /// Non-fatal.
    pub const INGEST_UNSUPPORTED: u8 = 8;
}

/// Per-fabric dimensions advertised in HELLO_ACK: `None` for fabric
/// slots whose scenario sample failed to build (they answer
/// `UnknownFabric`), `Some((nodes, modules))` otherwise.
pub type FabricDims = Vec<Option<(u32, u32)>>;

/// One decoded server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// [`msg::HELLO_ACK`].
    HelloAck {
        /// Negotiated protocol version.
        version: u64,
        /// The shard this connection's queries execute on.
        shard: u32,
        /// Total shard (worker-thread) count.
        shard_count: u32,
        /// Per-fabric `(nodes, modules)` dimensions.
        fabrics: FabricDims,
    },
    /// [`msg::RESULTS`] — the payload itself is decoded separately
    /// into a [`QueryOutput`] via [`decode_results_into`].
    Results {
        /// Echo of the request id.
        request_id: u64,
    },
    /// [`msg::INGEST_ACK`].
    IngestAck {
        /// Echo of the request id.
        request_id: u64,
        /// The fabric's table epoch after the ingest.
        epoch: u64,
        /// How many of the items actually changed node state.
        applied: u64,
    },
    /// [`msg::REJECT`].
    Reject {
        /// Echo of the request id.
        request_id: u64,
        /// Why — one of the [`code`] constants.
        code: u8,
    },
    /// [`msg::ERROR`] — the server closes after sending this.
    Error {
        /// Why — one of the [`code`] constants.
        code: u8,
    },
}

// ---------------------------------------------------------------- encode

/// Encodes the client HELLO.
pub fn encode_hello(buf: &mut Vec<u8>) -> &[u8] {
    begin_frame(buf);
    buf.push(msg::HELLO);
    buf.extend_from_slice(MAGIC);
    put_uvarint(buf, PROTOCOL_VERSION);
    finish_frame(buf)
}

/// Encodes the server HELLO_ACK.
pub fn encode_hello_ack<'a>(
    buf: &'a mut Vec<u8>,
    shard: u32,
    shard_count: u32,
    fabrics: &[Option<(u32, u32)>],
) -> &'a [u8] {
    begin_frame(buf);
    buf.push(msg::HELLO_ACK);
    put_uvarint(buf, PROTOCOL_VERSION);
    put_uvarint(buf, u64::from(shard));
    put_uvarint(buf, u64::from(shard_count));
    put_uvarint(buf, fabrics.len() as u64);
    for dims in fabrics {
        match dims {
            Some((nodes, modules)) => {
                buf.push(1);
                put_uvarint(buf, u64::from(*nodes));
                put_uvarint(buf, u64::from(*modules));
            }
            None => buf.push(0),
        }
    }
    finish_frame(buf)
}

/// Per-query tag bytes inside a QUERY payload.
const Q_NEXT_HOP: u8 = 0;
const Q_PATH: u8 = 1;
const Q_COST: u8 = 2;

/// Encodes a QUERY frame carrying `queries` under `request_id`.
pub fn encode_query<'a>(buf: &'a mut Vec<u8>, request_id: u64, queries: &[Query]) -> &'a [u8] {
    begin_frame(buf);
    buf.push(msg::QUERY);
    put_uvarint(buf, request_id);
    put_uvarint(buf, queries.len() as u64);
    for q in queries {
        match *q {
            Query::NextHop { fabric, source, module } => {
                buf.push(Q_NEXT_HOP);
                put_uvarint(buf, u64::from(fabric));
                put_uvarint(buf, source.index() as u64);
                put_uvarint(buf, u64::from(module));
            }
            Query::Path { fabric, source, module } => {
                buf.push(Q_PATH);
                put_uvarint(buf, u64::from(fabric));
                put_uvarint(buf, source.index() as u64);
                put_uvarint(buf, u64::from(module));
            }
            Query::Cost { fabric, source, target } => {
                buf.push(Q_COST);
                put_uvarint(buf, u64::from(fabric));
                put_uvarint(buf, source.index() as u64);
                put_uvarint(buf, target.index() as u64);
            }
        }
    }
    finish_frame(buf)
}

/// Encodes an INGEST frame: `(node, level)` updates for one fabric.
/// Level `0` reports the node dead; level `k > 0` reports battery
/// level `k - 1` (reviving the node if it was dead).
pub fn encode_ingest<'a>(
    buf: &'a mut Vec<u8>,
    request_id: u64,
    fabric: u32,
    items: &[(u32, u32)],
) -> &'a [u8] {
    begin_frame(buf);
    buf.push(msg::INGEST);
    put_uvarint(buf, request_id);
    put_uvarint(buf, u64::from(fabric));
    put_uvarint(buf, items.len() as u64);
    for &(node, level) in items {
        put_uvarint(buf, u64::from(node));
        put_uvarint(buf, u64::from(level));
    }
    finish_frame(buf)
}

/// Encodes the SHUTDOWN frame.
pub fn encode_shutdown(buf: &mut Vec<u8>) -> &[u8] {
    begin_frame(buf);
    buf.push(msg::SHUTDOWN);
    finish_frame(buf)
}

/// Per-result tag bytes inside a RESULTS payload.
const R_NEXT_HOP_NONE: u8 = 0;
const R_NEXT_HOP_SOME: u8 = 1;
const R_PATH_NONE: u8 = 2;
const R_PATH_SOME: u8 = 3;
const R_COST_NONE: u8 = 4;
const R_COST_SOME: u8 = 5;
const R_UNKNOWN_FABRIC: u8 = 6;

fn put_entry(buf: &mut Vec<u8>, entry: &RouteEntry) {
    put_uvarint(buf, entry.destination.index() as u64);
    put_uvarint(buf, entry.next_hop.index() as u64);
    put_f64(buf, entry.distance);
}

/// Encodes a RESULTS frame answering one QUERY, in submission order.
/// Path node sequences are inlined from the output's arena.
pub fn encode_results<'a>(buf: &'a mut Vec<u8>, request_id: u64, out: &QueryOutput) -> &'a [u8] {
    begin_frame(buf);
    buf.push(msg::RESULTS);
    put_uvarint(buf, request_id);
    put_uvarint(buf, out.results().len() as u64);
    for result in out.results() {
        match result {
            QueryResult::NextHop(None) => buf.push(R_NEXT_HOP_NONE),
            QueryResult::NextHop(Some(entry)) => {
                buf.push(R_NEXT_HOP_SOME);
                put_entry(buf, entry);
            }
            QueryResult::Path { entry: None, .. } => buf.push(R_PATH_NONE),
            QueryResult::Path { entry: Some(entry), .. } => {
                buf.push(R_PATH_SOME);
                put_entry(buf, entry);
                let nodes = out.path_nodes(result);
                put_uvarint(buf, nodes.len() as u64);
                for node in nodes {
                    put_uvarint(buf, node.index() as u64);
                }
            }
            QueryResult::Cost(None) => buf.push(R_COST_NONE),
            QueryResult::Cost(Some(cost)) => {
                buf.push(R_COST_SOME);
                put_f64(buf, *cost);
            }
            QueryResult::UnknownFabric => buf.push(R_UNKNOWN_FABRIC),
        }
    }
    finish_frame(buf)
}

/// Encodes an INGEST_ACK.
pub fn encode_ingest_ack(buf: &mut Vec<u8>, request_id: u64, epoch: u64, applied: u64) -> &[u8] {
    begin_frame(buf);
    buf.push(msg::INGEST_ACK);
    put_uvarint(buf, request_id);
    put_uvarint(buf, epoch);
    put_uvarint(buf, applied);
    finish_frame(buf)
}

/// Encodes a non-fatal REJECT for one request.
pub fn encode_reject(buf: &mut Vec<u8>, request_id: u64, code: u8) -> &[u8] {
    begin_frame(buf);
    buf.push(msg::REJECT);
    put_uvarint(buf, request_id);
    buf.push(code);
    finish_frame(buf)
}

/// Encodes a fatal ERROR frame.
pub fn encode_error(buf: &mut Vec<u8>, code: u8) -> &[u8] {
    begin_frame(buf);
    buf.push(msg::ERROR);
    buf.push(code);
    finish_frame(buf)
}

// ---------------------------------------------------------------- decode

/// Validates a HELLO payload. Returns the client's protocol version;
/// the error is the wire error code to answer with
/// ([`code::BAD_MAGIC`] or [`code::MALFORMED`]).
pub fn decode_hello(payload: &[u8]) -> Result<u64, u8> {
    let mut c = Cursor::new(payload);
    if c.take_u8() != Ok(msg::HELLO) {
        return Err(code::MALFORMED);
    }
    match c.take_bytes(4) {
        Ok(magic) if magic == MAGIC => {}
        _ => return Err(code::BAD_MAGIC),
    }
    let version = c.take_uvarint().map_err(|_| code::MALFORMED)?;
    if !c.is_empty() {
        return Err(code::MALFORMED);
    }
    Ok(version)
}

fn take_u32(c: &mut Cursor<'_>) -> Result<u32, WireError> {
    u32::try_from(c.take_uvarint()?).map_err(|_| WireError::Malformed)
}

/// A fabric/node/module index bound: decoded ids above this are
/// malformed by construction (no deployment approaches 2^24 nodes),
/// which keeps hostile ids from turning into huge `NodeId` values.
const MAX_INDEX: u64 = 1 << 24;

fn take_index(c: &mut Cursor<'_>) -> Result<u32, WireError> {
    let v = c.take_uvarint()?;
    if v >= MAX_INDEX {
        return Err(WireError::Malformed);
    }
    Ok(v as u32)
}

/// Decodes a QUERY payload into `batch` (cleared first). Returns the
/// request id.
///
/// # Errors
///
/// Any truncation, overflow, bad tag or out-of-range index.
pub fn decode_query_into(payload: &[u8], batch: &mut QueryBatch) -> Result<u64, WireError> {
    batch.clear();
    let mut c = Cursor::new(payload);
    if c.take_u8()? != msg::QUERY {
        return Err(WireError::Malformed);
    }
    let request_id = c.take_uvarint()?;
    let count = c.take_uvarint()?;
    // Each query is at least 4 bytes on the wire, so a count the
    // payload cannot possibly hold is rejected before reserving.
    if count.saturating_mul(4) > payload.len() as u64 {
        return Err(WireError::Malformed);
    }
    for _ in 0..count {
        let tag = c.take_u8()?;
        let fabric = take_index(&mut c)?;
        let source = NodeId::new(take_index(&mut c)? as usize);
        let query = match tag {
            Q_NEXT_HOP => Query::NextHop { fabric, source, module: take_index(&mut c)? },
            Q_PATH => Query::Path { fabric, source, module: take_index(&mut c)? },
            Q_COST => {
                Query::Cost { fabric, source, target: NodeId::new(take_index(&mut c)? as usize) }
            }
            _ => return Err(WireError::Malformed),
        };
        batch.push(query);
    }
    if !c.is_empty() {
        return Err(WireError::Malformed);
    }
    Ok(request_id)
}

/// Decodes an INGEST payload into `items` (cleared first). Returns
/// `(request_id, fabric)`.
///
/// # Errors
///
/// Any truncation, overflow or out-of-range index.
pub fn decode_ingest_into(
    payload: &[u8],
    items: &mut Vec<(u32, u32)>,
) -> Result<(u64, u32), WireError> {
    items.clear();
    let mut c = Cursor::new(payload);
    if c.take_u8()? != msg::INGEST {
        return Err(WireError::Malformed);
    }
    let request_id = c.take_uvarint()?;
    let fabric = take_index(&mut c)?;
    let count = c.take_uvarint()?;
    if count.saturating_mul(2) > payload.len() as u64 {
        return Err(WireError::Malformed);
    }
    for _ in 0..count {
        let node = take_index(&mut c)?;
        let level = take_u32(&mut c)?;
        items.push((node, level));
    }
    if !c.is_empty() {
        return Err(WireError::Malformed);
    }
    Ok((request_id, fabric))
}

/// Decodes a RESULTS payload into `out` (reset first). Returns the
/// request id. Path node sequences land in the output's arena, so
/// [`QueryOutput::path_nodes`] works on the decoded results exactly
/// as on locally executed ones.
///
/// # Errors
///
/// Any truncation, overflow, bad tag or impossible count.
pub fn decode_results_into(payload: &[u8], out: &mut QueryOutput) -> Result<u64, WireError> {
    let mut c = Cursor::new(payload);
    if c.take_u8()? != msg::RESULTS {
        return Err(WireError::Malformed);
    }
    let request_id = c.take_uvarint()?;
    let count = c.take_uvarint()?;
    if count > payload.len() as u64 {
        return Err(WireError::Malformed);
    }
    out.reset(count as usize);
    for i in 0..count as usize {
        let tag = c.take_u8()?;
        let result = match tag {
            R_NEXT_HOP_NONE => QueryResult::NextHop(None),
            R_NEXT_HOP_SOME => QueryResult::NextHop(Some(take_entry(&mut c)?)),
            R_PATH_NONE => QueryResult::Path { entry: None, nodes: (0, 0) },
            R_PATH_SOME => {
                let entry = take_entry(&mut c)?;
                let len = c.take_uvarint()?;
                if len > payload.len() as u64 {
                    return Err(WireError::Malformed);
                }
                let arena = out.arena_mut();
                let start = arena.len() as u32;
                for _ in 0..len {
                    let node = take_index(&mut c)?;
                    arena.push(NodeId::new(node as usize));
                }
                let end = arena.len() as u32;
                QueryResult::Path { entry: Some(entry), nodes: (start, end) }
            }
            R_COST_NONE => QueryResult::Cost(None),
            R_COST_SOME => QueryResult::Cost(Some(c.take_f64()?)),
            R_UNKNOWN_FABRIC => QueryResult::UnknownFabric,
            _ => return Err(WireError::Malformed),
        };
        out.set(i, result);
    }
    if !c.is_empty() {
        return Err(WireError::Malformed);
    }
    Ok(request_id)
}

fn take_entry(c: &mut Cursor<'_>) -> Result<RouteEntry, WireError> {
    let destination = NodeId::new(take_index(c)? as usize);
    let next_hop = NodeId::new(take_index(c)? as usize);
    let distance = c.take_f64()?;
    Ok(RouteEntry { destination, next_hop, distance })
}

/// Decodes any server→client payload into a [`Reply`]. RESULTS
/// payloads report only the request id here — decode the body with
/// [`decode_results_into`].
///
/// # Errors
///
/// Any truncation, overflow or unknown type byte.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let mut c = Cursor::new(payload);
    match c.take_u8()? {
        msg::HELLO_ACK => {
            let version = c.take_uvarint()?;
            let shard = take_u32(&mut c)?;
            let shard_count = take_u32(&mut c)?;
            let count = c.take_uvarint()?;
            if count > payload.len() as u64 {
                return Err(WireError::Malformed);
            }
            let mut fabrics = Vec::with_capacity(count as usize);
            for _ in 0..count {
                match c.take_u8()? {
                    0 => fabrics.push(None),
                    1 => {
                        let nodes = take_u32(&mut c)?;
                        let modules = take_u32(&mut c)?;
                        fabrics.push(Some((nodes, modules)));
                    }
                    _ => return Err(WireError::Malformed),
                }
            }
            Ok(Reply::HelloAck { version, shard, shard_count, fabrics })
        }
        msg::RESULTS => {
            let request_id = c.take_uvarint()?;
            Ok(Reply::Results { request_id })
        }
        msg::INGEST_ACK => {
            let request_id = c.take_uvarint()?;
            let epoch = c.take_uvarint()?;
            let applied = c.take_uvarint()?;
            Ok(Reply::IngestAck { request_id, epoch, applied })
        }
        msg::REJECT => {
            let request_id = c.take_uvarint()?;
            let code = c.take_u8()?;
            Ok(Reply::Reject { request_id, code })
        }
        msg::ERROR => {
            let code = c.take_u8()?;
            Ok(Reply::Error { code })
        }
        _ => Err(WireError::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_frames_round_trip() {
        let queries = [
            Query::NextHop { fabric: 3, source: NodeId::new(7), module: 2 },
            Query::Path { fabric: 0, source: NodeId::new(0), module: 0 },
            Query::Cost { fabric: 1_000, source: NodeId::new(63), target: NodeId::new(1) },
        ];
        let mut buf = Vec::new();
        let frame = encode_query(&mut buf, 42, &queries);
        // Strip the length prefix the same way the daemon does.
        let mut c = Cursor::new(frame);
        let len = c.take_uvarint().unwrap() as usize;
        let payload = c.take_bytes(len).unwrap();
        let mut batch = QueryBatch::new();
        assert_eq!(decode_query_into(payload, &mut batch), Ok(42));
        assert_eq!(batch.queries(), &queries);
    }

    #[test]
    fn results_frames_round_trip_including_paths() {
        let mut out = QueryOutput::new();
        out.reset(5);
        let entry =
            RouteEntry { destination: NodeId::new(9), next_hop: NodeId::new(4), distance: 2.625 };
        out.set(0, QueryResult::NextHop(Some(entry)));
        out.set(1, QueryResult::NextHop(None));
        out.arena_mut().extend([NodeId::new(1), NodeId::new(4), NodeId::new(9)]);
        out.set(2, QueryResult::Path { entry: Some(entry), nodes: (0, 3) });
        out.set(3, QueryResult::Cost(Some(0.125)));
        out.set(4, QueryResult::UnknownFabric);

        let mut buf = Vec::new();
        let frame = encode_results(&mut buf, 7, &out);
        let mut c = Cursor::new(frame);
        let len = c.take_uvarint().unwrap() as usize;
        let payload = c.take_bytes(len).unwrap();

        let mut decoded = QueryOutput::new();
        assert_eq!(decode_results_into(payload, &mut decoded), Ok(7));
        assert_eq!(decoded.results(), out.results());
        assert_eq!(decoded.path_nodes(&decoded.results()[2]), out.path_nodes(&out.results()[2]));
    }

    #[test]
    fn hello_and_control_frames_round_trip() {
        let mut buf = Vec::new();
        let frame = encode_hello(&mut buf).to_vec();
        assert_eq!(decode_hello(&frame[1..]), Ok(PROTOCOL_VERSION));
        let mut bad = frame[1..].to_vec();
        bad[1] = b'x';
        assert_eq!(decode_hello(&bad), Err(code::BAD_MAGIC));

        let fabrics = vec![Some((64, 5)), None, Some((16, 1))];
        let ack = encode_hello_ack(&mut buf, 2, 4, &fabrics).to_vec();
        let reply = decode_reply(&ack[1..]).unwrap();
        assert_eq!(
            reply,
            Reply::HelloAck { version: PROTOCOL_VERSION, shard: 2, shard_count: 4, fabrics }
        );

        let rej = encode_reject(&mut buf, 13, code::OVERLOADED).to_vec();
        assert_eq!(decode_reply(&rej[1..]), Ok(Reply::Reject { request_id: 13, code: 6 }));
        let err = encode_error(&mut buf, code::UNKNOWN_TYPE).to_vec();
        assert_eq!(decode_reply(&err[1..]), Ok(Reply::Error { code: 5 }));
        let ia = encode_ingest_ack(&mut buf, 9, 17, 3).to_vec();
        assert_eq!(
            decode_reply(&ia[1..]),
            Ok(Reply::IngestAck { request_id: 9, epoch: 17, applied: 3 })
        );
    }

    #[test]
    fn ingest_frames_round_trip() {
        let mut buf = Vec::new();
        let items = [(4u32, 0u32), (9, 13), (0, 1)];
        let frame = encode_ingest(&mut buf, 5, 2, &items).to_vec();
        let mut decoded = Vec::new();
        assert_eq!(decode_ingest_into(&frame[1..], &mut decoded), Ok((5, 2)));
        assert_eq!(decoded, items);
    }

    #[test]
    fn decoders_reject_impossible_counts_and_trailing_bytes() {
        let mut buf = Vec::new();
        let mut batch = QueryBatch::new();
        // A declared count far past what the payload could hold.
        let mut payload = vec![msg::QUERY, 0];
        put_uvarint(&mut payload, 1 << 40);
        assert_eq!(decode_query_into(&payload, &mut batch), Err(WireError::Malformed));
        // Trailing garbage after a valid body.
        let frame = encode_query(&mut buf, 1, &[]).to_vec();
        let mut padded = frame[1..].to_vec();
        padded.push(0xff);
        assert_eq!(decode_query_into(&padded, &mut batch), Err(WireError::Malformed));
        // Absurd index.
        let mut payload = vec![msg::QUERY, 0, 1, Q_NEXT_HOP];
        put_uvarint(&mut payload, 1 << 30);
        put_uvarint(&mut payload, 0);
        put_uvarint(&mut payload, 0);
        assert_eq!(decode_query_into(&payload, &mut batch), Err(WireError::Malformed));
    }
}
