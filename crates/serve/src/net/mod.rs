//! `etx-served`: the query service over TCP.
//!
//! Everything below this module is in-process; this module puts the
//! [`FleetFrontend`](crate::FleetFrontend) behind a socket without
//! giving up its properties:
//!
//! * [`proto`] — a compact length-prefixed binary protocol (LEB128
//!   framing, one type byte per message) for batched NextHop / Path /
//!   Cost queries, telemetry ingestion and control frames;
//! * [`Served`] — the thread-per-core daemon: connections are pinned
//!   to shards at accept, each shard's worker executes its
//!   connections' batches (and owns the write side of its fabrics),
//!   and bounded per-shard queues shed load with explicit OVERLOADED
//!   rejections instead of queueing without bound;
//! * [`RouteClient`] / [`run_wire_load`] — the client half plus the
//!   loopback load driver whose latency attribution mirrors the
//!   in-process [`run_load`](crate::run_load), so the wire tax is a
//!   direct histogram-to-histogram comparison.
//!
//! Answers over the wire are byte-identical to
//! [`FleetFrontend::execute`](crate::FleetFrontend::execute) on the
//! same spec and epoch — CI diffs the two — and the warm per-request
//! path on both sides performs zero heap allocations.

pub mod client;
pub mod daemon;
pub mod proto;
pub mod wire;

pub use client::{run_wire_load, NetError, Response, ResponseKind, RouteClient, WireLoadReport};
pub use daemon::{Served, ServedConfig};
pub use wire::{FrameReader, RecvError, WireError};
