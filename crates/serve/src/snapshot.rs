//! [`TableSnapshot`]: one immutable, epoch-numbered copy of a fabric's
//! routing tables.

use etx_graph::{Matrix, NodeId};
use etx_routing::{RouteEntry, RoutingState};

/// An immutable copy of everything a query needs from one controller
/// invocation: the phase-3 per-(node, module) route table, plus the
/// phase-2 distance and successor matrices for full-path and path-cost
/// queries.
///
/// Snapshots are **byte-identical** to the [`RoutingState`] they were
/// filled from (same flat table entries, same matrices), numbered by a
/// monotonically increasing epoch, and never mutated after publication —
/// a reader holding one can answer queries indefinitely without
/// observing a half-rebuilt table, no matter how many recomputes the
/// writer publishes on top.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    epoch: u64,
    modules: usize,
    dist: Matrix<f64>,
    succ: Matrix<Option<NodeId>>,
    table: Vec<Option<RouteEntry>>,
}

impl Default for TableSnapshot {
    fn default() -> Self {
        TableSnapshot::empty()
    }
}

impl TableSnapshot {
    /// An empty (epoch-0, zero-node) snapshot; fill it through
    /// [`TableSnapshot::fill_from`] (or a publisher) before use.
    #[must_use]
    pub fn empty() -> Self {
        TableSnapshot {
            epoch: 0,
            modules: 0,
            dist: Matrix::default(),
            succ: Matrix::default(),
            table: Vec::new(),
        }
    }

    /// Overwrites this snapshot with a copy of `routing`'s tables at
    /// `epoch`, reusing every buffer — refills on warmed snapshots of
    /// unchanged dimensions perform no heap allocation.
    pub fn fill_from(&mut self, epoch: u64, routing: &RoutingState) {
        self.epoch = epoch;
        self.modules = routing.module_count();
        self.dist.copy_from(routing.paths().distances());
        self.succ.copy_from(routing.paths().successors());
        self.table.clear();
        self.table.extend_from_slice(routing.route_table());
    }

    /// The epoch this snapshot was published at (0 = never filled).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dist.rows()
    }

    /// Number of modules covered.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules
    }

    /// The flat phase-3 table (`node * module_count + module`), for
    /// byte-identity checks against the producing router.
    #[must_use]
    pub fn route_table(&self) -> &[Option<RouteEntry>] {
        &self.table
    }

    /// Point lookup: the routing-table entry for packets originating at
    /// `node` whose next operation belongs to `module`; `None` when no
    /// live duplicate is reachable (or `node`/`module` is unknown).
    #[must_use]
    pub fn route(&self, node: NodeId, module: usize) -> Option<&RouteEntry> {
        if module >= self.modules || node.index() >= self.node_count() {
            return None;
        }
        self.table.get(node.index() * self.modules + module)?.as_ref()
    }

    /// The relay decision: the next hop out of `from` toward `to`, from
    /// the phase-2 successor matrix (`Some(to)` when `from == to`).
    #[must_use]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let n = self.node_count();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        if from == to {
            Some(to)
        } else {
            self.succ[(from, to)]
        }
    }

    /// The phase-2 (battery-weighted under EAR) path cost between two
    /// nodes; `None` when unreachable or out of range.
    #[must_use]
    pub fn cost(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let n = self.node_count();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        let d = self.dist[(from, to)];
        d.is_finite().then_some(d)
    }

    /// Full-path materialization: resolves `node`'s table entry for
    /// `module` and appends the complete node sequence (both endpoints
    /// included; `[node]` when self-hosted) to `out`. The entry's first
    /// hop is honoured even when it detours off the successor chain (a
    /// deadlock redirect), with the remainder walked through the
    /// successor matrix. Returns the resolved entry, or `None` (with
    /// `out` untouched) when no route exists or the walk does not
    /// terminate (corrupt snapshot; defensive guard).
    pub fn path_into(
        &self,
        node: NodeId,
        module: usize,
        out: &mut Vec<NodeId>,
    ) -> Option<RouteEntry> {
        let entry = *self.route(node, module)?;
        let start = out.len();
        out.push(node);
        if entry.destination != node {
            let mut cur = entry.next_hop;
            out.push(cur);
            let mut hops = 1usize;
            while cur != entry.destination {
                let Some(next) = self.next_hop(cur, entry.destination) else {
                    out.truncate(start);
                    return None;
                };
                cur = next;
                out.push(cur);
                hops += 1;
                if hops > self.node_count() {
                    out.truncate(start);
                    return None;
                }
            }
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology;
    use etx_routing::{Algorithm, Router, SystemReport};
    use etx_units::Length;

    fn ring_state(k: usize) -> RoutingState {
        let graph = topology::ring(k, Length::from_centimetres(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(k / 2)]];
        let report = SystemReport::fresh(k, 16);
        Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None)
    }

    #[test]
    fn snapshot_mirrors_routing_state() {
        let state = ring_state(6);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(7, &state);
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.node_count(), 6);
        assert_eq!(snap.module_count(), 1);
        assert_eq!(snap.route_table(), state.route_table());
        for i in 0..6 {
            let node = NodeId::new(i);
            assert_eq!(snap.route(node, 0), state.route(node, 0));
            for j in 0..6 {
                let other = NodeId::new(j);
                assert_eq!(snap.cost(node, other), state.distance(node, other));
                assert_eq!(snap.next_hop(node, other), state.next_hop(node, other));
            }
        }
    }

    #[test]
    fn refill_reuses_buffers_and_replaces_content() {
        let a = ring_state(6);
        let b = ring_state(8);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &a);
        snap.fill_from(2, &b);
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.node_count(), 8);
        assert_eq!(snap.route_table(), b.route_table());
    }

    #[test]
    fn path_walks_to_the_chosen_duplicate() {
        let state = ring_state(6);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &state);
        let mut path = Vec::new();
        let entry = snap.path_into(NodeId::new(1), 0, &mut path).expect("route exists");
        assert_eq!(path.first(), Some(&NodeId::new(1)));
        assert_eq!(path.last(), Some(&entry.destination));
        assert_eq!(path[1], entry.next_hop);
        // Self-hosted: single-node path.
        path.clear();
        let own = snap.path_into(NodeId::new(0), 0, &mut path).expect("self route");
        assert_eq!(own.destination, NodeId::new(0));
        assert_eq!(path, vec![NodeId::new(0)]);
    }

    #[test]
    fn out_of_range_queries_are_none() {
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &ring_state(4));
        assert!(snap.route(NodeId::new(9), 0).is_none());
        assert!(snap.route(NodeId::new(0), 9).is_none());
        assert!(snap.cost(NodeId::new(0), NodeId::new(9)).is_none());
        assert!(snap.next_hop(NodeId::new(9), NodeId::new(0)).is_none());
        let mut path = Vec::new();
        assert!(snap.path_into(NodeId::new(9), 0, &mut path).is_none());
        assert!(path.is_empty());
    }
}
