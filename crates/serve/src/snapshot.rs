//! [`TableSnapshot`]: one immutable, epoch-numbered copy of a fabric's
//! routing tables, repacked as struct-of-arrays planes.
//!
//! # Plane layout
//!
//! The producing [`RoutingState`] is array-of-structs: a flat
//! `Vec<Option<RouteEntry>>` whose 32-byte elements interleave
//! destination, first hop and distance — every lookup drags all of them
//! (plus `Option` padding) through cache. A snapshot splits that table
//! into four parallel planes, indexed by the same flat position
//! `node * module_count + module`:
//!
//! ```text
//! AoS  table[flat] : [ dest | next_hop | distance | Option pad ]  32 B
//!                              ⇣ fill_from (one pass, in place)
//! SoA  dest      u16 ┆ u16 ┆ u16 ┆ …   (sentinel = no route)      2 B/entry
//!      next_hop  u16 ┆ u16 ┆ u16 ┆ …                              2 B/entry
//!      distance  f64 ┆ f64 ┆ f64 ┆ …   (0.0 where invalid)        8 B/entry
//!      valid     word-packed bitset                               1 bit/entry
//! ```
//!
//! The phase-2 matrices split the same way: distances stay one
//! contiguous `f64` plane (cost queries touch nothing else) and the
//! successor matrix becomes an [`IndexPlane`] (path walks touch nothing
//! else). Index planes are `u16`-compacted whenever the node count
//! allows (every current workload) and fall back to `u32` lanes past
//! [`IndexPlane::NARROW_BOUND`]; batched execution monomorphizes its
//! gather loops per width.

use etx_graph::{IndexPlane, Matrix, NodeId, PlaneIdx};
use etx_routing::{RouteEntry, RouteTablePlanes, RoutingState};

/// An immutable copy of everything a query needs from one controller
/// invocation: the phase-3 per-(node, module) route table and the
/// phase-2 distance/successor data, stored as struct-of-arrays planes
/// (see the module docs for the layout).
///
/// Snapshots reconstruct **byte-identical** [`RouteEntry`] values to
/// the [`RoutingState`] they were filled from, are numbered by a
/// monotonically increasing epoch, and are never mutated after
/// publication — a reader holding one can answer queries indefinitely
/// without observing a half-rebuilt table, no matter how many
/// recomputes the writer publishes on top.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    epoch: u64,
    modules: usize,
    nodes: usize,
    /// Phase-2 distance plane (`n x n`, row-major; `+inf` = unreachable).
    dist: Matrix<f64>,
    /// Phase-2 successor plane (`n * n`, sentinel = no successor).
    succ: IndexPlane,
    /// Phase-3 table planes (`n * modules` flat positions).
    table: RouteTablePlanes,
}

impl Default for TableSnapshot {
    fn default() -> Self {
        TableSnapshot::empty()
    }
}

impl TableSnapshot {
    /// An empty (epoch-0, zero-node) snapshot; fill it through
    /// [`TableSnapshot::fill_from`] (or a publisher) before use.
    #[must_use]
    pub fn empty() -> Self {
        TableSnapshot {
            epoch: 0,
            modules: 0,
            nodes: 0,
            dist: Matrix::default(),
            succ: IndexPlane::new(),
            table: RouteTablePlanes::new(),
        }
    }

    /// Overwrites this snapshot with `routing`'s tables at `epoch`,
    /// compacted into planes in one pass over each source buffer. Every
    /// plane is refilled in place — refills on warmed snapshots of
    /// unchanged dimensions perform no heap allocation.
    pub fn fill_from(&mut self, epoch: u64, routing: &RoutingState) {
        self.fill_from_bounded(epoch, routing, routing.node_count());
    }

    /// [`TableSnapshot::fill_from`] with an explicit index bound (the
    /// exclusive upper bound of node indices the planes must represent).
    /// The bound decides the index-plane lane width: bounds past
    /// [`IndexPlane::NARROW_BOUND`] select the wide (`u32`) fallback —
    /// which is how the `node_count > u16::MAX` regime is exercised
    /// without materializing a 65k-node system.
    ///
    /// # Panics
    ///
    /// Panics if `index_bound` is smaller than `routing`'s node count.
    pub fn fill_from_bounded(&mut self, epoch: u64, routing: &RoutingState, index_bound: usize) {
        let n = routing.node_count();
        assert!(index_bound >= n, "index bound {index_bound} below node count {n}");
        self.epoch = epoch;
        self.modules = routing.module_count();
        self.nodes = n;
        self.dist.copy_from(routing.paths().distances());
        let succ = routing.paths().successors().as_slice();
        self.succ.fill_with(succ.len(), index_bound, |i| succ[i].map(NodeId::index));
        self.table.fill_from_table(routing.route_table(), index_bound);
    }

    /// The epoch this snapshot was published at (0 = never filled).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of modules covered.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules
    }

    /// The phase-3 table planes — the storage batched execution gathers
    /// from directly.
    #[must_use]
    pub fn table_planes(&self) -> &RouteTablePlanes {
        &self.table
    }

    /// The phase-2 distance plane, row-major (`from * n + to`).
    #[must_use]
    pub fn dist_plane(&self) -> &[f64] {
        self.dist.as_slice()
    }

    /// The phase-2 successor plane, row-major (`from * n + to`).
    #[must_use]
    pub fn succ_plane(&self) -> &IndexPlane {
        &self.succ
    }

    /// `true` when the index planes run wide (`u32`) lanes — the
    /// `node_count > u16::MAX` fallback regime.
    #[must_use]
    pub fn wide_index_planes(&self) -> bool {
        self.succ.is_wide()
    }

    /// Reconstructs the `Option<RouteEntry>` at flat table position
    /// `flat` (`node * module_count + module`) — byte-identical to the
    /// producing router's entry; `None` out of range.
    #[must_use]
    pub fn entry(&self, flat: usize) -> Option<RouteEntry> {
        self.table.entry(flat)
    }

    /// Iterates every flat table position's reconstructed entry, in
    /// flat order — the byte-identity oracle against
    /// [`RoutingState::route_table`].
    pub fn entries(&self) -> impl Iterator<Item = Option<RouteEntry>> + '_ {
        (0..self.table.len()).map(|flat| self.table.entry(flat))
    }

    /// Point lookup: the routing-table entry for packets originating at
    /// `node` whose next operation belongs to `module`; `None` when no
    /// live duplicate is reachable (or `node`/`module` is unknown).
    #[must_use]
    pub fn route(&self, node: NodeId, module: usize) -> Option<RouteEntry> {
        if module >= self.modules || node.index() >= self.nodes {
            return None;
        }
        self.table.entry(node.index() * self.modules + module)
    }

    /// The relay decision: the next hop out of `from` toward `to`, from
    /// the phase-2 successor plane (`Some(to)` when `from == to`).
    #[must_use]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let n = self.nodes;
        if from.index() >= n || to.index() >= n {
            return None;
        }
        if from == to {
            Some(to)
        } else {
            self.succ.get(from.index() * n + to.index()).map(NodeId::new)
        }
    }

    /// The phase-2 (battery-weighted under EAR) path cost between two
    /// nodes; `None` when unreachable or out of range.
    #[must_use]
    pub fn cost(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let n = self.nodes;
        if from.index() >= n || to.index() >= n {
            return None;
        }
        let d = self.dist.as_slice()[from.index() * n + to.index()];
        d.is_finite().then_some(d)
    }

    /// Full-path materialization: resolves `node`'s table entry for
    /// `module` and appends the complete node sequence (both endpoints
    /// included; `[node]` when self-hosted) to `out`. The entry's first
    /// hop is honoured even when it detours off the successor chain (a
    /// deadlock redirect), with the remainder walked through the
    /// successor plane. Returns the resolved entry, or `None` (with
    /// `out` untouched) when no route exists or the walk does not
    /// terminate (corrupt snapshot; defensive guard).
    pub fn path_into(
        &self,
        node: NodeId,
        module: usize,
        out: &mut Vec<NodeId>,
    ) -> Option<RouteEntry> {
        let entry = self.route(node, module)?;
        // Dispatch on the plane width once; the walk itself runs over
        // the bare lane slice (no per-hop enum dispatch).
        let walked = match self.succ.narrow() {
            Some(succ) => self.walk_into(succ, node, &entry, out),
            None => self.walk_into(
                self.succ.wide().expect("plane is narrow or wide"),
                node,
                &entry,
                out,
            ),
        };
        walked.then_some(entry)
    }

    /// The successor-chain walk of [`TableSnapshot::path_into`],
    /// monomorphized per lane width. Returns `false` (with `out`
    /// restored) when the chain breaks or fails to terminate.
    fn walk_into<I: PlaneIdx>(
        &self,
        succ: &[I],
        node: NodeId,
        entry: &RouteEntry,
        out: &mut Vec<NodeId>,
    ) -> bool {
        let start = out.len();
        out.push(node);
        if entry.destination != node {
            let n = self.nodes;
            let dest = entry.destination.index();
            let mut cur = entry.next_hop;
            out.push(cur);
            let mut hops = 1usize;
            while cur != entry.destination {
                if cur.index() >= n {
                    out.truncate(start);
                    return false;
                }
                let next = succ[cur.index() * n + dest];
                if next == I::SENTINEL {
                    out.truncate(start);
                    return false;
                }
                cur = NodeId::new(next.expand());
                out.push(cur);
                hops += 1;
                if hops > n {
                    out.truncate(start);
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology;
    use etx_routing::{Algorithm, Router, SystemReport};
    use etx_units::Length;

    fn ring_state(k: usize) -> RoutingState {
        let graph = topology::ring(k, Length::from_centimetres(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(k / 2)]];
        let report = SystemReport::fresh(k, 16);
        Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None)
    }

    #[test]
    fn snapshot_mirrors_routing_state() {
        let state = ring_state(6);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(7, &state);
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.node_count(), 6);
        assert_eq!(snap.module_count(), 1);
        assert!(!snap.wide_index_planes(), "6 nodes compact to u16 lanes");
        assert!(snap.entries().eq(state.route_table().iter().copied()));
        for i in 0..6 {
            let node = NodeId::new(i);
            assert_eq!(snap.route(node, 0), state.route(node, 0).copied());
            for j in 0..6 {
                let other = NodeId::new(j);
                assert_eq!(snap.cost(node, other), state.distance(node, other));
                assert_eq!(snap.next_hop(node, other), state.next_hop(node, other));
            }
        }
    }

    #[test]
    fn refill_reuses_buffers_and_replaces_content() {
        let a = ring_state(6);
        let b = ring_state(8);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &a);
        snap.fill_from(2, &b);
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.node_count(), 8);
        assert!(snap.entries().eq(b.route_table().iter().copied()));
    }

    #[test]
    fn wide_plane_fallback_answers_identically() {
        // The node_count > u16::MAX shape without 65k nodes: an index
        // bound past the narrow range forces u32 lanes on every index
        // plane, and every answer must match the narrow snapshot's.
        let state = ring_state(6);
        let mut narrow = TableSnapshot::empty();
        narrow.fill_from(1, &state);
        let mut wide = TableSnapshot::empty();
        wide.fill_from_bounded(1, &state, 70_000);
        assert!(wide.wide_index_planes());
        assert!(wide.table_planes().dest.is_wide() && wide.table_planes().next_hop.is_wide());
        assert!(!narrow.wide_index_planes());
        assert!(wide.entries().eq(narrow.entries()));
        let mut wide_path = Vec::new();
        let mut narrow_path = Vec::new();
        for i in 0..6 {
            let node = NodeId::new(i);
            assert_eq!(wide.route(node, 0), narrow.route(node, 0));
            wide_path.clear();
            narrow_path.clear();
            let we = wide.path_into(node, 0, &mut wide_path);
            let ne = narrow.path_into(node, 0, &mut narrow_path);
            assert_eq!(we, ne);
            assert_eq!(wide_path, narrow_path);
            for j in 0..6 {
                let other = NodeId::new(j);
                assert_eq!(wide.cost(node, other), narrow.cost(node, other));
                assert_eq!(wide.next_hop(node, other), narrow.next_hop(node, other));
            }
        }
        // Refilling the wide snapshot under the natural bound narrows it
        // back — the width follows the bound, not the history.
        wide.fill_from(2, &state);
        assert!(!wide.wide_index_planes());
        assert_eq!(wide, {
            narrow.fill_from(2, &state);
            narrow
        });
    }

    #[test]
    fn path_walks_to_the_chosen_duplicate() {
        let state = ring_state(6);
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &state);
        let mut path = Vec::new();
        let entry = snap.path_into(NodeId::new(1), 0, &mut path).expect("route exists");
        assert_eq!(path.first(), Some(&NodeId::new(1)));
        assert_eq!(path.last(), Some(&entry.destination));
        assert_eq!(path[1], entry.next_hop);
        // Self-hosted: single-node path.
        path.clear();
        let own = snap.path_into(NodeId::new(0), 0, &mut path).expect("self route");
        assert_eq!(own.destination, NodeId::new(0));
        assert_eq!(path, vec![NodeId::new(0)]);
    }

    #[test]
    fn out_of_range_queries_are_none() {
        let mut snap = TableSnapshot::empty();
        snap.fill_from(1, &ring_state(4));
        assert!(snap.route(NodeId::new(9), 0).is_none());
        assert!(snap.route(NodeId::new(0), 9).is_none());
        assert!(snap.cost(NodeId::new(0), NodeId::new(9)).is_none());
        assert!(snap.next_hop(NodeId::new(9), NodeId::new(0)).is_none());
        let mut path = Vec::new();
        assert!(snap.path_into(NodeId::new(9), 0, &mut path).is_none());
        assert!(path.is_empty());
    }
}
