//! Epoch publication: double-buffered `Arc` swap between one writer and
//! any number of readers, std-only.
//!
//! The writer ([`EpochPublisher`]) fills a private [`TableSnapshot`]
//! buffer *outside* any lock, wraps it in an `Arc`, and swaps it into
//! the shared slot under a mutex held only for the pointer exchange.
//! Readers ([`SnapshotReader::pin`]) clone the `Arc` out of the slot —
//! also just a pointer operation — and then query their pinned snapshot
//! for as long as they like. The recompute/fill work therefore never
//! holds the lock, and a pinned reader never observes a half-rebuilt
//! table: published snapshots are immutable by construction.
//!
//! Double buffering: the snapshot displaced by a publish is retained as
//! the writer's spare; if no reader still pins it by the next publish,
//! its buffers are refilled in place (checked via `Arc::get_mut`), so a
//! steady-state publish loop performs **no heap allocation** once both
//! buffers have warmed to the fabric's dimensions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use etx_metrics::{CounterId, GaugeId, MetricsHandle, SpanId};
use etx_routing::RoutingState;
use etx_sim::TableObserver;

use crate::snapshot::TableSnapshot;

/// A pinned, immutable snapshot — cheap to clone, safe to hold across
/// any number of republishes.
pub type PinnedSnapshot = Arc<TableSnapshot>;

/// The shared slot between one publisher and its readers.
#[derive(Debug)]
struct Slot {
    current: Mutex<PinnedSnapshot>,
    epoch: AtomicU64,
}

/// The writer half: owns the epoch counter and the spare buffer.
#[derive(Debug)]
pub struct EpochPublisher {
    slot: Arc<Slot>,
    /// The previously published snapshot, reclaimed for in-place refill
    /// when no reader pins it any more.
    spare: Option<PinnedSnapshot>,
    next_epoch: u64,
    /// Records `serve.publish` spans, the publish counter and the epoch
    /// gauge; the default no-op handle costs one relaxed load per
    /// publish.
    metrics: MetricsHandle,
}

/// The reader half: pin the current snapshot, or poll the epoch.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    slot: Arc<Slot>,
}

impl EpochPublisher {
    /// A fresh publisher/reader pair over an empty epoch-0 snapshot.
    #[must_use]
    pub fn new() -> (EpochPublisher, SnapshotReader) {
        let slot = Arc::new(Slot {
            current: Mutex::new(Arc::new(TableSnapshot::empty())),
            epoch: AtomicU64::new(0),
        });
        (
            EpochPublisher {
                slot: Arc::clone(&slot),
                spare: None,
                next_epoch: 0,
                metrics: MetricsHandle::default(),
            },
            SnapshotReader { slot },
        )
    }

    /// Points this publisher's metrics (`serve.publishes` counter,
    /// `serve.epoch` gauge, `serve.publish` span) at a registry.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// Another handle onto this publisher's readership.
    #[must_use]
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader { slot: Arc::clone(&self.slot) }
    }

    /// The epoch of the most recent publish (0 before the first).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Copies `routing`'s tables into the next snapshot and publishes it
    /// atomically under a fresh epoch, which is returned. Readers
    /// pinned to earlier epochs are unaffected; new pins observe the
    /// complete new table or the complete old one, never a mix.
    pub fn publish(&mut self, routing: &RoutingState) -> u64 {
        // The span guard borrows the registry, so hold the handle
        // locally (an `Arc` bump) while the publish mutates `self`.
        let metrics = self.metrics.clone();
        let _publish_span = metrics.span(SpanId::ServePublish);
        metrics.inc(CounterId::ServePublishes);
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        metrics.gauge_raise(GaugeId::ServeEpoch, epoch);
        // Reclaim the spare for in-place refill, or allocate when a
        // reader still holds it (the reader keeps its epoch intact; we
        // simply cannot reuse the buffer).
        let mut snap = self.spare.take().unwrap_or_default();
        match Arc::get_mut(&mut snap) {
            Some(buffer) => buffer.fill_from(epoch, routing),
            None => {
                let mut fresh = TableSnapshot::empty();
                fresh.fill_from(epoch, routing);
                snap = Arc::new(fresh);
            }
        }
        let displaced = {
            let mut current = self.slot.current.lock().expect("publisher poisoned");
            std::mem::replace(&mut *current, snap)
        };
        self.slot.epoch.store(epoch, Ordering::Release);
        self.spare = Some(displaced);
        epoch
    }
}

impl SnapshotReader {
    /// The epoch of the most recently published snapshot (0 before the
    /// first publish). A lock-free `Acquire` load.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.slot.epoch.load(Ordering::Acquire)
    }

    /// Pins the current snapshot: an `Arc` clone under the slot mutex
    /// (held for the pointer copy only — no allocation, no table
    /// copying). The returned snapshot is immutable and remains valid
    /// across any number of concurrent republishes.
    #[must_use]
    pub fn pin(&self) -> PinnedSnapshot {
        self.slot.current.lock().expect("publisher poisoned").clone()
    }
}

/// The engine-side publish hook: every routing recompute becomes one
/// published epoch.
impl TableObserver for EpochPublisher {
    fn on_tables(
        &mut self,
        _version: u64,
        routing: &RoutingState,
        _report: &etx_routing::SystemReport,
    ) {
        let _ = self.publish(routing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::{topology, NodeId};
    use etx_routing::{Algorithm, Router, SystemReport};
    use etx_units::Length;

    fn state(level: u32) -> RoutingState {
        let graph = topology::ring(6, Length::from_centimetres(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(3)]];
        let mut report = SystemReport::fresh(6, 16);
        report.set_battery_level(NodeId::new(0), level);
        Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None)
    }

    #[test]
    fn epochs_increment_and_readers_observe_the_latest() {
        let (mut publisher, reader) = EpochPublisher::new();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.pin().node_count(), 0);

        let a = state(15);
        assert_eq!(publisher.publish(&a), 1);
        assert_eq!(reader.epoch(), 1);
        let pin = reader.pin();
        assert_eq!(pin.epoch(), 1);
        assert!(pin.entries().eq(a.route_table().iter().copied()));
    }

    #[test]
    fn pinned_snapshot_survives_republishes_untouched() {
        let (mut publisher, reader) = EpochPublisher::new();
        let a = state(15);
        let b = state(0); // drained node 0: different tables
        publisher.publish(&a);
        let pin_a = reader.pin();
        let copy_a = (*pin_a).clone();

        // Publish over it repeatedly; the pinned epoch must stay
        // byte-identical even while buffers rotate underneath.
        for _ in 0..4 {
            publisher.publish(&b);
            publisher.publish(&a);
        }
        assert_eq!(*pin_a, copy_a);
        assert_eq!(pin_a.epoch(), 1);
        assert_eq!(reader.epoch(), 9);
        assert!(!reader.pin().entries().eq(b.route_table().iter().copied())); // latest is `a`
    }

    #[test]
    fn double_buffer_reclaims_unpinned_spares() {
        let (mut publisher, reader) = EpochPublisher::new();
        let a = state(15);
        // With no outstanding pins, the two buffers just alternate.
        for i in 1..=10 {
            assert_eq!(publisher.publish(&a), i);
        }
        assert_eq!(reader.pin().epoch(), 10);
    }

    #[test]
    fn concurrent_pins_see_complete_snapshots() {
        let (mut publisher, reader) = EpochPublisher::new();
        let a = state(15);
        let b = state(0);
        let a_table = a.route_table().to_vec();
        let b_table = b.route_table().to_vec();
        publisher.publish(&a);

        let stop = Arc::new(AtomicU64::new(0));
        let worker = {
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            let (a_table, b_table) = (a_table.clone(), b_table.clone());
            std::thread::spawn(move || {
                let mut pins = 0u64;
                // Pin-then-check (not check-then-pin): on a loaded
                // single-core host this thread may get its first
                // timeslice only after the publisher finishes, and it
                // must still observe at least one pin.
                loop {
                    let pin = reader.pin();
                    // Every pin is exactly one of the two published
                    // tables — never a mix, never a partial rebuild.
                    let table: Vec<_> = pin.entries().collect();
                    assert!(
                        table == a_table || table == b_table,
                        "pin at epoch {} observed a torn table",
                        pin.epoch()
                    );
                    pins += 1;
                    if stop.load(Ordering::Acquire) != 0 {
                        break;
                    }
                }
                pins
            })
        };
        for _ in 0..500 {
            publisher.publish(&b);
            publisher.publish(&a);
        }
        stop.store(1, Ordering::Release);
        let pins = worker.join().expect("reader thread");
        assert!(pins > 0);
    }
}
