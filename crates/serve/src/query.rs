//! Batched route queries: the [`QueryBatch`] / [`QueryOutput`] pair and
//! the lane-split per-snapshot execution core.
//!
//! Queries address a `(fabric, source)` pair; batches sort themselves by
//! `(shard, fabric, source)` before execution so all lookups against one
//! fabric's snapshot — and within it, one source's table row and
//! all-pairs rows — land back to back, amortizing cache misses across
//! the batch (single-fabric batches skip the sort entirely and run in
//! submission order). Each fabric's sorted group is then split into
//! per-type **lanes** — NextHop, Cost, Path — and every lane runs as a
//! tight cache-blocked loop over exactly the snapshot planes that query
//! type reads: next-hop lookups gather from two index planes, one `f64`
//! plane and the validity bitset; cost lookups touch only the distance
//! plane; path walks run last so the shared node arena fills in sorted
//! order. No `Option<RouteEntry>` is reconstructed until result
//! write-back. Results land in **caller-owned** buffers in the original
//! submission order (the sort is an internal permutation), and every
//! buffer is reused across batches: once warmed, the execute path
//! performs no heap allocation — the same counting-allocator discipline
//! as the routing kernel's `RoutingScratch`.

use etx_graph::{NodeId, PlaneIdx};
use etx_metrics::{CounterId, Registry, SpanId};
use etx_routing::RouteEntry;

use crate::snapshot::TableSnapshot;

/// One route query against a fabric's published tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Point lookup: the full routing-table entry (destination, first
    /// hop, cost) for packets of `module` originating at `source`.
    NextHop {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Originating node.
        source: NodeId,
        /// Module whose nearest live duplicate is wanted.
        module: u32,
    },
    /// Full-path materialization: the entry plus the complete node
    /// sequence to the chosen destination.
    Path {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Originating node.
        source: NodeId,
        /// Module whose nearest live duplicate is wanted.
        module: u32,
    },
    /// Path-cost lookup between two nodes (phase-2 distance).
    Cost {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Path source.
        source: NodeId,
        /// Path target.
        target: NodeId,
    },
}

impl Query {
    /// The fabric this query addresses.
    #[must_use]
    pub fn fabric(&self) -> u32 {
        match self {
            Query::NextHop { fabric, .. }
            | Query::Path { fabric, .. }
            | Query::Cost { fabric, .. } => *fabric,
        }
    }

    /// The originating node (the second sort key).
    #[must_use]
    pub fn source(&self) -> NodeId {
        match self {
            Query::NextHop { source, .. }
            | Query::Path { source, .. }
            | Query::Cost { source, .. } => *source,
        }
    }
}

/// One query's answer. Path node sequences live in the
/// [`QueryOutput`]'s arena; resolve them with [`QueryOutput::path_nodes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryResult {
    /// Answer to [`Query::NextHop`] (`None`: no live duplicate
    /// reachable, or the source/module is out of range).
    NextHop(Option<RouteEntry>),
    /// Answer to [`Query::Path`]: the resolved entry plus the arena
    /// range holding the node sequence (empty when `None`).
    Path {
        /// The resolved table entry, if a route exists.
        entry: Option<RouteEntry>,
        /// `[start, end)` range into the output's path arena.
        nodes: (u32, u32),
    },
    /// Answer to [`Query::Cost`] (`None`: unreachable or out of range).
    Cost(Option<f64>),
    /// The addressed fabric is not served by this frontend.
    UnknownFabric,
}

/// Lane slots per cache block of a gather pass: 512 slots touch at most
/// ~6 KiB of plane data (u16 dest + u16 next_hop + f64 distance), so a
/// block's plane segments stay L1-resident while its results scatter.
const LANE_BLOCK: usize = 512;

/// The out-of-range marker in a lane's pre-resolved flat indices: the
/// split pass bounds-checks once, so the gather loops never re-examine
/// the query.
const OUT_OF_RANGE: usize = usize::MAX;

/// Reusable lane storage for one executor: the per-type splits of a
/// fabric group's sorted order. NextHop and Cost slots carry their
/// pre-resolved flat plane index (`OUT_OF_RANGE` when the query misses
/// the fabric's dimensions), so the gather loops are pure plane reads —
/// the 16-byte `Query` is decoded exactly once, in the split pass. All
/// buffers are retained across batches (zero steady-state allocation).
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    next_hop: Vec<(u32, usize)>,
    cost: Vec<(u32, usize)>,
    path: Vec<u32>,
}

/// Executes one fabric group of the sorted order against its pinned
/// snapshot (`None`: the fabric is unserved — every query answers
/// [`QueryResult::UnknownFabric`]), delivering each `(submission index,
/// result)` pair through `sink`.
///
/// The group is split into per-type lanes and each lane runs as a tight
/// loop over its planes. Lanes preserve the group's internal order, and
/// the Path lane runs **last**, appending to `arena` — since no other
/// lane touches the arena, the arena bytes (and every result's arena
/// range) are identical to a query-at-a-time dispatch over the same
/// order, which is what keeps serial, sharded and AoS-mirror execution
/// byte-identical.
pub(crate) fn execute_group(
    metrics: &Registry,
    snapshot: Option<&TableSnapshot>,
    order: &[u32],
    queries: &[Query],
    lanes: &mut LaneScratch,
    arena: &mut Vec<NodeId>,
    sink: &mut impl FnMut(u32, QueryResult),
) {
    let Some(snap) = snapshot else {
        for &oi in order {
            sink(oi, QueryResult::UnknownFabric);
        }
        return;
    };
    {
        let _split_span = metrics.span(SpanId::ServeBatchSplit);
        lanes.next_hop.clear();
        lanes.cost.clear();
        lanes.path.clear();
        // Reserve to the group bound, not the split sizes: lane lengths
        // vary with the batch mix, and capacity must reach its high-water
        // mark in one step for the steady state to stay allocation-free.
        lanes.next_hop.reserve(order.len());
        lanes.cost.reserve(order.len());
        lanes.path.reserve(order.len());
        let n = snap.node_count();
        let modules = snap.module_count();
        for &oi in order {
            match queries[oi as usize] {
                Query::NextHop { source, module, .. } => {
                    let flat = if source.index() < n && (module as usize) < modules {
                        source.index() * modules + module as usize
                    } else {
                        OUT_OF_RANGE
                    };
                    lanes.next_hop.push((oi, flat));
                }
                Query::Cost { source, target, .. } => {
                    let flat = if source.index() < n && target.index() < n {
                        source.index() * n + target.index()
                    } else {
                        OUT_OF_RANGE
                    };
                    lanes.cost.push((oi, flat));
                }
                Query::Path { .. } => lanes.path.push(oi),
            }
        }
    }
    metrics.add(CounterId::ServeQueriesNextHop, lanes.next_hop.len() as u64);
    metrics.add(CounterId::ServeQueriesCost, lanes.cost.len() as u64);
    metrics.add(CounterId::ServeQueriesPath, lanes.path.len() as u64);

    // Each lane pass is timed once and its elapsed time divided over the
    // lane's queries, so the per-type latency histograms stay exact in
    // count while the record path pays one clock read per lane, not per
    // query.
    let lane_timer = metrics.timer();
    let planes = snap.table_planes();
    match (planes.dest.narrow(), planes.next_hop.narrow()) {
        (Some(dest), Some(next)) => {
            next_hop_lane(snap, dest, next, &lanes.next_hop, sink);
        }
        _ => {
            let dest = planes.dest.wide().expect("plane widths agree");
            let next = planes.next_hop.wide().expect("plane widths agree");
            next_hop_lane(snap, dest, next, &lanes.next_hop, sink);
        }
    }
    metrics.observe_share(SpanId::ServeLatencyNextHop, lane_timer, lanes.next_hop.len() as u64);
    let lane_timer = metrics.timer();
    cost_lane(snap, &lanes.cost, sink);
    metrics.observe_share(SpanId::ServeLatencyCost, lane_timer, lanes.cost.len() as u64);
    // Path lane last: the only lane that appends to the arena.
    let lane_timer = metrics.timer();
    for &oi in &lanes.path {
        let Query::Path { source, module, .. } = queries[oi as usize] else {
            unreachable!("path lane holds only path queries")
        };
        let start = arena.len() as u32;
        let entry = snap.path_into(source, module as usize, arena);
        sink(oi, QueryResult::Path { entry, nodes: (start, arena.len() as u32) });
    }
    metrics.observe_share(SpanId::ServeLatencyPath, lane_timer, lanes.path.len() as u64);
}

/// The NextHop lane: a tight gather over the two index planes, the
/// entry-distance plane and the validity bitset, monomorphized per lane
/// width. Flat indices were pre-resolved by the split pass, so each
/// slot is four plane reads and one result write — and because the lane
/// preserves the `(shard, fabric, source)` sort, each `LANE_BLOCK`
/// chunk's reads land in a bounded, monotonically advancing segment of
/// every plane (the blocked schedule falls out of the sort).
fn next_hop_lane<I: PlaneIdx>(
    snap: &TableSnapshot,
    dest: &[I],
    next: &[I],
    lane: &[(u32, usize)],
    sink: &mut impl FnMut(u32, QueryResult),
) {
    let planes = snap.table_planes();
    let dist: &[f64] = &planes.distance;
    let valid = &planes.valid;
    for block in lane.chunks(LANE_BLOCK) {
        for &(oi, flat) in block {
            // `contains` is false both for the OUT_OF_RANGE sentinel
            // and for invalid entries, so one bit test gates the gather.
            let entry = valid.contains(NodeId::new(flat)).then(|| RouteEntry {
                destination: NodeId::new(dest[flat].expand()),
                next_hop: NodeId::new(next[flat].expand()),
                distance: dist[flat],
            });
            sink(oi, QueryResult::NextHop(entry));
        }
    }
}

/// The Cost lane: a gather over the phase-2 distance plane — the only
/// plane a cost query reads (8 bytes per slot).
fn cost_lane(snap: &TableSnapshot, lane: &[(u32, usize)], sink: &mut impl FnMut(u32, QueryResult)) {
    let dist = snap.dist_plane();
    for block in lane.chunks(LANE_BLOCK) {
        for &(oi, flat) in block {
            let cost = (flat != OUT_OF_RANGE).then(|| dist[flat]).filter(|d| d.is_finite());
            sink(oi, QueryResult::Cost(cost));
        }
    }
}

/// A reusable batch of queries plus the sort permutation the executor
/// orders them through. Submission order is preserved in the results.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    queries: Vec<Query>,
    /// Execution order (indices into `queries`), rebuilt per execute.
    pub(crate) order: Vec<u32>,
    /// Packed sort keys (`shard | fabric | source | index`), reused per
    /// execute so the sort never re-evaluates the shard hash.
    keys: Vec<u128>,
    /// Lane storage for the serial execute path.
    pub(crate) lanes: LaneScratch,
}

impl QueryBatch {
    /// An empty batch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Drops all queries, retaining capacity.
    pub fn clear(&mut self) {
        self.queries.clear();
    }

    /// Appends one query.
    pub fn push(&mut self, query: Query) {
        self.queries.push(query);
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries in submission order.
    #[must_use]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Split borrow for the execute loop: the sorted order, the queries
    /// and the lane scratch, disjointly.
    pub(crate) fn exec_parts(&mut self) -> (&[u32], &[Query], &mut LaneScratch) {
        (&self.order, &self.queries, &mut self.lanes)
    }

    /// Rebuilds the execution order: stable on submission index, sorted
    /// by `(shard, fabric, source)` so each fabric — and each source
    /// row within it — is visited exactly once per batch.
    ///
    /// **Single-fabric fast path**: when every query addresses one
    /// fabric (the per-garment common case), the whole batch is one
    /// execution group whatever the order, so the sort is skipped and
    /// the identity (submission) order emitted directly — the lane
    /// split downstream still gives each query type its streaming pass.
    ///
    /// Mixed batches take the packed path: keys are packed into `u128`s
    /// up front — one `shard_of` hash per query, not per comparison
    /// (`sort_unstable_by_key` re-evaluates its closure;
    /// `sort_by_cached_key` caches but allocates, which the steady
    /// state must not).
    pub(crate) fn sort_for_execution(&mut self, shard_of: impl Fn(u32) -> u32) {
        self.order.clear();
        if let Some(first) = self.queries.first() {
            let fabric = first.fabric();
            if self.queries.iter().all(|q| q.fabric() == fabric) {
                self.order.extend(0..self.queries.len() as u32);
                return;
            }
        }
        self.keys.clear();
        self.keys.reserve(self.queries.len());
        for (i, q) in self.queries.iter().enumerate() {
            let fabric = q.fabric();
            let key = (u128::from(shard_of(fabric)) << 96)
                | (u128::from(fabric) << 64)
                | (u128::from(q.source().index() as u32) << 32)
                | i as u128;
            self.keys.push(key);
        }
        self.keys.sort_unstable();
        self.order.extend(self.keys.iter().map(|&key| (key & u128::from(u32::MAX)) as u32));
    }

    /// [`QueryBatch::sort_for_execution`] for a batch already known to
    /// execute on **one shard** — the daemon case, where a connection is
    /// pinned to its owning shard and every batch it submits runs there.
    /// With a single shard in play the shard hash can never split the
    /// order, so it is skipped entirely: keys pack `(fabric, source,
    /// index)` only, and the single-fabric identity fast path applies
    /// unchanged. The resulting order is identical to
    /// [`QueryBatch::sort_for_execution`] with any constant `shard_of`.
    pub(crate) fn sort_single_shard(&mut self) {
        self.order.clear();
        if let Some(first) = self.queries.first() {
            let fabric = first.fabric();
            if self.queries.iter().all(|q| q.fabric() == fabric) {
                self.order.extend(0..self.queries.len() as u32);
                return;
            }
        }
        self.keys.clear();
        self.keys.reserve(self.queries.len());
        for (i, q) in self.queries.iter().enumerate() {
            let key = (u128::from(q.fabric()) << 64)
                | (u128::from(q.source().index() as u32) << 32)
                | i as u128;
            self.keys.push(key);
        }
        self.keys.sort_unstable();
        self.order.extend(self.keys.iter().map(|&key| (key & u128::from(u32::MAX)) as u32));
    }
}

/// Caller-owned result storage: one [`QueryResult`] per submitted query
/// (submission order) plus the shared path-node arena. Reused across
/// batches — steady-state execution allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    results: Vec<QueryResult>,
    arena: Vec<NodeId>,
}

impl QueryOutput {
    /// Empty output buffers; they grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        QueryOutput::default()
    }

    /// Resets for a batch of `len` queries.
    pub(crate) fn reset(&mut self, len: usize) {
        self.results.clear();
        self.results.resize(len, QueryResult::UnknownFabric);
        self.arena.clear();
    }

    /// The results, in the batch's submission order.
    #[must_use]
    pub fn results(&self) -> &[QueryResult] {
        &self.results
    }

    /// Resolves a [`QueryResult::Path`] arena range to its node
    /// sequence (empty for non-path results or unroutable paths).
    #[must_use]
    pub fn path_nodes(&self, result: &QueryResult) -> &[NodeId] {
        match result {
            QueryResult::Path { nodes: (start, end), .. } => {
                &self.arena[*start as usize..*end as usize]
            }
            _ => &[],
        }
    }

    pub(crate) fn set(&mut self, index: usize, result: QueryResult) {
        self.results[index] = result;
    }

    pub(crate) fn arena_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.arena
    }

    /// Split borrow for the execute loop: the result slots and the path
    /// arena, disjointly.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<QueryResult>, &mut Vec<NodeId>) {
        (&mut self.results, &mut self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_graph::topology;
    use etx_routing::{Algorithm, Router, RoutingState, SystemReport};
    use etx_units::Length;

    fn q(fabric: u32, source: usize) -> Query {
        Query::NextHop { fabric, source: NodeId::new(source), module: 0 }
    }

    #[test]
    fn sort_groups_by_fabric_then_source_stably() {
        let mut batch = QueryBatch::new();
        for (f, s) in [(2, 5), (0, 9), (2, 1), (0, 9), (1, 0)] {
            batch.push(q(f, s));
        }
        // Identity sharding keeps fabric order itself.
        batch.sort_for_execution(|f| f);
        let order: Vec<u32> = batch.order.clone();
        assert_eq!(order, vec![1, 3, 4, 2, 0]);
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
    }

    #[test]
    fn single_fabric_batch_skips_the_sort() {
        let mut batch = QueryBatch::new();
        for s in [5, 1, 9, 0] {
            batch.push(q(3, s));
        }
        // A shard hash that would scramble everything must not even be
        // consulted: one fabric means one group whatever the order.
        batch.sort_for_execution(|_| unreachable!("single-fabric batch must not hash"));
        assert_eq!(batch.order, vec![0, 1, 2, 3], "identity order, not source-sorted");
        // A second fabric reinstates the packed sort.
        batch.push(q(1, 2));
        batch.sort_for_execution(|f| f);
        assert_eq!(batch.order, vec![4, 3, 1, 0, 2]);
    }

    #[test]
    fn single_shard_sort_skips_the_shard_hash() {
        // Mixed fabrics, one shard: the order must match the packed
        // sort under any constant shard hash — without consulting one.
        let mut pinned = QueryBatch::new();
        let mut hashed = QueryBatch::new();
        for (f, s) in [(2, 5), (0, 9), (2, 1), (0, 9), (1, 0)] {
            pinned.push(q(f, s));
            hashed.push(q(f, s));
        }
        pinned.sort_single_shard();
        hashed.sort_for_execution(|_| 7);
        assert_eq!(pinned.order, hashed.order);
        assert_eq!(pinned.order, vec![1, 3, 4, 2, 0]);
        // The single-fabric identity fast path applies here too.
        let mut single = QueryBatch::new();
        for s in [5, 1, 9] {
            single.push(q(3, s));
        }
        single.sort_single_shard();
        assert_eq!(single.order, vec![0, 1, 2], "identity order, not source-sorted");
    }

    #[test]
    fn output_reset_preserves_capacity() {
        let mut out = QueryOutput::new();
        out.reset(4);
        assert_eq!(out.results().len(), 4);
        assert!(matches!(out.results()[0], QueryResult::UnknownFabric));
        out.arena_mut().push(NodeId::new(1));
        out.reset(2);
        assert_eq!(out.results().len(), 2);
        assert!(out.path_nodes(&QueryResult::Cost(None)).is_empty());
    }

    fn ring_state(k: usize) -> RoutingState {
        let graph = topology::ring(k, Length::from_centimetres(1.0));
        let modules = vec![vec![NodeId::new(0), NodeId::new(k / 2)]];
        let report = SystemReport::fresh(k, 16);
        Router::new(Algorithm::Ear).compute(&graph, &modules, &report, None)
    }

    /// Runs one mixed group through `execute_group` and collects the
    /// `(submission index, result)` pairs plus the arena.
    fn run_group(snap: &TableSnapshot) -> (Vec<(u32, QueryResult)>, Vec<NodeId>) {
        let n = snap.node_count();
        let mut queries = Vec::new();
        for s in 0..n {
            queries.push(Query::NextHop { fabric: 0, source: NodeId::new(s), module: 0 });
            queries.push(Query::Path { fabric: 0, source: NodeId::new(s), module: 0 });
            queries.push(Query::Cost {
                fabric: 0,
                source: NodeId::new(s),
                target: NodeId::new((s + 1) % n),
            });
        }
        // Out-of-range probes ride along in every lane.
        queries.push(Query::NextHop { fabric: 0, source: NodeId::new(n + 3), module: 9 });
        queries.push(Query::Cost { fabric: 0, source: NodeId::new(0), target: NodeId::new(n) });
        let order: Vec<u32> = (0..queries.len() as u32).collect();
        let mut lanes = LaneScratch::default();
        let mut arena = Vec::new();
        let mut got = Vec::new();
        let metrics = Registry::disabled();
        execute_group(
            &metrics,
            Some(snap),
            &order,
            &queries,
            &mut lanes,
            &mut arena,
            &mut |oi, r| {
                got.push((oi, r));
            },
        );
        got.sort_by_key(|&(oi, _)| oi);
        (got, arena)
    }

    #[test]
    fn wide_and_narrow_groups_answer_identically() {
        // The monomorphized u32 gather must agree with the u16 gather
        // result for result (the arena ranges included).
        let state = ring_state(6);
        let mut narrow = TableSnapshot::empty();
        narrow.fill_from(1, &state);
        let mut wide = TableSnapshot::empty();
        wide.fill_from_bounded(1, &state, 70_000);
        assert!(wide.wide_index_planes() && !narrow.wide_index_planes());
        let (narrow_results, narrow_arena) = run_group(&narrow);
        let (wide_results, wide_arena) = run_group(&wide);
        assert_eq!(narrow_results, wide_results);
        assert_eq!(narrow_arena, wide_arena);
        // And the in-range next-hop answers agree with the routing
        // state itself (query 3s is source s's next-hop lookup).
        for (oi, result) in narrow_results {
            if let QueryResult::NextHop(entry) = result {
                let source = oi as usize / 3;
                let want = (source < state.node_count())
                    .then(|| state.route(NodeId::new(source), 0).copied())
                    .flatten();
                assert_eq!(entry, want, "query {oi}");
            }
        }
    }

    #[test]
    fn unserved_group_answers_unknown_fabric() {
        let queries = vec![q(7, 0), q(7, 1)];
        let order = vec![0u32, 1];
        let mut lanes = LaneScratch::default();
        let mut arena = Vec::new();
        let mut got = Vec::new();
        let metrics = Registry::disabled();
        execute_group(&metrics, None, &order, &queries, &mut lanes, &mut arena, &mut |oi, r| {
            got.push((oi, r));
        });
        assert_eq!(got, vec![(0, QueryResult::UnknownFabric), (1, QueryResult::UnknownFabric)]);
        assert!(arena.is_empty());
    }
}
