//! Batched route queries: the [`QueryBatch`] / [`QueryOutput`] pair and
//! the per-snapshot execution core.
//!
//! Queries address a `(fabric, source)` pair; batches sort themselves by
//! `(shard, fabric, source)` before execution so all lookups against one
//! fabric's snapshot — and within it, one source's table row and
//! all-pairs rows — land back to back, amortizing cache misses across
//! the batch. Results land in **caller-owned** buffers in the original
//! submission order (the sort is an internal permutation), and every
//! buffer is reused across batches: once warmed, the execute path
//! performs no heap allocation — the same counting-allocator discipline
//! as the routing kernel's `RoutingScratch`.

use etx_graph::NodeId;
use etx_routing::RouteEntry;

use crate::snapshot::TableSnapshot;

/// One route query against a fabric's published tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Point lookup: the full routing-table entry (destination, first
    /// hop, cost) for packets of `module` originating at `source`.
    NextHop {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Originating node.
        source: NodeId,
        /// Module whose nearest live duplicate is wanted.
        module: u32,
    },
    /// Full-path materialization: the entry plus the complete node
    /// sequence to the chosen destination.
    Path {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Originating node.
        source: NodeId,
        /// Module whose nearest live duplicate is wanted.
        module: u32,
    },
    /// Path-cost lookup between two nodes (phase-2 distance).
    Cost {
        /// Fabric instance the query addresses.
        fabric: u32,
        /// Path source.
        source: NodeId,
        /// Path target.
        target: NodeId,
    },
}

impl Query {
    /// The fabric this query addresses.
    #[must_use]
    pub fn fabric(&self) -> u32 {
        match self {
            Query::NextHop { fabric, .. }
            | Query::Path { fabric, .. }
            | Query::Cost { fabric, .. } => *fabric,
        }
    }

    /// The originating node (the second sort key).
    #[must_use]
    pub fn source(&self) -> NodeId {
        match self {
            Query::NextHop { source, .. }
            | Query::Path { source, .. }
            | Query::Cost { source, .. } => *source,
        }
    }
}

/// One query's answer. Path node sequences live in the
/// [`QueryOutput`]'s arena; resolve them with [`QueryOutput::path_nodes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryResult {
    /// Answer to [`Query::NextHop`] (`None`: no live duplicate
    /// reachable, or the source/module is out of range).
    NextHop(Option<RouteEntry>),
    /// Answer to [`Query::Path`]: the resolved entry plus the arena
    /// range holding the node sequence (empty when `None`).
    Path {
        /// The resolved table entry, if a route exists.
        entry: Option<RouteEntry>,
        /// `[start, end)` range into the output's path arena.
        nodes: (u32, u32),
    },
    /// Answer to [`Query::Cost`] (`None`: unreachable or out of range).
    Cost(Option<f64>),
    /// The addressed fabric is not served by this frontend.
    UnknownFabric,
}

/// A reusable batch of queries plus the sort permutation the executor
/// orders them through. Submission order is preserved in the results.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    queries: Vec<Query>,
    /// Execution order (indices into `queries`), rebuilt per execute.
    pub(crate) order: Vec<u32>,
    /// Packed sort keys (`shard | fabric | source | index`), reused per
    /// execute so the sort never re-evaluates the shard hash.
    keys: Vec<u128>,
}

impl QueryBatch {
    /// An empty batch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Drops all queries, retaining capacity.
    pub fn clear(&mut self) {
        self.queries.clear();
    }

    /// Appends one query.
    pub fn push(&mut self, query: Query) {
        self.queries.push(query);
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries in submission order.
    #[must_use]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Rebuilds the execution order: stable on submission index, sorted
    /// by `(shard, fabric, source)` so each fabric — and each source
    /// row within it — is visited exactly once per batch.
    ///
    /// Keys are packed into `u128`s up front — one `shard_of` hash per
    /// query, not per comparison (`sort_unstable_by_key` re-evaluates
    /// its closure; `sort_by_cached_key` caches but allocates, which
    /// the steady state must not).
    pub(crate) fn sort_for_execution(&mut self, shard_of: impl Fn(u32) -> u32) {
        self.keys.clear();
        self.keys.reserve(self.queries.len());
        for (i, q) in self.queries.iter().enumerate() {
            let fabric = q.fabric();
            let key = (u128::from(shard_of(fabric)) << 96)
                | (u128::from(fabric) << 64)
                | (u128::from(q.source().index() as u32) << 32)
                | i as u128;
            self.keys.push(key);
        }
        self.keys.sort_unstable();
        self.order.clear();
        self.order.extend(self.keys.iter().map(|&key| (key & u128::from(u32::MAX)) as u32));
    }
}

/// Caller-owned result storage: one [`QueryResult`] per submitted query
/// (submission order) plus the shared path-node arena. Reused across
/// batches — steady-state execution allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    results: Vec<QueryResult>,
    arena: Vec<NodeId>,
}

impl QueryOutput {
    /// Empty output buffers; they grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        QueryOutput::default()
    }

    /// Resets for a batch of `len` queries.
    pub(crate) fn reset(&mut self, len: usize) {
        self.results.clear();
        self.results.resize(len, QueryResult::UnknownFabric);
        self.arena.clear();
    }

    /// The results, in the batch's submission order.
    #[must_use]
    pub fn results(&self) -> &[QueryResult] {
        &self.results
    }

    /// Resolves a [`QueryResult::Path`] arena range to its node
    /// sequence (empty for non-path results or unroutable paths).
    #[must_use]
    pub fn path_nodes(&self, result: &QueryResult) -> &[NodeId] {
        match result {
            QueryResult::Path { nodes: (start, end), .. } => {
                &self.arena[*start as usize..*end as usize]
            }
            _ => &[],
        }
    }

    pub(crate) fn set(&mut self, index: usize, result: QueryResult) {
        self.results[index] = result;
    }

    pub(crate) fn arena_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.arena
    }
}

/// Executes one query against a pinned snapshot, materializing path
/// nodes into `arena`.
pub(crate) fn execute_on(
    snapshot: &TableSnapshot,
    query: &Query,
    arena: &mut Vec<NodeId>,
) -> QueryResult {
    match *query {
        Query::NextHop { source, module, .. } => {
            QueryResult::NextHop(snapshot.route(source, module as usize).copied())
        }
        Query::Path { source, module, .. } => {
            let start = arena.len() as u32;
            let entry = snapshot.path_into(source, module as usize, arena);
            QueryResult::Path { entry, nodes: (start, arena.len() as u32) }
        }
        Query::Cost { source, target, .. } => QueryResult::Cost(snapshot.cost(source, target)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(fabric: u32, source: usize) -> Query {
        Query::NextHop { fabric, source: NodeId::new(source), module: 0 }
    }

    #[test]
    fn sort_groups_by_fabric_then_source_stably() {
        let mut batch = QueryBatch::new();
        for (f, s) in [(2, 5), (0, 9), (2, 1), (0, 9), (1, 0)] {
            batch.push(q(f, s));
        }
        // Identity sharding keeps fabric order itself.
        batch.sort_for_execution(|f| f);
        let order: Vec<u32> = batch.order.clone();
        assert_eq!(order, vec![1, 3, 4, 2, 0]);
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
    }

    #[test]
    fn output_reset_preserves_capacity() {
        let mut out = QueryOutput::new();
        out.reset(4);
        assert_eq!(out.results().len(), 4);
        assert!(matches!(out.results()[0], QueryResult::UnknownFabric));
        out.arena_mut().push(NodeId::new(1));
        out.reset(2);
        assert_eq!(out.results().len(), 2);
        assert!(out.path_nodes(&QueryResult::Cost(None)).is_empty());
    }
}
