//! `etx-serve` — the read side of the routing controller: a
//! snapshot-consistent route query service over epoch-published tables.
//!
//! The paper's EAR tables exist so garment nodes can *answer routing
//! queries* while the fabric drains; every layer below this crate only
//! *produces* tables. `etx-serve` consumes them at rate:
//!
//! * [`TableSnapshot`] — an immutable, epoch-numbered copy of one
//!   controller invocation's tables, repacked as **struct-of-arrays
//!   planes** (u16-compacted destination/first-hop/successor index
//!   planes, an `f64` distance plane, a validity bitset) that
//!   reconstruct entries byte-identical to the
//!   [`RoutingState`](etx_routing::RoutingState) they were filled from;
//! * [`EpochPublisher`] / [`SnapshotReader`] — std-only double-buffered
//!   `Arc` publication: the writer fills outside the lock and swaps a
//!   pointer; readers pin with a pointer clone and can hold a snapshot
//!   across any number of republishes without ever observing a
//!   half-rebuilt table. The publisher implements the engine's
//!   [`TableObserver`](etx_sim::TableObserver) hook, so every TDMA-frame
//!   recompute becomes one published epoch;
//! * [`QueryBatch`] / [`QueryOutput`] — batched next-hop / full-path /
//!   path-cost queries, sorted by `(shard, fabric, source)` to amortize
//!   cache misses (single-fabric batches skip the sort), split into
//!   per-type lanes that run cache-blocked over exactly the planes each
//!   query type reads, answered into caller-owned buffers with zero
//!   steady-state allocation;
//! * [`FleetFrontend`] — one query surface over thousands of pooled
//!   fabric instances (built from an
//!   [`ScenarioSpec`](etx_fleet::ScenarioSpec) exactly as the fleet
//!   controller samples them), hash-sharded with byte-identical answers
//!   across shard counts;
//! * [`WorkloadGen`] / [`run_load`] — SplitMix64-driven open- and
//!   closed-loop load generation with HDR-style tail-latency capture
//!   (the fleet's exact-integer histograms);
//! * [`net`] — `etx-served`: the thread-per-core TCP daemon that puts
//!   all of the above behind a compact length-prefixed binary
//!   protocol, with per-shard connection pinning, a telemetry-ingest
//!   write path and bounded-queue load shedding;
//! * [`AosFrontend`] — the pre-plane array-of-structs execution path,
//!   kept alive so benchmarks can interleave both layouts in one
//!   process and CI can diff their outputs byte for byte.
//!
//! # Example
//!
//! ```
//! use etx_fleet::ScenarioSpec;
//! use etx_graph::NodeId;
//! use etx_serve::{FleetFrontend, Query, QueryBatch, QueryOutput, QueryResult};
//!
//! let spec = ScenarioSpec { instances: 2, ..ScenarioSpec::smoke() };
//! let frontend = FleetFrontend::from_spec(&spec, 1_000, 2)?;
//!
//! let mut batch = QueryBatch::new();
//! batch.push(Query::NextHop { fabric: 0, source: NodeId::new(1), module: 0 });
//! let mut out = QueryOutput::new();
//! frontend.execute(&mut batch, &mut out);
//! assert!(matches!(out.results()[0], QueryResult::NextHop(_)));
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod frontend;
pub mod net;
mod publish;
mod query;
mod snapshot;
mod workload;

pub use baseline::{AosFrontend, AosTables};
pub use frontend::{FleetFrontend, ShardWorkspace};
pub use net::{run_wire_load, RouteClient, Served, ServedConfig, WireLoadReport};
pub use publish::{EpochPublisher, PinnedSnapshot, SnapshotReader};
pub use query::{Query, QueryBatch, QueryOutput, QueryResult};
pub use snapshot::TableSnapshot;
pub use workload::{run_load, FabricDirectory, LoadMode, LoadReport, WorkloadGen, WorkloadSpec};
