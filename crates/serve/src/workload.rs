//! Workload generation and load loops: SplitMix64-driven query streams
//! with a configurable point/path/cost mix, driven open- or closed-loop
//! against a [`FleetFrontend`], with HDR-style tail-latency capture
//! (the exact-integer [`Histo`] from `etx-metrics` — the same bucket
//! scheme the fleet's `StreamingStat` re-exports).

use std::time::Instant;

use etx_fleet::FleetRng;
use etx_graph::NodeId;
use etx_metrics::Histo;

use crate::frontend::FleetFrontend;
use crate::query::{Query, QueryBatch, QueryOutput};

/// A declarative query workload: one spec plus a seed expands into a
/// reproducible query stream (batch `b` depends only on `(seed, b)`
/// and the frontend's fabric dimensions).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Root seed of the query stream.
    pub seed: u64,
    /// Queries per batch.
    pub batch: usize,
    /// Relative weight of point (next-hop) lookups.
    pub next_hop_weight: u32,
    /// Relative weight of full-path queries.
    pub path_weight: u32,
    /// Relative weight of path-cost queries.
    pub cost_weight: u32,
}

impl Default for WorkloadSpec {
    /// Point-lookup-heavy mix (8:1:1) in 1024-query batches.
    fn default() -> Self {
        WorkloadSpec { seed: 2005, batch: 1024, next_hop_weight: 8, path_weight: 1, cost_weight: 1 }
    }
}

impl WorkloadSpec {
    /// A pure point-lookup workload (the headline throughput metric;
    /// exercises the NextHop lane alone).
    #[must_use]
    pub fn point_lookups() -> Self {
        WorkloadSpec { next_hop_weight: 1, path_weight: 0, cost_weight: 0, ..Self::default() }
    }

    /// A pure full-path workload (exercises the Path lane and the node
    /// arena alone).
    #[must_use]
    pub fn full_paths() -> Self {
        WorkloadSpec { next_hop_weight: 0, path_weight: 1, cost_weight: 0, ..Self::default() }
    }

    /// A pure path-cost workload (exercises the Cost lane — and with
    /// it, only the distance plane).
    #[must_use]
    pub fn path_costs() -> Self {
        WorkloadSpec { next_hop_weight: 0, path_weight: 0, cost_weight: 1, ..Self::default() }
    }
}

/// The fabric dimensions a workload generator samples against —
/// implemented by the in-process [`FleetFrontend`] and by the
/// daemon's [`RouteClient`](crate::net::RouteClient) (which learns
/// them from the HELLO_ACK handshake), so the *same* generator state
/// produces the *same* query stream locally and over the wire.
pub trait FabricDirectory {
    /// Number of fabric ids (rejected placeholders included).
    fn fabric_count(&self) -> usize;
    /// Node count of a served fabric (`None` for rejected ids).
    fn node_count(&self, fabric: u32) -> Option<usize>;
    /// Module count of a served fabric (`None` for rejected ids).
    fn module_count(&self, fabric: u32) -> Option<usize>;
}

impl FabricDirectory for FleetFrontend {
    fn fabric_count(&self) -> usize {
        FleetFrontend::fabric_count(self)
    }

    fn node_count(&self, fabric: u32) -> Option<usize> {
        FleetFrontend::node_count(self, fabric)
    }

    fn module_count(&self, fabric: u32) -> Option<usize> {
        FleetFrontend::module_count(self, fabric)
    }
}

/// Expands a [`WorkloadSpec`] into query batches.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    next_batch: u64,
}

impl WorkloadGen {
    /// A generator at batch 0.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadGen { spec, next_batch: 0 }
    }

    /// The spec this generator expands.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Fills `batch` with the next batch of queries addressed at
    /// `frontend`'s fabrics. Deterministic: batch `b` is sampled from a
    /// substream forked from `(seed, b)` alone, so two generators over
    /// the same spec and the same fabric dimensions produce identical
    /// streams regardless of timing — or of which side of a socket
    /// they run on.
    pub fn fill(&mut self, frontend: &impl FabricDirectory, batch: &mut QueryBatch) {
        let mut rng = FleetRng::new(self.spec.seed).fork(self.next_batch);
        self.next_batch += 1;
        batch.clear();
        let fabric_count = frontend.fabric_count().max(1) as u64;
        let total_weight = u64::from(self.spec.next_hop_weight)
            + u64::from(self.spec.path_weight)
            + u64::from(self.spec.cost_weight);
        for _ in 0..self.spec.batch {
            let fabric = rng.below(fabric_count) as u32;
            let nodes = frontend.node_count(fabric).unwrap_or(1) as u64;
            let modules = frontend.module_count(fabric).unwrap_or(1).max(1) as u64;
            let source = NodeId::new(rng.below(nodes.max(1)) as usize);
            let pick = if total_weight == 0 { 0 } else { rng.below(total_weight) };
            let query = if pick < u64::from(self.spec.next_hop_weight) {
                Query::NextHop { fabric, source, module: rng.below(modules) as u32 }
            } else if pick < u64::from(self.spec.next_hop_weight + self.spec.path_weight) {
                Query::Path { fabric, source, module: rng.below(modules) as u32 }
            } else {
                Query::Cost {
                    fabric,
                    source,
                    target: NodeId::new(rng.below(nodes.max(1)) as usize),
                }
            };
            batch.push(query);
        }
    }
}

/// How the load loop paces itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Closed loop: the next batch is issued the moment the previous
    /// one completes; latency is pure service time.
    Closed,
    /// Open loop: queries arrive on a fixed schedule at this rate
    /// regardless of completion, so latency includes queueing delay —
    /// the tail behaviour a saturated service actually exhibits.
    Open {
        /// Scheduled arrival rate, queries per second.
        rate_qps: f64,
    },
}

/// Result of one load run: throughput plus the latency distribution in
/// nanoseconds (p50/p90/p99/p999 from the HDR-style histogram).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries executed.
    pub queries: u64,
    /// Batches executed.
    pub batches: u64,
    /// Wall-clock duration of the measured loop.
    pub wall_seconds: f64,
    /// Sustained throughput, queries per second.
    pub qps: f64,
    /// Per-query latency histogram, nanoseconds.
    pub latency: Histo,
}

impl LoadReport {
    /// The `q`-quantile of per-query latency, nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, q: f64) -> u64 {
        self.latency.quantile_raw(q)
    }
}

/// Drives `target_queries` (rounded up to whole batches) through
/// `frontend` and captures throughput plus tail latency.
///
/// Per-query latency is attributed at batch granularity: a batch's
/// service time is divided evenly over its queries. Under
/// [`LoadMode::Open`] each query records *wait + service* — the time it
/// spent queued behind earlier batches relative to its scheduled
/// arrival, plus its service share — so percentiles stay meaningful
/// even when service completes within the arrival tick (a pure
/// finish-minus-arrival sojourn clamps to zero there). Batch generation
/// is excluded from the measured service time.
#[must_use]
pub fn run_load(
    frontend: &FleetFrontend,
    generator: &mut WorkloadGen,
    mode: LoadMode,
    target_queries: u64,
) -> LoadReport {
    let mut batch = QueryBatch::new();
    let mut out = QueryOutput::new();
    let mut latency = Histo::new();
    let mut queries = 0u64;
    let mut batches = 0u64;

    // Warm-up batch: grows every reusable buffer before timing starts.
    generator.fill(frontend, &mut batch);
    frontend.execute(&mut batch, &mut out);

    let start = Instant::now();
    // Virtual open-loop clock, nanoseconds since `start`.
    let mut finish_ns = 0u64;
    while queries < target_queries {
        generator.fill(frontend, &mut batch);
        let batch_len = batch.len() as u64;
        let issued = Instant::now();
        frontend.execute(&mut batch, &mut out);
        let service_ns = issued.elapsed().as_nanos() as u64;

        match mode {
            LoadMode::Closed => {
                let per_query = service_ns / batch_len.max(1);
                for _ in 0..batch_len {
                    latency.observe(per_query);
                }
            }
            LoadMode::Open { rate_qps } => {
                // Scheduled arrivals: query `i` of the run arrives at
                // `i / rate`; the batch starts no earlier than both its
                // first arrival and the previous batch's finish. Each
                // query's sojourn is its queueing wait (time between its
                // arrival and the batch start, zero when it arrived
                // mid-batch) *plus* its service share — never clamped to
                // zero: a query that completes within its arrival tick
                // still pays its service time, which is what keeps the
                // low percentiles meaningful at sub-saturation rates.
                let inter_ns = 1e9 / rate_qps.max(1e-9);
                let first_arrival = (queries as f64 * inter_ns) as u64;
                let batch_start = finish_ns.max(first_arrival);
                finish_ns = batch_start + service_ns;
                let per_query = (service_ns / batch_len.max(1)).max(1);
                for i in 0..batch_len {
                    let arrival = ((queries + i) as f64 * inter_ns) as u64;
                    let wait = batch_start.saturating_sub(arrival);
                    latency.observe(wait + per_query);
                }
            }
        }
        queries += batch_len;
        batches += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    LoadReport {
        queries,
        batches,
        wall_seconds: wall,
        qps: queries as f64 / wall.max(1e-9),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_fleet::ScenarioSpec;

    fn tiny_frontend() -> FleetFrontend {
        let spec = ScenarioSpec { instances: 2, ..ScenarioSpec::smoke() };
        FleetFrontend::from_spec(&spec, 1_500, 2).expect("smoke spec is valid")
    }

    #[test]
    fn generation_is_deterministic() {
        let frontend = tiny_frontend();
        let spec = WorkloadSpec { batch: 64, ..WorkloadSpec::default() };
        let mut a = WorkloadGen::new(spec.clone());
        let mut b = WorkloadGen::new(spec);
        let mut batch_a = QueryBatch::new();
        let mut batch_b = QueryBatch::new();
        for _ in 0..3 {
            a.fill(&frontend, &mut batch_a);
            b.fill(&frontend, &mut batch_b);
            assert_eq!(batch_a.queries(), batch_b.queries());
        }
    }

    #[test]
    fn mix_respects_pure_point_spec() {
        let frontend = tiny_frontend();
        let mut generator =
            WorkloadGen::new(WorkloadSpec { batch: 128, ..WorkloadSpec::point_lookups() });
        let mut batch = QueryBatch::new();
        generator.fill(&frontend, &mut batch);
        assert!(batch.queries().iter().all(|q| matches!(q, Query::NextHop { .. })));
    }

    #[test]
    fn closed_loop_reports_throughput_and_latency() {
        let frontend = tiny_frontend();
        let mut generator =
            WorkloadGen::new(WorkloadSpec { batch: 256, ..WorkloadSpec::default() });
        let report = run_load(&frontend, &mut generator, LoadMode::Closed, 1_000);
        assert!(report.queries >= 1_000);
        assert!(report.qps > 0.0);
        assert_eq!(report.latency.count(), report.queries);
        assert!(report.latency_ns(0.999) >= report.latency_ns(0.5));
    }

    #[test]
    fn open_loop_percentiles_are_never_zero() {
        // Sub-saturation arrivals: the service regularly completes
        // within the arrival tick, the case that used to clamp the
        // whole lower half of the distribution to 0 ns.
        let frontend = tiny_frontend();
        let mut generator =
            WorkloadGen::new(WorkloadSpec { batch: 256, ..WorkloadSpec::default() });
        let report = run_load(&frontend, &mut generator, LoadMode::Open { rate_qps: 1_000.0 }, 512);
        assert!(report.latency_ns(0.5) > 0, "open-loop p50 clamped to zero");
        assert!(report.latency_ns(0.5) <= report.latency_ns(0.99));
    }

    #[test]
    fn open_loop_latency_includes_queueing() {
        let frontend = tiny_frontend();
        let spec = WorkloadSpec { batch: 256, ..WorkloadSpec::default() };
        // An absurdly high arrival rate forces a backlog: open-loop tail
        // latency must dominate the closed-loop service time.
        let open = run_load(
            &frontend,
            &mut WorkloadGen::new(spec.clone()),
            LoadMode::Open { rate_qps: 1e12 },
            2_000,
        );
        let closed = run_load(&frontend, &mut WorkloadGen::new(spec), LoadMode::Closed, 2_000);
        assert!(
            open.latency_ns(0.99) >= closed.latency_ns(0.99),
            "open p99 {} < closed p99 {}",
            open.latency_ns(0.99),
            closed.latency_ns(0.99)
        );
    }
}
