//! [`AosFrontend`]: the pre-plane array-of-structs execution path, kept
//! as a differential baseline.
//!
//! The struct-of-arrays snapshot layout claims two things: a measurable
//! speedup *and* byte-identical answers. Both claims need the old
//! layout alive in the same process — ROADMAP warns this box drifts
//! ±40% between runs, so a speedup measured against a stale JSON is
//! noise, and a byte-diff needs something to diff against. This module
//! preserves the AoS layout (`Vec<Option<RouteEntry>>` table,
//! `Matrix<Option<NodeId>>` successors) and the query-at-a-time enum
//! dispatch exactly as `execute` ran before the lane split, behind the
//! same `(shard, fabric, source)` sort, so `bench_serve` can interleave
//! the two layouts and CI can diff their outputs byte for byte.

use etx_fleet::FleetRng;
use etx_graph::{Matrix, NodeId};
use etx_routing::RouteEntry;

use crate::frontend::FleetFrontend;
use crate::query::{Query, QueryBatch, QueryOutput, QueryResult};
use crate::snapshot::TableSnapshot;

/// One fabric's tables in the pre-plane array-of-structs layout: the
/// flat `Option<RouteEntry>` route table and the phase-2 matrices as
/// the snapshot stored them before the SoA repack.
#[derive(Debug, Clone)]
pub struct AosTables {
    modules: usize,
    nodes: usize,
    dist: Matrix<f64>,
    succ: Matrix<Option<NodeId>>,
    table: Vec<Option<RouteEntry>>,
}

impl AosTables {
    /// Reassembles the AoS layout from a plane snapshot. The
    /// reconstruction inverts `fill_from` exactly — `entry()` is
    /// byte-identical to the producing router's table — so a query
    /// answered from these tables is answered from the same data the
    /// snapshot serves.
    #[must_use]
    pub fn from_snapshot(snap: &TableSnapshot) -> Self {
        let n = snap.node_count();
        let succ_plane = snap.succ_plane();
        AosTables {
            modules: snap.module_count(),
            nodes: n,
            dist: Matrix::from_vec(n, n, snap.dist_plane().to_vec()),
            succ: Matrix::from_vec(
                n,
                n,
                (0..n * n).map(|i| succ_plane.get(i).map(NodeId::new)).collect(),
            ),
            table: snap.entries().collect(),
        }
    }

    /// The flat AoS table (the byte-identity oracle's ground truth).
    #[must_use]
    pub fn route_table(&self) -> &[Option<RouteEntry>] {
        &self.table
    }

    fn route(&self, node: NodeId, module: usize) -> Option<RouteEntry> {
        if module >= self.modules || node.index() >= self.nodes {
            return None;
        }
        *self.table.get(node.index() * self.modules + module)?
    }

    fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from.index() >= self.nodes || to.index() >= self.nodes {
            return None;
        }
        if from == to {
            Some(to)
        } else {
            self.succ[(from, to)]
        }
    }

    fn cost(&self, from: NodeId, to: NodeId) -> Option<f64> {
        if from.index() >= self.nodes || to.index() >= self.nodes {
            return None;
        }
        let d = self.dist[(from, to)];
        d.is_finite().then_some(d)
    }

    fn path_into(&self, node: NodeId, module: usize, out: &mut Vec<NodeId>) -> Option<RouteEntry> {
        let entry = self.route(node, module)?;
        let start = out.len();
        out.push(node);
        if entry.destination != node {
            let mut cur = entry.next_hop;
            out.push(cur);
            let mut hops = 1usize;
            while cur != entry.destination {
                let Some(next) = self.next_hop(cur, entry.destination) else {
                    out.truncate(start);
                    return None;
                };
                cur = next;
                out.push(cur);
                hops += 1;
                if hops > self.nodes {
                    out.truncate(start);
                    return None;
                }
            }
        }
        Some(entry)
    }
}

/// An array-of-structs mirror of a [`FleetFrontend`]: the same fabrics
/// (pinned at mirror time), the same shard hash and the same
/// `(shard, fabric, source)` sort, executed through the pre-lane
/// query-at-a-time dispatch. Differential harnesses run a batch through
/// both frontends and require byte-identical outputs.
///
/// The mirror copies each fabric's *current* snapshot; fabrics
/// republished after [`AosFrontend::mirror`] diverge from the live
/// frontend, so mirror after the tables have settled (benchmark and CI
/// frontends are static once warmed).
#[derive(Debug, Clone)]
pub struct AosFrontend {
    fabrics: Vec<Option<AosTables>>,
    shards: usize,
}

impl AosFrontend {
    /// Mirrors `frontend`'s current tables into the AoS layout.
    #[must_use]
    pub fn mirror(frontend: &FleetFrontend) -> Self {
        let fabrics = (0..frontend.fabric_count() as u32)
            .map(|f| frontend.pin(f).map(|pin| AosTables::from_snapshot(&pin)))
            .collect();
        AosFrontend { fabrics, shards: frontend.shard_count() }
    }

    /// The mirrored tables of one fabric (`None` for unserved ids).
    #[must_use]
    pub fn tables(&self, fabric: u32) -> Option<&AosTables> {
        self.fabrics.get(fabric as usize)?.as_ref()
    }

    /// The shard owning `fabric` — the same `splitmix64(fabric) %
    /// shard_count` hash as the mirrored frontend, so both sides sort a
    /// batch into the same execution order (and therefore fill the path
    /// arena in the same order).
    #[must_use]
    pub fn shard_of(&self, fabric: u32) -> u32 {
        (FleetRng::new(u64::from(fabric)).next_u64() % self.shards as u64) as u32
    }

    /// Executes a batch through the pre-lane path: one sorted pass,
    /// every query dispatched individually through the enum match
    /// against its fabric's AoS tables. Buffers are reused exactly as
    /// in the live `execute` — steady-state batches allocate nothing —
    /// and the output (results *and* arena bytes) must be
    /// byte-identical to the plane-based execution of the same batch.
    pub fn execute(&self, batch: &mut QueryBatch, out: &mut QueryOutput) {
        batch.sort_for_execution(|fabric| self.shard_of(fabric));
        out.reset(batch.len());
        let mut last_fabric: Option<u32> = None;
        let mut tables: Option<&AosTables> = None;
        for slot in 0..batch.order.len() {
            let index = batch.order[slot] as usize;
            let query = batch.queries()[index];
            let fabric = query.fabric();
            if last_fabric != Some(fabric) {
                last_fabric = Some(fabric);
                tables = self.fabrics.get(fabric as usize).and_then(Option::as_ref);
            }
            let result = match tables {
                Some(tables) => match query {
                    Query::NextHop { source, module, .. } => {
                        QueryResult::NextHop(tables.route(source, module as usize))
                    }
                    Query::Path { source, module, .. } => {
                        let arena = out.arena_mut();
                        let start = arena.len() as u32;
                        let entry = tables.path_into(source, module as usize, arena);
                        QueryResult::Path { entry, nodes: (start, out.arena_mut().len() as u32) }
                    }
                    Query::Cost { source, target, .. } => {
                        QueryResult::Cost(tables.cost(source, target))
                    }
                },
                None => QueryResult::UnknownFabric,
            };
            out.set(index, result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etx_fleet::ScenarioSpec;

    fn smoke_frontend() -> FleetFrontend {
        let spec = ScenarioSpec { instances: 3, ..ScenarioSpec::smoke() };
        FleetFrontend::from_spec(&spec, 1_500, 2).expect("smoke spec is valid")
    }

    #[test]
    fn mirror_executes_byte_identically() {
        let frontend = smoke_frontend();
        let mirror = AosFrontend::mirror(&frontend);
        let mut batch = QueryBatch::new();
        for f in 0..frontend.fabric_count() as u32 {
            let nodes = frontend.node_count(f).unwrap_or(1);
            for s in 0..nodes {
                batch.push(Query::NextHop { fabric: f, source: NodeId::new(s), module: 0 });
                batch.push(Query::Path { fabric: f, source: NodeId::new(s), module: 1 });
                batch.push(Query::Cost {
                    fabric: f,
                    source: NodeId::new(s),
                    target: NodeId::new((s + 1) % nodes),
                });
            }
        }
        batch.push(Query::NextHop { fabric: 99, source: NodeId::new(0), module: 0 });

        let mut soa = QueryOutput::new();
        let mut aos = QueryOutput::new();
        frontend.execute(&mut batch, &mut soa);
        mirror.execute(&mut batch, &mut aos);
        // Byte identity: same results (arena ranges included) and the
        // same arena bytes — not just resolved-level equality.
        assert_eq!(soa.results(), aos.results());
        for (a, b) in soa.results().iter().zip(aos.results()) {
            assert_eq!(soa.path_nodes(a), aos.path_nodes(b));
        }
    }

    #[test]
    fn mirror_round_trips_the_table() {
        let frontend = smoke_frontend();
        let mirror = AosFrontend::mirror(&frontend);
        for f in 0..frontend.fabric_count() as u32 {
            let (Some(pin), Some(tables)) = (frontend.pin(f), mirror.tables(f)) else {
                continue;
            };
            assert!(pin.entries().eq(tables.route_table().iter().copied()));
        }
    }
}
