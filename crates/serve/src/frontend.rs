//! [`FleetFrontend`]: one query surface over thousands of pooled fabric
//! instances.

use etx_fleet::{FleetRng, ScenarioSpec};
use etx_sim::SimPool;

use crate::publish::{EpochPublisher, PinnedSnapshot, SnapshotReader};
use crate::query::{execute_on, QueryBatch, QueryOutput, QueryResult};

/// One served fabric: the reader half of its publisher plus the
/// dimensions workload generators need.
#[derive(Debug, Clone)]
struct FabricHandle {
    reader: SnapshotReader,
    nodes: usize,
    modules: usize,
}

/// A read-side frontend over a fleet of fabrics: every fabric's routing
/// tables are published through an [`EpochPublisher`], and queries
/// address fabrics by dense id (`0..fabric_count`).
///
/// Execution hash-shards the batch — fabric `f` belongs to shard
/// `splitmix64(f) % shard_count` — and visits shards in order, fabrics
/// grouped within a shard and sources grouped within a fabric, pinning
/// each fabric's snapshot exactly once per batch. Shard runs touch
/// disjoint fabrics and disjoint result slots, so the shard count can
/// never change a result: answers are **byte-identical across shard
/// counts** (and across the publisher's recompute strategy, since every
/// strategy publishes identical tables). Execution is serial on this
/// box — the dev container has one core — but the shard runs are
/// independent by construction, ready for an `etx-par` fan-out.
#[derive(Debug, Clone)]
pub struct FleetFrontend {
    /// Indexed by fabric id; `None` marks a spec instance the builder
    /// rejected (queries against it answer `UnknownFabric`).
    fabrics: Vec<Option<FabricHandle>>,
    shards: usize,
}

impl FleetFrontend {
    /// An empty frontend with `shards` hash shards (clamped to ≥ 1);
    /// register fabrics with [`FleetFrontend::register`].
    #[must_use]
    pub fn new(shards: usize) -> Self {
        FleetFrontend { fabrics: Vec::new(), shards: shards.max(1) }
    }

    /// Builds a frontend from a fleet scenario: every spec instance is
    /// sampled exactly as the fleet controller would (instance `i`
    /// depends only on `(spec.seed, i)`), built over one recycled
    /// [`SimPool`], stepped `warm_cycles` cycles so its tables reflect a
    /// warmed, draining fabric, and its final published snapshot becomes
    /// fabric `i` of the frontend. Rejected instances keep their id and
    /// answer [`QueryResult::UnknownFabric`].
    ///
    /// # Errors
    ///
    /// [`ScenarioSpec::check`]'s description when the spec itself is
    /// structurally invalid.
    pub fn from_spec(
        spec: &ScenarioSpec,
        warm_cycles: u64,
        shards: usize,
    ) -> Result<FleetFrontend, String> {
        spec.check()?;
        let mut frontend = FleetFrontend::new(shards);
        let mut pool = SimPool::new();
        for index in 0..spec.instances {
            match spec.sample(index).build_pooled(&mut pool) {
                Ok(mut sim) => {
                    let (publisher, reader) = EpochPublisher::new();
                    sim.set_table_observer(Box::new(publisher));
                    for _ in 0..warm_cycles {
                        if sim.step().is_some() {
                            break;
                        }
                    }
                    let nodes = sim.routing().node_count();
                    let modules = sim.routing().module_count();
                    sim.recycle_into(&mut pool);
                    frontend.fabrics.push(Some(FabricHandle { reader, nodes, modules }));
                }
                Err(_) => frontend.fabrics.push(None),
            }
        }
        Ok(frontend)
    }

    /// Registers a fabric served by `reader` (e.g. a live simulation's
    /// publisher) and returns its fabric id.
    pub fn register(&mut self, reader: SnapshotReader, nodes: usize, modules: usize) -> u32 {
        let id = self.fabrics.len() as u32;
        self.fabrics.push(Some(FabricHandle { reader, nodes, modules }));
        id
    }

    /// Number of fabric ids (rejected placeholders included).
    #[must_use]
    pub fn fabric_count(&self) -> usize {
        self.fabrics.len()
    }

    /// Number of hash shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `fabric`: `splitmix64(fabric) % shard_count`.
    #[must_use]
    pub fn shard_of(&self, fabric: u32) -> u32 {
        (FleetRng::new(u64::from(fabric)).next_u64() % self.shards as u64) as u32
    }

    /// Node count of a served fabric (`None` for unknown/rejected ids).
    #[must_use]
    pub fn node_count(&self, fabric: u32) -> Option<usize> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.nodes)
    }

    /// Module count of a served fabric (`None` for unknown/rejected ids).
    #[must_use]
    pub fn module_count(&self, fabric: u32) -> Option<usize> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.modules)
    }

    /// The current epoch of a served fabric's tables.
    #[must_use]
    pub fn epoch(&self, fabric: u32) -> Option<u64> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.reader.epoch())
    }

    /// Executes a batch: sorts it by `(shard, fabric, source)`, pins
    /// each addressed fabric's snapshot exactly once, and writes every
    /// answer into `out` at the query's submission index. All buffers
    /// (`batch`'s permutation, `out`'s results and path arena) are
    /// reused — steady-state batches perform no heap allocation.
    ///
    /// Within one batch, all queries against the same fabric are
    /// answered from **one** snapshot (the pin), so a batch can never
    /// observe two different epochs of the same fabric.
    pub fn execute(&self, batch: &mut QueryBatch, out: &mut QueryOutput) {
        batch.sort_for_execution(|fabric| self.shard_of(fabric));
        out.reset(batch.len());
        let mut last_fabric: Option<u32> = None;
        let mut pinned: Option<PinnedSnapshot> = None;
        for slot in 0..batch.order.len() {
            let index = batch.order[slot] as usize;
            let query = batch.queries()[index];
            let fabric = query.fabric();
            if last_fabric != Some(fabric) {
                last_fabric = Some(fabric);
                pinned = self
                    .fabrics
                    .get(fabric as usize)
                    .and_then(Option::as_ref)
                    .map(|handle| handle.reader.pin());
            }
            let result = match &pinned {
                Some(snapshot) => execute_on(snapshot, &query, out.arena_mut()),
                None => QueryResult::UnknownFabric,
            };
            out.set(index, result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use etx_graph::NodeId;

    fn smoke_frontend(shards: usize) -> FleetFrontend {
        let spec = ScenarioSpec { instances: 4, ..ScenarioSpec::smoke() };
        FleetFrontend::from_spec(&spec, 2_000, shards).expect("smoke spec is valid")
    }

    #[test]
    fn from_spec_serves_every_instance() {
        let frontend = smoke_frontend(2);
        assert_eq!(frontend.fabric_count(), 4);
        for f in 0..4u32 {
            if let Some(nodes) = frontend.node_count(f) {
                assert!(nodes >= 9, "smoke fabrics are at least 3x3");
                assert!(frontend.module_count(f).unwrap() >= 2);
                assert!(frontend.epoch(f).unwrap() >= 1, "warm fabric published at least once");
            }
        }
    }

    #[test]
    fn results_are_identical_across_shard_counts() {
        let one = smoke_frontend(1);
        let many = smoke_frontend(7);
        let mut batch = QueryBatch::new();
        for f in 0..one.fabric_count() as u32 {
            let nodes = one.node_count(f).unwrap_or(1);
            for s in 0..nodes {
                batch.push(Query::NextHop { fabric: f, source: NodeId::new(s), module: 0 });
                batch.push(Query::Path { fabric: f, source: NodeId::new(s), module: 1 });
                batch.push(Query::Cost {
                    fabric: f,
                    source: NodeId::new(s),
                    target: NodeId::new((s + 1) % nodes),
                });
            }
        }
        // Unknown fabric id exercises the placeholder path.
        batch.push(Query::NextHop { fabric: 99, source: NodeId::new(0), module: 0 });

        let mut out_one = QueryOutput::new();
        let mut out_many = QueryOutput::new();
        one.execute(&mut batch, &mut out_one);
        many.execute(&mut batch, &mut out_many);
        assert!(matches!(out_one.results().last(), Some(QueryResult::UnknownFabric)));
        // Arena *ranges* depend on execution order (which the shard plan
        // changes), so compare at the resolved level: identical entries,
        // identical node sequences, identical costs.
        assert_eq!(out_one.results().len(), out_many.results().len());
        for (a, b) in out_one.results().iter().zip(out_many.results()) {
            match (a, b) {
                (QueryResult::Path { entry: ea, .. }, QueryResult::Path { entry: eb, .. }) => {
                    assert_eq!(ea, eb);
                    assert_eq!(out_one.path_nodes(a), out_many.path_nodes(b));
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn shard_of_is_stable_and_bounded() {
        let frontend = FleetFrontend::new(5);
        for f in 0..100u32 {
            let s = frontend.shard_of(f);
            assert!(s < 5);
            assert_eq!(s, frontend.shard_of(f));
        }
    }
}
