//! [`FleetFrontend`]: one query surface over thousands of pooled fabric
//! instances.

use etx_fleet::{FleetRng, ScenarioSpec};
use etx_graph::NodeId;
use etx_metrics::{CounterId, MetricsHandle, SpanId};
use etx_sim::SimPool;

use crate::publish::{EpochPublisher, PinnedSnapshot, SnapshotReader};
use crate::query::{execute_group, LaneScratch, Query, QueryBatch, QueryOutput, QueryResult};

/// One served fabric: the reader half of its publisher plus the
/// dimensions workload generators need.
#[derive(Debug, Clone)]
struct FabricHandle {
    reader: SnapshotReader,
    nodes: usize,
    modules: usize,
}

/// Reusable per-shard buffers for [`FleetFrontend::execute_sharded`]:
/// one result/arena slot per non-empty shard of the current batch, plus
/// the shard partition of the sorted execution order. Everything is
/// retained across batches, so the serial fallback (and each worker of
/// the parallel fan-out) performs no steady-state heap allocation.
#[derive(Debug, Default)]
pub struct ShardWorkspace {
    /// Slot `i` holds the output of the batch's `i`-th non-empty shard.
    slots: Vec<ShardSlot>,
    /// `(start, end)` ranges of the sorted order, one per non-empty
    /// shard, in ascending shard order.
    ranges: Vec<(usize, usize)>,
    /// Cached host core count: `available_parallelism` reads cgroup
    /// state on Linux (which allocates), so it is probed once per
    /// workspace, not once per batch.
    cores: Option<usize>,
}

impl ShardWorkspace {
    /// Empty workspace; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        ShardWorkspace::default()
    }

    /// The cached worker bound (host cores, probed on first use).
    fn cores(&mut self) -> usize {
        *self.cores.get_or_insert_with(|| {
            std::thread::available_parallelism().map_or(1, core::num::NonZeroUsize::get)
        })
    }
}

/// One shard's private output: results tagged with their submission
/// index, a shard-local path arena (ranges are shard-relative until
/// the scatter rebases them), and the shard's own lane storage.
#[derive(Debug, Default)]
struct ShardSlot {
    results: Vec<(u32, QueryResult)>,
    arena: Vec<NodeId>,
    lanes: LaneScratch,
}

/// A read-side frontend over a fleet of fabrics: every fabric's routing
/// tables are published through an [`EpochPublisher`], and queries
/// address fabrics by dense id (`0..fabric_count`).
///
/// Execution hash-shards the batch — fabric `f` belongs to shard
/// `splitmix64(f) % shard_count` — and visits shards in order, fabrics
/// grouped within a shard and sources grouped within a fabric, pinning
/// each fabric's snapshot exactly once per batch. Shard runs touch
/// disjoint fabrics and disjoint result slots, so the shard count can
/// never change a result: answers are **byte-identical across shard
/// counts** (and across the publisher's recompute strategy, since every
/// strategy publishes identical tables). Execution is serial on this
/// box — the dev container has one core — but the shard runs are
/// independent by construction, ready for an `etx-par` fan-out.
#[derive(Debug, Clone)]
pub struct FleetFrontend {
    /// Indexed by fabric id; `None` marks a spec instance the builder
    /// rejected (queries against it answer `UnknownFabric`).
    fabrics: Vec<Option<FabricHandle>>,
    shards: usize,
    /// Records batch counters, per-type query counters and the
    /// sort/split/gather + per-lane latency spans; the default no-op
    /// handle costs one relaxed load per record site.
    metrics: MetricsHandle,
}

impl FleetFrontend {
    /// An empty frontend with `shards` hash shards (clamped to ≥ 1);
    /// register fabrics with [`FleetFrontend::register`].
    #[must_use]
    pub fn new(shards: usize) -> Self {
        FleetFrontend {
            fabrics: Vec::new(),
            shards: shards.max(1),
            metrics: MetricsHandle::default(),
        }
    }

    /// Points this frontend's metrics (batch/query counters, sort/split/
    /// gather spans, per-type latency histograms) at a registry.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builds a frontend from a fleet scenario: every spec instance is
    /// sampled exactly as the fleet controller would (instance `i`
    /// depends only on `(spec.seed, i)`), built over one recycled
    /// [`SimPool`], stepped `warm_cycles` cycles so its tables reflect a
    /// warmed, draining fabric, and its final published snapshot becomes
    /// fabric `i` of the frontend. Rejected instances keep their id and
    /// answer [`QueryResult::UnknownFabric`].
    ///
    /// # Errors
    ///
    /// [`ScenarioSpec::check`]'s description when the spec itself is
    /// structurally invalid.
    pub fn from_spec(
        spec: &ScenarioSpec,
        warm_cycles: u64,
        shards: usize,
    ) -> Result<FleetFrontend, String> {
        spec.check()?;
        let mut frontend = FleetFrontend::new(shards);
        let mut pool = SimPool::new();
        for index in 0..spec.instances {
            match spec.sample(index).build_pooled(&mut pool) {
                Ok(mut sim) => {
                    let (publisher, reader) = EpochPublisher::new();
                    sim.set_table_observer(Box::new(publisher));
                    for _ in 0..warm_cycles {
                        if sim.step().is_some() {
                            break;
                        }
                    }
                    let nodes = sim.routing().node_count();
                    let modules = sim.routing().module_count();
                    sim.recycle_into(&mut pool);
                    frontend.fabrics.push(Some(FabricHandle { reader, nodes, modules }));
                }
                Err(_) => frontend.fabrics.push(None),
            }
        }
        Ok(frontend)
    }

    /// Registers a fabric served by `reader` (e.g. a live simulation's
    /// publisher) and returns its fabric id.
    pub fn register(&mut self, reader: SnapshotReader, nodes: usize, modules: usize) -> u32 {
        let id = self.fabrics.len() as u32;
        self.fabrics.push(Some(FabricHandle { reader, nodes, modules }));
        id
    }

    /// Registers a rejected-instance placeholder: the id stays dense
    /// (builders that sample a spec instance-by-instance keep instance
    /// `i` at fabric id `i`), and every query against it answers
    /// [`QueryResult::UnknownFabric`] — exactly what
    /// [`FleetFrontend::from_spec`] records for instances the
    /// `SimConfigBuilder` rejects.
    pub fn register_rejected(&mut self) -> u32 {
        let id = self.fabrics.len() as u32;
        self.fabrics.push(None);
        id
    }

    /// Number of fabric ids (rejected placeholders included).
    #[must_use]
    pub fn fabric_count(&self) -> usize {
        self.fabrics.len()
    }

    /// Number of hash shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `fabric`: `splitmix64(fabric) % shard_count`.
    #[must_use]
    pub fn shard_of(&self, fabric: u32) -> u32 {
        (FleetRng::new(u64::from(fabric)).next_u64() % self.shards as u64) as u32
    }

    /// Node count of a served fabric (`None` for unknown/rejected ids).
    #[must_use]
    pub fn node_count(&self, fabric: u32) -> Option<usize> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.nodes)
    }

    /// Module count of a served fabric (`None` for unknown/rejected ids).
    #[must_use]
    pub fn module_count(&self, fabric: u32) -> Option<usize> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.modules)
    }

    /// The current epoch of a served fabric's tables.
    #[must_use]
    pub fn epoch(&self, fabric: u32) -> Option<u64> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.reader.epoch())
    }

    /// Pins a served fabric's current snapshot (`None` for
    /// unknown/rejected ids) — the hook differential harnesses use to
    /// mirror the exact tables a batch would be answered from.
    #[must_use]
    pub fn pin(&self, fabric: u32) -> Option<PinnedSnapshot> {
        self.fabrics.get(fabric as usize)?.as_ref().map(|h| h.reader.pin())
    }

    /// Executes a batch: sorts it by `(shard, fabric, source)`, pins
    /// each addressed fabric's snapshot exactly once, runs each fabric
    /// group's per-type lanes over the snapshot planes, and writes
    /// every answer into `out` at the query's submission index. All
    /// buffers (`batch`'s permutation and lanes, `out`'s results and
    /// path arena) are reused — steady-state batches perform no heap
    /// allocation.
    ///
    /// Within one batch, all queries against the same fabric are
    /// answered from **one** snapshot (the pin), so a batch can never
    /// observe two different epochs of the same fabric.
    pub fn execute(&self, batch: &mut QueryBatch, out: &mut QueryOutput) {
        self.metrics.inc(CounterId::ServeBatches);
        {
            let _sort_span = self.metrics.span(SpanId::ServeBatchSort);
            batch.sort_for_execution(|fabric| self.shard_of(fabric));
        }
        self.execute_sorted(batch, out);
    }

    /// [`FleetFrontend::execute`] for a batch already pinned to **one**
    /// shard — the daemon path, where a connection's batches all run on
    /// the shard that owns the connection. A single shard can never
    /// split the execution order, so the sort skips the per-fabric shard
    /// hash entirely (`QueryBatch::sort_single_shard`); groups run in
    /// ascending fabric order instead of `(shard, fabric)` order, which
    /// changes only internal arena layout, never a resolved answer.
    pub fn execute_pinned(&self, batch: &mut QueryBatch, out: &mut QueryOutput) {
        self.metrics.inc(CounterId::ServeBatches);
        {
            let _sort_span = self.metrics.span(SpanId::ServeBatchSort);
            batch.sort_single_shard();
        }
        self.execute_sorted(batch, out);
    }

    /// The shared execute body: walks the sorted order's fabric groups,
    /// pinning each addressed fabric's snapshot exactly once.
    fn execute_sorted(&self, batch: &mut QueryBatch, out: &mut QueryOutput) {
        out.reset(batch.len());
        let (order, queries, lanes) = batch.exec_parts();
        let (results, arena) = out.parts_mut();
        let mut start = 0usize;
        while start < order.len() {
            let fabric = queries[order[start] as usize].fabric();
            let mut end = start + 1;
            while end < order.len() && queries[order[end] as usize].fabric() == fabric {
                end += 1;
            }
            let pinned: Option<PinnedSnapshot> = self
                .fabrics
                .get(fabric as usize)
                .and_then(Option::as_ref)
                .map(|handle| handle.reader.pin());
            let mut sink = |oi: u32, r| results[oi as usize] = r;
            execute_group(
                &self.metrics,
                pinned.as_deref(),
                &order[start..end],
                queries,
                lanes,
                arena,
                &mut sink,
            );
            start = end;
        }
    }

    /// [`FleetFrontend::execute`] with an `etx-par`-style fan-out across
    /// the batch's shards. Shard runs touch disjoint fabrics and write
    /// disjoint slots of `workspace`, so they parallelize without
    /// coordination; the final scatter visits shards in ascending order,
    /// rebases each shard's path-arena ranges onto the shared arena and
    /// lands every answer at its submission index — the output
    /// (results *and* arena bytes) is **identical** to [`execute`],
    /// whatever the worker count. On a single core (or a single-shard
    /// batch) the fan-out degrades to a serial loop over the same
    /// per-shard slots, preserving the zero-allocation discipline: once
    /// `workspace` is warm, no path of this call allocates.
    ///
    /// [`execute`]: FleetFrontend::execute
    pub fn execute_sharded(
        &self,
        batch: &mut QueryBatch,
        out: &mut QueryOutput,
        workspace: &mut ShardWorkspace,
    ) {
        let shard_bound = self.shards.min(batch.len().max(1));
        let threads = workspace.cores().min(shard_bound).max(1);
        self.execute_sharded_with(batch, out, workspace, threads);
    }

    /// [`FleetFrontend::execute_sharded`] with an explicit worker count
    /// (tests drive the parallel branch deterministically through this,
    /// independent of the host's core count).
    pub(crate) fn execute_sharded_with(
        &self,
        batch: &mut QueryBatch,
        out: &mut QueryOutput,
        workspace: &mut ShardWorkspace,
        threads: usize,
    ) {
        self.metrics.inc(CounterId::ServeBatches);
        {
            let _sort_span = self.metrics.span(SpanId::ServeBatchSort);
            batch.sort_for_execution(|fabric| self.shard_of(fabric));
        }
        out.reset(batch.len());
        let order: &[u32] = &batch.order;
        let queries = batch.queries();

        // Partition the sorted order into per-shard contiguous ranges.
        // The shard can only change where the fabric changes, so this
        // costs one hash per fabric *group*, not per query.
        workspace.ranges.clear();
        let mut start = 0usize;
        while start < order.len() {
            let mut last_fabric = queries[order[start] as usize].fabric();
            let shard = self.shard_of(last_fabric);
            let mut end = start + 1;
            while end < order.len() {
                let fabric = queries[order[end] as usize].fabric();
                if fabric != last_fabric {
                    if self.shard_of(fabric) != shard {
                        break;
                    }
                    last_fabric = fabric;
                }
                end += 1;
            }
            workspace.ranges.push((start, end));
            start = end;
        }
        let shard_count = workspace.ranges.len();
        if workspace.slots.len() < shard_count {
            workspace.slots.resize_with(shard_count, ShardSlot::default);
        }
        // Result capacity is bounded by the batch length — a constant
        // across same-sized batches — so reserving it here keeps shard
        // size fluctuations from growing slots mid-flight.
        for slot in &mut workspace.slots[..shard_count] {
            slot.results.reserve(order.len());
        }

        if threads <= 1 || shard_count <= 1 {
            for (i, &(s, e)) in workspace.ranges.iter().enumerate() {
                self.run_shard(&order[s..e], queries, &mut workspace.slots[i]);
            }
        } else {
            // Contiguous chunks of shards per worker (scoped threads, as
            // in `etx_par::par_map`); each worker owns its slot slice.
            std::thread::scope(|scope| {
                let mut slots_rest: &mut [ShardSlot] = &mut workspace.slots[..shard_count];
                let mut ranges_rest: &[(usize, usize)] = &workspace.ranges;
                for chunk in etx_par::chunk_ranges(shard_count, threads) {
                    let (slot_chunk, rest) = slots_rest.split_at_mut(chunk.len());
                    slots_rest = rest;
                    let (range_chunk, rest) = ranges_rest.split_at(chunk.len());
                    ranges_rest = rest;
                    scope.spawn(move || {
                        for (&(s, e), slot) in range_chunk.iter().zip(slot_chunk) {
                            self.run_shard(&order[s..e], queries, slot);
                        }
                    });
                }
            });
        }

        // Scatter, in ascending shard order: rebase each shard's arena
        // ranges onto the shared arena and write every answer at its
        // submission index — byte-identical to the serial `execute`,
        // which visits the shards in exactly this order.
        let _gather_span = self.metrics.span(SpanId::ServeBatchGather);
        for i in 0..shard_count {
            let slot = &workspace.slots[i];
            let base = out.arena_mut().len() as u32;
            for &(index, result) in &slot.results {
                let rebased = match result {
                    QueryResult::Path { entry, nodes: (s, e) } => {
                        QueryResult::Path { entry, nodes: (s + base, e + base) }
                    }
                    other => other,
                };
                out.set(index as usize, rebased);
            }
            out.arena_mut().extend_from_slice(&slot.arena);
        }
    }

    /// Executes one shard's contiguous slice of the sorted order into
    /// its private slot (the unit of the fan-out): the same fabric-group
    /// lane execution as [`FleetFrontend::execute`], appending `(index,
    /// result)` pairs in lane order — the scatter reorders them by
    /// submission index, so lane order never leaks into the output.
    fn run_shard(&self, order: &[u32], queries: &[Query], slot: &mut ShardSlot) {
        let ShardSlot { results, arena, lanes } = slot;
        results.clear();
        arena.clear();
        let mut start = 0usize;
        while start < order.len() {
            let fabric = queries[order[start] as usize].fabric();
            let mut end = start + 1;
            while end < order.len() && queries[order[end] as usize].fabric() == fabric {
                end += 1;
            }
            let pinned: Option<PinnedSnapshot> = self
                .fabrics
                .get(fabric as usize)
                .and_then(Option::as_ref)
                .map(|handle| handle.reader.pin());
            let mut sink = |oi: u32, r| results.push((oi, r));
            execute_group(
                &self.metrics,
                pinned.as_deref(),
                &order[start..end],
                queries,
                lanes,
                arena,
                &mut sink,
            );
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use etx_graph::NodeId;

    fn smoke_frontend(shards: usize) -> FleetFrontend {
        let spec = ScenarioSpec { instances: 4, ..ScenarioSpec::smoke() };
        FleetFrontend::from_spec(&spec, 2_000, shards).expect("smoke spec is valid")
    }

    #[test]
    fn from_spec_serves_every_instance() {
        let frontend = smoke_frontend(2);
        assert_eq!(frontend.fabric_count(), 4);
        for f in 0..4u32 {
            if let Some(nodes) = frontend.node_count(f) {
                assert!(nodes >= 9, "smoke fabrics are at least 3x3");
                assert!(frontend.module_count(f).unwrap() >= 2);
                assert!(frontend.epoch(f).unwrap() >= 1, "warm fabric published at least once");
            }
        }
    }

    #[test]
    fn results_are_identical_across_shard_counts() {
        let one = smoke_frontend(1);
        let many = smoke_frontend(7);
        let mut batch = QueryBatch::new();
        for f in 0..one.fabric_count() as u32 {
            let nodes = one.node_count(f).unwrap_or(1);
            for s in 0..nodes {
                batch.push(Query::NextHop { fabric: f, source: NodeId::new(s), module: 0 });
                batch.push(Query::Path { fabric: f, source: NodeId::new(s), module: 1 });
                batch.push(Query::Cost {
                    fabric: f,
                    source: NodeId::new(s),
                    target: NodeId::new((s + 1) % nodes),
                });
            }
        }
        // Unknown fabric id exercises the placeholder path.
        batch.push(Query::NextHop { fabric: 99, source: NodeId::new(0), module: 0 });

        let mut out_one = QueryOutput::new();
        let mut out_many = QueryOutput::new();
        one.execute(&mut batch, &mut out_one);
        many.execute(&mut batch, &mut out_many);
        assert!(matches!(out_one.results().last(), Some(QueryResult::UnknownFabric)));
        // Arena *ranges* depend on execution order (which the shard plan
        // changes), so compare at the resolved level: identical entries,
        // identical node sequences, identical costs.
        assert_eq!(out_one.results().len(), out_many.results().len());
        for (a, b) in out_one.results().iter().zip(out_many.results()) {
            match (a, b) {
                (QueryResult::Path { entry: ea, .. }, QueryResult::Path { entry: eb, .. }) => {
                    assert_eq!(ea, eb);
                    assert_eq!(out_one.path_nodes(a), out_many.path_nodes(b));
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    /// Fills a batch covering every fabric with all three query kinds,
    /// plus an unknown-fabric probe.
    fn mixed_batch(frontend: &FleetFrontend) -> QueryBatch {
        let mut batch = QueryBatch::new();
        for f in 0..frontend.fabric_count() as u32 {
            let nodes = frontend.node_count(f).unwrap_or(1);
            for s in 0..nodes {
                batch.push(Query::NextHop { fabric: f, source: NodeId::new(s), module: 0 });
                batch.push(Query::Path { fabric: f, source: NodeId::new(s), module: 1 });
                batch.push(Query::Cost {
                    fabric: f,
                    source: NodeId::new(s),
                    target: NodeId::new((s + 1) % nodes),
                });
            }
        }
        batch.push(Query::Path { fabric: 99, source: NodeId::new(0), module: 0 });
        batch
    }

    #[test]
    fn sharded_execute_is_byte_identical_to_serial() {
        // The fan-out's scatter must reproduce the serial output
        // *exactly* — results and arena bytes — both on the serial
        // fallback (threads=1) and across several forced worker counts
        // (exercising the scoped-thread branch even on a 1-core host).
        let frontend = smoke_frontend(3);
        let mut batch = mixed_batch(&frontend);
        let mut serial = QueryOutput::new();
        frontend.execute(&mut batch, &mut serial);
        let mut workspace = ShardWorkspace::new();
        for threads in [1usize, 2, 3, 7] {
            let mut sharded = QueryOutput::new();
            frontend.execute_sharded_with(&mut batch, &mut sharded, &mut workspace, threads);
            assert_eq!(serial.results(), sharded.results(), "{threads} workers");
            for (a, b) in serial.results().iter().zip(sharded.results()) {
                assert_eq!(serial.path_nodes(a), sharded.path_nodes(b), "{threads} workers");
            }
        }
        // The public entry point picks its own worker count; output is
        // the same either way.
        let mut sharded = QueryOutput::new();
        frontend.execute_sharded(&mut batch, &mut sharded, &mut workspace);
        assert_eq!(serial.results(), sharded.results());
    }

    #[test]
    fn pinned_execute_matches_hashed_execute() {
        // The daemon path (connection pinned to one shard, shard hash
        // skipped) must resolve every answer identically to the hashed
        // sort — arena ranges may differ (group order does), resolved
        // node sequences may not.
        let frontend = smoke_frontend(3);
        let mut batch = mixed_batch(&frontend);
        let mut hashed = QueryOutput::new();
        frontend.execute(&mut batch, &mut hashed);
        let mut pinned = QueryOutput::new();
        frontend.execute_pinned(&mut batch, &mut pinned);
        assert_eq!(hashed.results().len(), pinned.results().len());
        for (a, b) in hashed.results().iter().zip(pinned.results()) {
            match (a, b) {
                (QueryResult::Path { entry: ea, .. }, QueryResult::Path { entry: eb, .. }) => {
                    assert_eq!(ea, eb);
                    assert_eq!(hashed.path_nodes(a), pinned.path_nodes(b));
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn shard_of_is_stable_and_bounded() {
        let frontend = FleetFrontend::new(5);
        for f in 0..100u32 {
            let s = frontend.shard_of(f);
            assert!(s < 5);
            assert_eq!(s, frontend.shard_of(f));
        }
    }
}
