//! The [`ThinFilmBattery`] model of Sec 5.1.3.

use etx_units::{Cycles, Energy, Voltage};

use crate::{Battery, DischargeCurve, DrawOutcome};

/// Configuration for a [`ThinFilmBattery`].
///
/// Defaults reproduce the paper's setup: 60 000 pJ reduced nominal
/// capacity, the Li-free thin-film discharge curve, and a 3.0 V death
/// cutoff. The two discrete-time coefficients (rate-capacity and recovery)
/// follow the structure of Benini et al. \[8\], which the paper cites as its
/// battery-model source; their magnitudes are calibrated so that total
/// deliverable energy stays within the paper's quoted 15 % model accuracy
/// band of the ideal value.
#[derive(Debug, Clone, PartialEq)]
pub struct ThinFilmConfig {
    /// Nominal capacity `B` (the paper reduces it to 60 000 pJ to shorten
    /// simulations).
    pub nominal: Energy,
    /// Discharge-voltage curve (Fig 2 shape by default).
    pub curve: DischargeCurve,
    /// Node-death threshold: the paper uses 3.0 V.
    pub cutoff: Voltage,
    /// Rate-capacity coefficient: the fraction of each draw that becomes
    /// transiently unavailable at the reference draw size, growing
    /// linearly with draw size (so doubling the instantaneous load more
    /// than doubles the lost charge).
    pub rate_capacity_coeff: f64,
    /// Draw size at which the rate penalty equals
    /// `rate_capacity_coeff * draw`.
    pub reference_draw: Energy,
    /// Fraction of the unavailable pool recovered per 1000 idle cycles.
    pub recovery_per_kilocycle: f64,
}

impl Default for ThinFilmConfig {
    fn default() -> Self {
        ThinFilmConfig {
            nominal: Energy::from_picojoules(60_000.0),
            curve: DischargeCurve::li_free_thin_film(),
            cutoff: Voltage::from_volts(3.0),
            rate_capacity_coeff: 0.05,
            reference_draw: Energy::from_picojoules(250.0),
            recovery_per_kilocycle: 0.05,
        }
    }
}

/// A Li-free thin-film battery with a discrete-time discharge model.
///
/// Combines the measured discharge-voltage shape of the paper's Fig 2 with
/// the discrete-time battery model of Benini et al. (the paper's reference
/// \[8\]): each draw both delivers charge and makes a small, rate-dependent
/// amount of charge transiently unavailable; idle periods recover part of
/// that pool. The node dies when the output voltage falls below the 3.0 V
/// cutoff, and **the remaining stored energy is wasted** — this is the
/// physical effect that separates the Fig 7 results (thin-film) from the
/// Table 2 results (ideal).
///
/// # Examples
///
/// ```
/// use etx_battery::{Battery, ThinFilmBattery};
/// use etx_units::{Cycles, Energy};
///
/// let mut b = ThinFilmBattery::default(); // the paper's 60 000 pJ cell
/// let op = Energy::from_picojoules(250.0);
/// let mut ops = 0;
/// while b.draw(op).is_delivered() {
///     b.rest(Cycles::new(100));
///     ops += 1;
/// }
/// // Usable capacity is bounded by the 3.0 V knee (~95 % DoD).
/// assert!(ops > 180 && ops < 240, "completed {ops} ops");
/// assert!(b.wasted().is_positive());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThinFilmBattery {
    config: ThinFilmConfig,
    /// Energy delivered to the node.
    consumed: Energy,
    /// Charge transiently unavailable due to the rate-capacity effect.
    unavailable: Energy,
    dead: bool,
}

impl ThinFilmBattery {
    /// Creates a thin-film battery with capacity `nominal` and default
    /// curve/coefficients.
    #[must_use]
    pub fn new(nominal: Energy) -> Self {
        Self::with_config(ThinFilmConfig { nominal, ..ThinFilmConfig::default() })
    }

    /// Creates a thin-film battery from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the nominal capacity is negative, or if either
    /// coefficient is negative or not finite, or if
    /// `recovery_per_kilocycle > 1`.
    #[must_use]
    pub fn with_config(config: ThinFilmConfig) -> Self {
        assert!(config.nominal.picojoules() >= 0.0, "battery capacity must be non-negative");
        assert!(
            config.rate_capacity_coeff.is_finite() && config.rate_capacity_coeff >= 0.0,
            "rate-capacity coefficient must be finite and non-negative"
        );
        assert!(
            config.recovery_per_kilocycle.is_finite()
                && (0.0..=1.0).contains(&config.recovery_per_kilocycle),
            "recovery fraction must be within [0, 1]"
        );
        assert!(config.reference_draw.is_positive(), "reference draw must be positive");
        let mut b = ThinFilmBattery {
            dead: config.nominal.is_zero(),
            config,
            consumed: Energy::ZERO,
            unavailable: Energy::ZERO,
        };
        b.refresh_death();
        b
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ThinFilmConfig {
        &self.config
    }

    /// Charge currently held unavailable by the rate-capacity effect.
    #[must_use]
    pub fn unavailable(&self) -> Energy {
        self.unavailable
    }

    /// Effective depth of discharge, counting unavailable charge as spent.
    #[must_use]
    pub fn depth_of_discharge(&self) -> f64 {
        if self.config.nominal.is_zero() {
            return 1.0;
        }
        ((self.consumed + self.unavailable) / self.config.nominal).clamp(0.0, 1.0)
    }

    fn refresh_death(&mut self) {
        if self.dead {
            return;
        }
        let spent = self.consumed + self.unavailable;
        if self.config.nominal.is_zero()
            || spent >= self.config.nominal
            || self.config.curve.voltage_at(self.depth_of_discharge()) < self.config.cutoff
        {
            self.dead = true;
        }
    }
}

impl Default for ThinFilmBattery {
    /// The paper's cell: 60 000 pJ, Fig 2 curve, 3.0 V cutoff.
    fn default() -> Self {
        Self::with_config(ThinFilmConfig::default())
    }
}

impl Battery for ThinFilmBattery {
    fn draw(&mut self, energy: Energy) -> DrawOutcome {
        if self.dead {
            return DrawOutcome::AlreadyDead;
        }
        let energy = energy.clamp_non_negative();
        let usable = (self.config.nominal - self.consumed - self.unavailable).clamp_non_negative();
        if energy <= usable {
            self.consumed += energy;
            // Rate-capacity effect: a draw of size e locks away
            // coeff * e * (e / reference) additional charge, capped by what
            // remains.
            let scale = energy / self.config.reference_draw;
            let penalty = energy * (self.config.rate_capacity_coeff * scale);
            let headroom =
                (self.config.nominal - self.consumed - self.unavailable).clamp_non_negative();
            self.unavailable += penalty.min(headroom);
            self.refresh_death();
            DrawOutcome::Delivered
        } else {
            self.consumed += usable;
            self.dead = true;
            DrawOutcome::Depleted { delivered: usable }
        }
    }

    fn rest(&mut self, idle: Cycles) {
        if self.dead || self.unavailable.is_zero() || idle.is_zero() {
            return;
        }
        let kilocycles = idle.count() as f64 / 1000.0;
        let keep = (1.0 - self.config.recovery_per_kilocycle).powf(kilocycles);
        self.unavailable = self.unavailable * keep;
        // Recovery can lift the voltage back above the cutoff only before
        // death is latched; the paper's node death is permanent, so no
        // resurrection check here.
    }

    fn voltage(&self) -> Voltage {
        self.config.curve.voltage_at(self.depth_of_discharge())
    }

    fn is_dead(&self) -> bool {
        self.dead
    }

    fn nominal_capacity(&self) -> Energy {
        self.config.nominal
    }

    fn delivered(&self) -> Energy {
        self.consumed
    }

    fn wasted(&self) -> Energy {
        if self.dead {
            (self.config.nominal - self.consumed).clamp_non_negative()
        } else {
            Energy::ZERO
        }
    }

    fn state_of_charge(&self) -> f64 {
        1.0 - self.depth_of_discharge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    #[test]
    fn dies_at_cutoff_with_stranded_energy() {
        let mut b = ThinFilmBattery::default();
        while !b.is_dead() {
            b.draw(pj(100.0));
        }
        // The 3.0 V knee sits at 95 % DoD; the rate effect brings death a
        // little earlier still.
        let frac = b.delivered() / b.nominal_capacity();
        assert!(frac > 0.75 && frac < 0.96, "delivered fraction {frac}");
        assert!(b.wasted().is_positive());
        let total = b.delivered() + b.wasted();
        assert!((total.picojoules() - 60_000.0).abs() < 1e-6);
    }

    #[test]
    fn death_is_latched() {
        let mut b = ThinFilmBattery::default();
        while !b.is_dead() {
            b.draw(pj(500.0));
        }
        b.rest(Cycles::new(1_000_000));
        assert!(b.is_dead());
        assert_eq!(b.draw(pj(1.0)), DrawOutcome::AlreadyDead);
    }

    #[test]
    fn voltage_follows_curve() {
        let mut b = ThinFilmBattery::default();
        let fresh = b.voltage();
        assert!((fresh.volts() - 4.2).abs() < 1e-9);
        b.draw(pj(30_000.0)); // half the capacity in one (harsh) draw
        assert!(b.voltage() < fresh);
    }

    #[test]
    fn large_draws_strand_more_than_small_draws() {
        let run = |chunk: f64| {
            let mut b = ThinFilmBattery::default();
            while b.draw(pj(chunk)).is_delivered() {}
            b.delivered().picojoules()
        };
        let gentle = run(50.0);
        let harsh = run(2_000.0);
        assert!(
            gentle > harsh,
            "gentle {gentle} should out-deliver harsh {harsh} (rate-capacity effect)"
        );
    }

    #[test]
    fn resting_recovers_unavailable_charge() {
        let mut rested = ThinFilmBattery::default();
        let mut unrested = ThinFilmBattery::default();
        let op = pj(500.0);
        let (mut n_rested, mut n_unrested) = (0u32, 0u32);
        loop {
            if !rested.draw(op).is_delivered() {
                break;
            }
            n_rested += 1;
            rested.rest(Cycles::new(5_000));
        }
        while unrested.draw(op).is_delivered() {
            n_unrested += 1;
        }
        assert!(
            n_rested >= n_unrested,
            "rested battery ({n_rested} ops) must not underperform unrested ({n_unrested})"
        );
        assert!(rested.unavailable().picojoules() >= 0.0);
    }

    #[test]
    fn zero_capacity_is_born_dead() {
        let b = ThinFilmBattery::new(Energy::ZERO);
        assert!(b.is_dead());
        assert_eq!(b.state_of_charge(), 0.0);
    }

    #[test]
    fn flat_curve_and_zero_coeffs_behave_ideally() {
        // Disabling curve sag and discrete-time effects recovers the ideal
        // battery's accounting (useful for differential testing).
        let mut b = ThinFilmBattery::with_config(ThinFilmConfig {
            nominal: pj(1000.0),
            curve: DischargeCurve::flat(Voltage::from_volts(3.6)),
            cutoff: Voltage::from_volts(3.0),
            rate_capacity_coeff: 0.0,
            reference_draw: pj(250.0),
            recovery_per_kilocycle: 0.0,
        });
        let mut delivered = 0.0f64;
        while b.draw(pj(100.0)).is_delivered() {
            delivered += 100.0;
        }
        assert!((delivered - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "recovery fraction")]
    fn bad_recovery_fraction_panics() {
        let _ = ThinFilmBattery::with_config(ThinFilmConfig {
            recovery_per_kilocycle: 1.5,
            ..ThinFilmConfig::default()
        });
    }

    #[test]
    fn reported_levels_decrease_monotonically() {
        let mut b = ThinFilmBattery::default();
        let mut last = b.reported_level(16);
        while !b.is_dead() {
            b.draw(pj(1000.0));
            let now = b.reported_level(16);
            assert!(now <= last, "battery level rose from {last} to {now}");
            last = now;
        }
        assert_eq!(b.reported_level(16), 0);
    }

    proptest! {
        /// delivered + wasted never exceeds nominal, and soc stays in [0,1].
        #[test]
        fn accounting_invariants(
            draws in proptest::collection::vec(1.0f64..5000.0, 1..200),
            rests in proptest::collection::vec(0u64..10_000, 1..200),
        ) {
            let mut b = ThinFilmBattery::default();
            for (d, r) in draws.iter().zip(rests.iter().cycle()) {
                b.draw(pj(*d));
                b.rest(Cycles::new(*r));
                prop_assert!((0.0..=1.0).contains(&b.state_of_charge()));
                let sum = b.delivered().picojoules() + b.wasted().picojoules();
                prop_assert!(sum <= b.nominal_capacity().picojoules() + 1e-6);
            }
        }

        /// Once dead, always dead.
        #[test]
        fn death_latch(draws in proptest::collection::vec(100.0f64..10_000.0, 1..100)) {
            let mut b = ThinFilmBattery::default();
            let mut died = false;
            for d in draws {
                b.draw(pj(d));
                if died {
                    prop_assert!(b.is_dead());
                }
                died = died || b.is_dead();
            }
        }
    }
}
