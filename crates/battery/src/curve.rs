//! Piecewise-linear discharge-voltage curves.

use core::fmt;

use etx_units::Voltage;

/// Errors raised when constructing a [`DischargeCurve`].
#[derive(Debug, Clone, PartialEq)]
pub enum CurveError {
    /// Fewer than two anchor points were supplied.
    TooFewPoints(usize),
    /// Depth-of-discharge values must start at 0.0, end at 1.0 and be
    /// strictly increasing.
    BadDomain {
        /// Offending point index.
        index: usize,
        /// Offending depth-of-discharge value.
        dod: f64,
    },
    /// Voltages must be non-increasing as the battery discharges.
    VoltageIncreases {
        /// Index of the point where voltage rose.
        index: usize,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::TooFewPoints(n) => {
                write!(f, "discharge curve needs at least 2 points, got {n}")
            }
            CurveError::BadDomain { index, dod } => write!(
                f,
                "discharge curve domain invalid at point {index}: dod={dod} \
                 (must start at 0, end at 1, strictly increasing)"
            ),
            CurveError::VoltageIncreases { index } => {
                write!(f, "discharge curve voltage increases at point {index}")
            }
        }
    }
}

impl std::error::Error for CurveError {}

/// A piecewise-linear map from depth-of-discharge (0 = full, 1 = empty) to
/// output voltage.
///
/// The default curve reproduces the qualitative shape of the Li-free
/// thin-film battery of the paper's Fig 2 (from Neudecker et al. \[10\]):
/// a brief initial drop from ≈4.2 V, a long gentle plateau through the
/// high-3-volt range, then a sharp knee. The paper kills a node at 3.0 V,
/// so where the knee sits determines how much energy is stranded.
///
/// # Examples
///
/// ```
/// use etx_battery::DischargeCurve;
///
/// let curve = DischargeCurve::li_free_thin_film();
/// assert!(curve.voltage_at(0.0).volts() > 4.0);
/// assert!(curve.voltage_at(1.0).volts() < 3.0);
/// // Monotone non-increasing:
/// assert!(curve.voltage_at(0.2) >= curve.voltage_at(0.8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeCurve {
    /// `(dod, volts)` anchors; invariants enforced by the constructor.
    points: Vec<(f64, f64)>,
}

impl DischargeCurve {
    /// Builds a curve from `(depth_of_discharge, voltage)` anchor points.
    ///
    /// # Errors
    ///
    /// * [`CurveError::TooFewPoints`] with fewer than two anchors;
    /// * [`CurveError::BadDomain`] unless dod values are strictly
    ///   increasing from exactly `0.0` to exactly `1.0`;
    /// * [`CurveError::VoltageIncreases`] if any anchor's voltage exceeds
    ///   its predecessor's.
    pub fn new(points: Vec<(f64, Voltage)>) -> Result<Self, CurveError> {
        if points.len() < 2 {
            return Err(CurveError::TooFewPoints(points.len()));
        }
        let raw: Vec<(f64, f64)> = points.iter().map(|(d, v)| (*d, v.volts())).collect();
        if raw[0].0 != 0.0 {
            return Err(CurveError::BadDomain { index: 0, dod: raw[0].0 });
        }
        if raw[raw.len() - 1].0 != 1.0 {
            return Err(CurveError::BadDomain { index: raw.len() - 1, dod: raw[raw.len() - 1].0 });
        }
        for i in 1..raw.len() {
            if raw[i].0 <= raw[i - 1].0 || !raw[i].0.is_finite() {
                return Err(CurveError::BadDomain { index: i, dod: raw[i].0 });
            }
            if raw[i].1 > raw[i - 1].1 {
                return Err(CurveError::VoltageIncreases { index: i });
            }
        }
        Ok(DischargeCurve { points: raw })
    }

    /// The qualitative Li-free thin-film curve of the paper's Fig 2.
    ///
    /// Anchors (digitized from the published shape of \[10\]): ≈4.2 V fresh,
    /// fast initial drop, long plateau in the high-3 V range, knee near
    /// 90 % depth-of-discharge, 3.0 V crossed at ≈95 %, collapsing to
    /// ≈2.2 V when empty. With the paper's 3.0 V node-death rule this
    /// strands roughly 5 % of nominal capacity, plus whatever the
    /// discrete-time model holds unavailable.
    #[must_use]
    pub fn li_free_thin_film() -> Self {
        Self::new(vec![
            (0.00, Voltage::from_volts(4.20)),
            (0.03, Voltage::from_volts(4.00)),
            (0.10, Voltage::from_volts(3.88)),
            (0.30, Voltage::from_volts(3.75)),
            (0.50, Voltage::from_volts(3.65)),
            (0.70, Voltage::from_volts(3.55)),
            (0.85, Voltage::from_volts(3.42)),
            (0.90, Voltage::from_volts(3.25)),
            (0.95, Voltage::from_volts(3.00)),
            (1.00, Voltage::from_volts(2.20)),
        ])
        .expect("built-in curve is valid")
    }

    /// A flat curve at `volts` that collapses to zero only at 100 % DoD.
    ///
    /// Useful to emulate an ideal cell through the thin-film machinery.
    #[must_use]
    pub fn flat(volts: Voltage) -> Self {
        Self::new(vec![(0.0, volts), (1.0, volts)]).expect("flat curve is valid")
    }

    /// Output voltage at depth-of-discharge `dod` (clamped to `[0, 1]`).
    #[must_use]
    pub fn voltage_at(&self, dod: f64) -> Voltage {
        let d = dod.clamp(0.0, 1.0);
        let pts = &self.points;
        // d is clamped to [0, 1] and the last anchor is exactly 1.0, so a
        // containing segment always exists.
        let seg = pts
            .windows(2)
            .find(|w| d <= w[1].0)
            .expect("clamped dod always falls within the curve domain");
        let (d0, v0) = seg[0];
        let (d1, v1) = seg[1];
        let t = if d1 > d0 { (d - d0) / (d1 - d0) } else { 0.0 };
        Voltage::from_volts(v0 + t * (v1 - v0))
    }

    /// The smallest depth-of-discharge at which voltage falls below
    /// `cutoff`; `None` if the curve never drops below it.
    ///
    /// This is where a thin-film node dies and the rest of the capacity is
    /// wasted.
    #[must_use]
    pub fn dod_at_cutoff(&self, cutoff: Voltage) -> Option<f64> {
        let vc = cutoff.volts();
        if self.points[0].1 < vc {
            return Some(0.0);
        }
        for w in self.points.windows(2) {
            let (d0, v0) = w[0];
            let (d1, v1) = w[1];
            if v1 < vc {
                // Crossing inside this segment (v0 >= vc > v1).
                let t = if v0 > v1 { (v0 - vc) / (v0 - v1) } else { 0.0 };
                return Some(d0 + t * (d1 - d0));
            }
        }
        None
    }

    /// The anchor points of the curve.
    pub fn points(&self) -> impl Iterator<Item = (f64, Voltage)> + '_ {
        self.points.iter().map(|(d, v)| (*d, Voltage::from_volts(*v)))
    }
}

impl Default for DischargeCurve {
    fn default() -> Self {
        Self::li_free_thin_film()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_curve_shape() {
        let c = DischargeCurve::default();
        assert!((c.voltage_at(0.0).volts() - 4.2).abs() < 1e-12);
        assert!((c.voltage_at(1.0).volts() - 2.2).abs() < 1e-12);
        // Plateau region stays in the high-3V range.
        assert!(c.voltage_at(0.5).volts() > 3.5);
        assert!(c.voltage_at(0.5).volts() < 3.8);
    }

    #[test]
    fn interpolation_between_anchors() {
        let c = DischargeCurve::new(vec![
            (0.0, Voltage::from_volts(4.0)),
            (0.5, Voltage::from_volts(3.0)),
            (1.0, Voltage::from_volts(2.0)),
        ])
        .unwrap();
        assert!((c.voltage_at(0.25).volts() - 3.5).abs() < 1e-12);
        assert!((c.voltage_at(0.75).volts() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clamps_out_of_range_dod() {
        let c = DischargeCurve::default();
        assert_eq!(c.voltage_at(-0.5), c.voltage_at(0.0));
        assert_eq!(c.voltage_at(1.5), c.voltage_at(1.0));
    }

    #[test]
    fn cutoff_location() {
        let c = DischargeCurve::li_free_thin_film();
        let dod = c.dod_at_cutoff(Voltage::from_volts(3.0)).unwrap();
        assert!((dod - 0.95).abs() < 1e-9, "3.0 V anchor sits at 95% DoD, got {dod}");
        // A cutoff below the final voltage is never reached.
        assert_eq!(c.dod_at_cutoff(Voltage::from_volts(2.0)), None);
        // A cutoff above the initial voltage is hit immediately.
        assert_eq!(c.dod_at_cutoff(Voltage::from_volts(5.0)), Some(0.0));
    }

    #[test]
    fn flat_curve() {
        let c = DischargeCurve::flat(Voltage::from_volts(3.6));
        assert_eq!(c.voltage_at(0.0).volts(), 3.6);
        assert_eq!(c.voltage_at(0.999).volts(), 3.6);
        assert_eq!(c.dod_at_cutoff(Voltage::from_volts(3.0)), None);
    }

    #[test]
    fn rejects_bad_domains() {
        let v = Voltage::from_volts(3.6);
        assert_eq!(DischargeCurve::new(vec![(0.0, v)]), Err(CurveError::TooFewPoints(1)));
        assert!(matches!(
            DischargeCurve::new(vec![(0.1, v), (1.0, v)]),
            Err(CurveError::BadDomain { index: 0, .. })
        ));
        assert!(matches!(
            DischargeCurve::new(vec![(0.0, v), (0.9, v)]),
            Err(CurveError::BadDomain { .. })
        ));
        assert!(matches!(
            DischargeCurve::new(vec![(0.0, v), (0.5, v), (0.5, v), (1.0, v)]),
            Err(CurveError::BadDomain { .. })
        ));
        assert!(matches!(
            DischargeCurve::new(vec![
                (0.0, Voltage::from_volts(3.0)),
                (1.0, Voltage::from_volts(3.5)),
            ]),
            Err(CurveError::VoltageIncreases { index: 1 })
        ));
        let err = DischargeCurve::new(vec![(0.1, v), (1.0, v)]).unwrap_err();
        assert!(err.to_string().contains("domain"));
    }

    #[test]
    fn points_accessor_roundtrips() {
        let c = DischargeCurve::li_free_thin_film();
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[9].0, 1.0);
    }

    proptest! {
        /// Voltage is monotone non-increasing in depth-of-discharge.
        #[test]
        fn monotone_non_increasing(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let c = DischargeCurve::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.voltage_at(lo) >= c.voltage_at(hi));
        }
    }
}
