//! The [`LinearBattery`] model.

use etx_units::{Cycles, Energy, Voltage};

use crate::{Battery, DrawOutcome};

/// A battery whose voltage declines linearly from `v_full` to `v_empty`
/// with depth-of-discharge, dying at a cutoff voltage.
///
/// Sits between [`IdealBattery`](crate::IdealBattery) (no voltage sag) and
/// [`ThinFilmBattery`](crate::ThinFilmBattery) (measured curve plus
/// discrete-time effects); mainly useful in tests and ablations that need
/// a *predictable* amount of stranded energy.
///
/// # Examples
///
/// ```
/// use etx_battery::{Battery, LinearBattery};
/// use etx_units::{Energy, Voltage};
///
/// // 4.0 V full, 2.0 V empty, dies at 3.0 V => exactly half is usable.
/// let mut b = LinearBattery::new(
///     Energy::from_picojoules(1000.0),
///     Voltage::from_volts(4.0),
///     Voltage::from_volts(2.0),
///     Voltage::from_volts(3.0),
/// );
/// while !b.is_dead() {
///     b.draw(Energy::from_picojoules(10.0));
/// }
/// assert!((b.delivered().picojoules() - 500.0).abs() < 11.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearBattery {
    nominal: Energy,
    consumed: Energy,
    v_full: Voltage,
    v_empty: Voltage,
    cutoff: Voltage,
    dead: bool,
}

impl LinearBattery {
    /// Creates a linear battery.
    ///
    /// # Panics
    ///
    /// Panics if `v_full < v_empty` or `nominal` is negative.
    #[must_use]
    pub fn new(nominal: Energy, v_full: Voltage, v_empty: Voltage, cutoff: Voltage) -> Self {
        assert!(
            v_full >= v_empty,
            "full voltage {v_full} must not be below empty voltage {v_empty}"
        );
        assert!(
            nominal.picojoules() >= 0.0,
            "battery capacity must be non-negative, got {nominal}"
        );
        let mut b =
            LinearBattery { nominal, consumed: Energy::ZERO, v_full, v_empty, cutoff, dead: false };
        b.dead = b.nominal.is_zero() || b.voltage_now() < b.cutoff;
        b
    }

    fn depth_of_discharge(&self) -> f64 {
        if self.nominal.is_zero() {
            1.0
        } else {
            (self.consumed / self.nominal).clamp(0.0, 1.0)
        }
    }

    fn voltage_now(&self) -> Voltage {
        self.v_full.lerp(self.v_empty, self.depth_of_discharge())
    }
}

impl Battery for LinearBattery {
    fn draw(&mut self, energy: Energy) -> DrawOutcome {
        if self.dead {
            return DrawOutcome::AlreadyDead;
        }
        let energy = energy.clamp_non_negative();
        let available = self.nominal - self.consumed;
        let (outcome, drained) = if energy <= available {
            (DrawOutcome::Delivered, energy)
        } else {
            (DrawOutcome::Depleted { delivered: available }, available)
        };
        self.consumed += drained;
        if self.voltage_now() < self.cutoff || self.consumed >= self.nominal {
            self.dead = true;
            // A draw that tripped the cutoff still powered its operation if
            // the full energy was supplied before the voltage check; the
            // paper's rule is that the *next* operation finds the node dead.
        }
        outcome
    }

    fn rest(&mut self, _idle: Cycles) {}

    fn voltage(&self) -> Voltage {
        self.voltage_now()
    }

    fn is_dead(&self) -> bool {
        self.dead
    }

    fn nominal_capacity(&self) -> Energy {
        self.nominal
    }

    fn delivered(&self) -> Energy {
        self.consumed
    }

    fn wasted(&self) -> Energy {
        if self.dead {
            self.nominal - self.consumed
        } else {
            Energy::ZERO
        }
    }

    fn state_of_charge(&self) -> f64 {
        1.0 - self.depth_of_discharge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(v: f64) -> Energy {
        Energy::from_picojoules(v)
    }

    fn volts(v: f64) -> Voltage {
        Voltage::from_volts(v)
    }

    #[test]
    fn dies_at_cutoff_and_strands_energy() {
        let mut b = LinearBattery::new(pj(1000.0), volts(4.0), volts(2.0), volts(3.0));
        let mut draws = 0;
        while !b.is_dead() {
            b.draw(pj(10.0));
            draws += 1;
            assert!(draws < 200, "battery never died");
        }
        // Half the capacity is below 3.0 V.
        assert!((b.delivered().picojoules() - 500.0).abs() <= 10.0 + 1e-9);
        assert!((b.wasted().picojoules() - 500.0).abs() <= 10.0 + 1e-9);
        let total = b.delivered() + b.wasted();
        assert!((total.picojoules() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_declines_linearly() {
        let mut b = LinearBattery::new(pj(100.0), volts(4.0), volts(2.0), volts(0.0));
        assert_eq!(b.voltage().volts(), 4.0);
        b.draw(pj(50.0));
        assert!((b.voltage().volts() - 3.0).abs() < 1e-12);
        b.draw(pj(50.0));
        assert!((b.voltage().volts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cutoff_at_zero_uses_all_capacity() {
        let mut b = LinearBattery::new(pj(100.0), volts(4.0), volts(2.0), volts(0.0));
        for _ in 0..10 {
            b.draw(pj(10.0));
        }
        assert!(b.is_dead());
        assert_eq!(b.delivered(), pj(100.0));
        assert_eq!(b.wasted(), Energy::ZERO);
    }

    #[test]
    fn born_dead_when_cutoff_above_full_voltage() {
        let b = LinearBattery::new(pj(100.0), volts(3.0), volts(2.0), volts(3.5));
        assert!(b.is_dead());
    }

    #[test]
    #[should_panic(expected = "must not be below")]
    fn inverted_voltages_panic() {
        let _ = LinearBattery::new(pj(100.0), volts(2.0), volts(4.0), volts(3.0));
    }

    #[test]
    fn overdraw_reports_depleted() {
        let mut b = LinearBattery::new(pj(100.0), volts(4.0), volts(2.0), volts(0.0));
        match b.draw(pj(150.0)) {
            DrawOutcome::Depleted { delivered } => assert_eq!(delivered, pj(100.0)),
            other => panic!("expected Depleted, got {other:?}"),
        }
        assert!(b.is_dead());
    }
}
